//! # PIPES — a Public Infrastructure for Processing and Exploring Streams
//!
//! A Rust reproduction of the PIPES toolkit (Krämer & Seeger, SIGMOD 2004):
//! **not** a monolithic data stream management system, but a library of
//! fundamental, exchangeable building blocks from which a fully functional
//! DSMS prototype can be assembled.
//!
//! ## The blocks
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | time | [`time`] | timestamps, validity intervals, heartbeats, snapshot semantics |
//! | kernel | [`graph`] | publish–subscribe query graphs, typed edges, operator fusion |
//! | algebra | [`ops`] | the non-blocking temporal operator algebra (windows, joins over SweepAreas, aggregation, distinct, difference, rate reduction) |
//! | scheduling | [`sched`] | the 3-layer scheduler framework with exchangeable strategies |
//! | memory | [`mem`] | the adaptive memory manager with load shedding |
//! | metadata | [`meta`] | secondary-metadata estimators, decorator factory, performance monitor |
//! | observability | [`trace`] | always-on flight recorder, Chrome-trace / Prometheus exporters, source-to-sink latency pipeline |
//! | demand-driven | [`cursor`] | the cursor algebra and cursor⇄stream translation |
//! | persistence | [`rel`] | indexed relations, stream–relation joins, historical replay |
//! | relational | [`optimizer`] | tuples, expressions, logical plans, rewrite rules, multi-query optimization |
//! | language | [`cql`] | the CQL front end |
//! | scenarios | [`traffic`], [`nexmark`] | the demonstration applications |
//!
//! ## Quickstart
//!
//! ```
//! use pipes::prelude::*;
//!
//! // Register a stream, install a CQL query, run the graph.
//! let mut catalog = Catalog::new();
//! pipes::nexmark::register(
//!     &mut catalog,
//!     pipes::nexmark::generator::NexmarkConfig {
//!         max_events: 2_000,
//!         mean_inter_event_ms: 400.0,
//!         ..Default::default()
//!     },
//! );
//!
//! let plan = pipes::cql::compile_cql(
//!     "SELECT MAX(price) AS highest FROM bid [RANGE 10 MINUTES] EVERY 10 MINUTES",
//!     &catalog,
//! ).unwrap();
//!
//! let graph = QueryGraph::new();
//! let mut optimizer = Optimizer::new();
//! let installed = optimizer.install(&plan, &graph, &catalog).unwrap();
//!
//! let (sink, results) = CollectSink::new();
//! graph.add_sink("results", sink, &installed.handle);
//! graph.run_to_completion(256);
//! assert!(!results.lock().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pipes_cql as cql;
pub use pipes_cursor as cursor;
pub use pipes_graph as graph;
pub use pipes_mem as mem;
pub use pipes_meta as meta;
pub use pipes_nexmark as nexmark;
pub use pipes_ops as ops;
pub use pipes_optimizer as optimizer;
pub use pipes_rel as rel;
pub use pipes_sched as sched;
pub use pipes_time as time;
pub use pipes_trace as trace;
pub use pipes_traffic as traffic;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use pipes_cql::compile_cql;
    pub use pipes_cursor::{Cursor, CursorExt, VecCursor};
    pub use pipes_graph::io::{CollectSink, CountSink, FnSink, GenSource, VecSource};
    pub use pipes_graph::{
        key_hash, BinaryOperator, Collector, Confidence, KeyFn, KeyedState, MergeTie, MetaConfig,
        MetaSnapshot, NodeEstimate, NodeId, Operator, OperatorExt, QueryGraph, Rekey, ShuffleGroup,
        SinkOp, SourceOp, SourceStatus, StreamHandle,
    };
    pub use pipes_mem::{AssignmentStrategy, MemoryManager};
    pub use pipes_meta::{MetadataFactory, Monitor, NodeStats, SeriesView};
    pub use pipes_ops::aggregate::{
        AggStrategy, AvgAgg, CountAgg, MaxAgg, MinAgg, StatsAgg, SumAgg, WithCombine,
    };
    pub use pipes_ops::{
        Coalesce, CountWindow, Difference, Distinct, Filter, FlatMap, Granularity,
        GroupedAggregate, Map, MultiwayJoin, NowWindow, PartitionedCountWindow, Reorder,
        RippleJoin, ScalarAggregate, TimeWindow, Union,
    };
    pub use pipes_optimizer::{
        Catalog, Expr, LogicalPlan, Optimizer, Schema, Tuple, Value, WindowSpec,
    };
    pub use pipes_sched::{
        ChainStrategy, ExecutionPlan, ExecutionReport, FifoStrategy, GreedyStrategy,
        MultiThreadExecutor, RandomStrategy, RateBasedStrategy, RoundRobinStrategy,
        SingleThreadExecutor, Strategy, WorkStealingExecutor,
    };
    pub use pipes_time::{Duration, Element, Message, TimeInterval, Timestamp};
}
