//! Traffic management on synthetic FSP loop-detector data.
//!
//! Reproduces the paper's first demonstration scenario: continuous queries
//! over I-880 loop-detector readings, installed through CQL and the
//! multi-query optimizer, with the performance monitor attached to watch
//! secondary metadata (rates, selectivity, queue lengths) while the graph
//! runs under a real scheduler.
//!
//! Run with: `cargo run --release --example traffic_monitor`

use pipes::prelude::*;
use pipes::traffic::{self, generator::FspConfig, queries};

fn main() {
    // --- register the traffic stream (30 simulated minutes) --------------
    let mut catalog = Catalog::new();
    let config = FspConfig {
        duration_secs: 1800,
        sections: 6,
        base_vehicles_per_min: 2.0,
        incidents_per_hour: 6.0,
        incident_duration_secs: 1200,
        ..Default::default()
    };
    traffic::register(&mut catalog, config);

    // --- install three continuous queries through the optimizer ----------
    let graph = QueryGraph::new();
    let mut optimizer = Optimizer::new();

    let q1 = compile_cql(
        "SELECT AVG(speed) AS avg_hov_speed \
         FROM traffic [RANGE 10 MINUTES] \
         WHERE lane = 4 AND direction = 0 \
         EVERY 2 MINUTES",
        &catalog,
    )
    .expect("Q1 parses");
    let q3 = compile_cql(queries::q3_section_flow_cql(), &catalog).expect("Q3 parses");
    let q2 = queries::q2_persistent_slowdown_plan(0, 40.0);

    let r1 = optimizer
        .install(&q1, &graph, &catalog)
        .expect("install Q1");
    let r3 = optimizer
        .install(&q3, &graph, &catalog)
        .expect("install Q3");
    let r2 = optimizer
        .install(&q2, &graph, &catalog)
        .expect("install Q2");
    println!(
        "installed 3 queries: {} nodes created, {} subplans shared",
        r1.created + r2.created + r3.created,
        r1.reused + r2.reused + r3.reused
    );
    println!("\nchosen plan for Q1:\n{}", r1.chosen.pretty());

    let (s1, hov_speeds) = CollectSink::new();
    graph.add_sink("q1:hov-speed", s1, &r1.handle);
    let (s3, flows) = CollectSink::new();
    graph.add_sink("q3:section-flow", s3, &r3.handle);
    let (s2, incidents) = CollectSink::new();
    graph.add_sink("q2:slowdowns", s2, &r2.handle);

    // --- attach the performance monitor -----------------------------------
    let monitor = Monitor::new();
    for info in graph.infos() {
        monitor.register(graph.stats(info.id));
    }

    // --- run with the Chain scheduler, sampling metadata as we go ---------
    let executor = SingleThreadExecutor::new().with_quantum(128);
    let mut strategy = ChainStrategy::new(64);
    // Sample the monitor on a wall-clock thread while the executor runs.
    let guard = monitor.spawn(std::time::Duration::from_millis(20));
    let report = executor.run(&graph, &mut strategy);
    guard.stop();

    println!(
        "\nexecution: {} quanta, {} messages, {:.0} elements/s, peak queue {}",
        report.quanta,
        report.consumed,
        report.throughput(),
        report.peak_queue
    );

    // --- results -----------------------------------------------------------
    println!("\nQ1 — average HOV speed toward Oakland (2-minute reports):");
    for e in hov_speeds.lock().iter() {
        if let Value::Float(v) = e.payload[0] {
            println!("  {:>9} → {:>5.1} mph", e.interval.start(), v);
        }
    }

    let flagged: std::collections::BTreeSet<i64> = incidents
        .lock()
        .iter()
        .filter_map(|e| e.payload[0].as_i64())
        .collect();
    println!("\nQ2 — sections slow for 15 consecutive minutes: {flagged:?}");

    println!(
        "\nQ3 — {} section-flow reports collected",
        flows.lock().len()
    );

    // --- the monitoring tool (Figure 3): metadata over time ---------------
    println!("\nsecondary metadata (input rate per node):");
    print!("{}", monitor.render_sparklines(SeriesView::InputRate));
    println!("\nsecondary metadata (queue lengths):");
    print!("{}", monitor.render_sparklines(SeriesView::QueueLen));
}
