//! pipes-top: a `top(1)`-style live view of a running query graph.
//!
//! Drives a bursty filter/aggregate pipeline one scheduling round at a
//! time and, between rounds, renders the monitor's live table — one row
//! per node with the metadata plane's online estimates (input/output
//! rate, run-level selectivity, state footprint) next to the queue depth
//! from the stats plane. Nodes whose estimator block has not warmed up
//! yet show `-` in the estimator columns.
//!
//! After the run it takes a full `MetaSnapshot` and prints each node's
//! topology-aware estimate with its confidence tag, then splices a cold
//! consumer onto the warm graph to show derivation: the new node has
//! never run, but inherits its input rate from its measured upstream.
//!
//! Run with: `cargo run --release --example pipes_top`

use pipes::prelude::*;

/// Bursty readings: flurries of `BURST` values per timestamp, so rates
/// and selectivities move between frames instead of converging instantly.
const BURST: u64 = 32;

fn readings(n: u64) -> Vec<Element<i64>> {
    (0..n)
        .map(|i| {
            let t = i / BURST;
            let v = ((i * 37) % 100) as i64;
            Element::at(v, Timestamp::new(t + 1))
        })
        .collect()
}

fn main() {
    // source → high-pass filter (drops ~half) → 64-tick window → count → sink.
    let graph = QueryGraph::new();
    let source = graph.add_source("readings", VecSource::new(readings(200_000)));
    let high = graph.add_unary("high-pass", Filter::new(|v: &i64| *v >= 50), &source);
    let windowed = graph.add_unary(
        "window-64",
        TimeWindow::new(Duration::from_ticks(64)),
        &high,
    );
    let counted = graph.add_unary("count", ScalarAggregate::new(CountAgg), &windowed);
    let (sink, results) = CollectSink::new();
    graph.add_sink("results", sink, &counted);

    // A keyed-parallel branch: per-bucket counts fanned out over two
    // instances behind a shuffle edge. The partitioner routes by
    // `key_hash` of the group key — the same hash the operator's keyed
    // state hand-off uses, so `parallelize` can re-shard it live.
    let buckets = graph.add_keyed_unary(
        "bucket-count",
        || GroupedAggregate::new(|v: &i64| v % 8, CountAgg),
        std::sync::Arc::new(|v: &i64| key_hash(&(v % 8))),
        2,
        Some(std::sync::Arc::new(
            |a: &Element<(i64, u64)>, b: &Element<(i64, u64)>| a.payload.0.cmp(&b.payload.0),
        )),
        &high,
    );
    let (bucket_sink, bucket_results) = CollectSink::new();
    graph.add_sink("buckets", bucket_sink, &buckets);

    // Attach the monitor with each node's live metadata block and the
    // topology epoch it was spliced at, so `render_top` can show the
    // estimator values beside the queue depths and tag each row with its
    // splice time in the `epoch` column.
    let monitor = Monitor::new();
    for id in graph.node_ids() {
        monitor.register_at_epoch(
            graph.stats(id),
            Some(graph.meta(id)),
            graph.topology_epoch(),
        );
    }

    // Step every node round-robin; every `rounds_per_frame` rounds, draw a
    // frame. (A terminal deployment would clear the screen and redraw in
    // place — frames are printed sequentially here to stay pipe-friendly.)
    let rounds_per_frame = 40;
    let mut frame = 0;
    let mut widened = false;
    while !graph.all_finished() {
        for _ in 0..rounds_per_frame {
            for id in graph.node_ids() {
                if !graph.is_finished(id) {
                    graph.step_node(id, 256);
                }
            }
        }
        frame += 1;
        if frame <= 4 {
            println!("--- frame {frame} ---");
            print!("{}", monitor.render_top());
        }
        // Live re-shard: once the metadata plane has warmed up, widen the
        // keyed branch from 2 to 4 instances against the running graph.
        // The new instances splice in mid-stream; their rows join the
        // monitor at the current topology epoch.
        if frame == 2 && !widened {
            widened = true;
            let group = graph
                .shuffle_groups()
                .pop()
                .expect("the keyed branch registered a shuffle group");
            for id in graph.parallelize(group.handle, 4) {
                monitor.register_at_epoch(
                    graph.stats(id),
                    Some(graph.meta(id)),
                    graph.topology_epoch(),
                );
            }
            println!(
                "--- widened 'bucket-count' to 4 instances at epoch {} ---",
                graph.topology_epoch()
            );
        }
    }
    println!("--- final ({frame} frames) ---");
    print!("{}", monitor.render_top());
    println!("window counts delivered: {}", results.lock().len());
    println!("bucket counts delivered: {}", bucket_results.lock().len());

    // Shuffle-group introspection: live instance counts per keyed group,
    // and the same values as the `pipes_node_instances` Prometheus gauge.
    println!("\nshuffle groups:");
    let shuffle_gauges: Vec<pipes::trace::prometheus::ShuffleGauge> = graph
        .shuffle_groups()
        .into_iter()
        .map(|sg| {
            println!(
                "  {:<14} {} instances (merge node {})",
                sg.name,
                sg.instance_ids.len(),
                sg.handle
            );
            pipes::trace::prometheus::ShuffleGauge {
                group: sg.name,
                instances: sg.instance_ids.len() as u64,
            }
        })
        .collect();
    let stats: Vec<_> = graph
        .node_ids()
        .map(|id| (graph.stats(id), None::<pipes::meta::NodeMetaSnapshot>))
        .collect();
    let dump = pipes::trace::prometheus::render_with_shuffles(
        &stats,
        Some(pipes::trace::prometheus::GraphGauges {
            nodes: graph.node_ids().count() as u64,
            topology_epoch: graph.topology_epoch(),
        }),
        &shuffle_gauges,
    );
    for line in dump
        .lines()
        .filter(|l| l.starts_with("pipes_node_instances") || l.starts_with("pipes_topology_epoch"))
    {
        println!("{line}");
    }

    // The introspection surface: topology-aware estimates with provenance.
    let snap = graph.meta_snapshot(&MetaConfig::default());
    println!("\nmeta snapshot (measured while running):");
    for est in snap.iter() {
        println!(
            "  {:<12} in {:>9.1}/s out {:>9.1}/s sel {:>5.2} [{:?}]",
            est.name, est.in_rate, est.out_rate, est.selectivity, est.confidence
        );
    }

    // Derivation demo: splice a consumer that has never run onto the warm
    // filter. Its estimate is Derived — input rate inherited from the
    // measured upstream output, selectivity from the prior.
    let (cold_sink, _cold_buf) = CollectSink::new();
    let cold = graph.add_sink("cold-tap", cold_sink, &high);
    monitor.register_at_epoch(
        graph.stats(cold),
        Some(graph.meta(cold)),
        graph.topology_epoch(),
    );
    let snap = graph.meta_snapshot(&MetaConfig::default());
    let est = snap.get(cold).expect("cold tap estimate");
    println!(
        "\nspliced cold node '{}' at topology epoch {}: in {:.1}/s [{:?}] — \
         derived from 'high-pass' without ever running",
        est.name,
        graph.topology_epoch(),
        est.in_rate,
        est.confidence
    );
    println!("\n{}", monitor.render_top());
}
