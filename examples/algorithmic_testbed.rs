//! The algorithmic-testbed character of PIPES, in one binary.
//!
//! The paper's closing demonstration: because every component is an
//! exchangeable building block, the same workload can be re-run under
//! different scheduling strategies and different join SweepAreas within a
//! uniform framework. This example compares all six scheduling strategies
//! on a bursty two-query graph, then all three SweepArea variants on a
//! windowed stream join, and finally shows the memory manager shedding a
//! join under pressure.
//!
//! Run with: `cargo run --release --example algorithmic_testbed`

use pipes::ops::join::{HashSweepArea, ListSweepArea, OrderedSweepArea};
use pipes::prelude::*;

/// A bursty source: `n` elements whose timestamps alternate between dense
/// bursts and quiet gaps.
fn bursty(n: u64, seed: u64) -> Vec<Element<(u64, u64)>> {
    let mut t = 0u64;
    (0..n)
        .map(|i| {
            t += if (i / 64) % 2 == 0 { 1 } else { 40 };
            Element::at((i.wrapping_mul(seed) % 100, i), Timestamp::new(t))
        })
        .collect()
}

fn build_graph() -> QueryGraph {
    let g = QueryGraph::new();
    let src = g.add_source("bursty", VecSource::new(bursty(20_000, 7)));
    // Query 1: selective filter chain.
    let f = g.add_unary(
        "selective",
        Filter::new(|(k, _): &(u64, u64)| *k < 10),
        &src,
    );
    let w = g.add_unary("window", TimeWindow::new(Duration::from_ticks(500)), &f);
    let agg = g.add_unary("count", ScalarAggregate::new(CountAgg), &w);
    let (s1, _) = CollectSink::new();
    g.add_sink("sink1", s1, &agg);
    // Query 2: grouped aggregation over everything.
    let w2 = g.add_unary("window2", TimeWindow::new(Duration::from_ticks(200)), &src);
    let g2 = g.add_unary(
        "per-key-max",
        GroupedAggregate::new(|(k, _): &(u64, u64)| *k, MaxAgg(|(_, v): &(u64, u64)| *v)),
        &w2,
    );
    let (s2, _) = CollectSink::new();
    g.add_sink("sink2", s2, &g2);
    g
}

fn compare_schedulers() {
    println!("── scheduling strategies on a bursty 2-query graph ──");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "strategy", "quanta", "peak queue", "avg queue", "wall ms"
    );
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(FifoStrategy),
        Box::new(RoundRobinStrategy::new()),
        Box::new(GreedyStrategy),
        Box::new(ChainStrategy::new(64)),
        Box::new(RateBasedStrategy),
        Box::new(RandomStrategy::new(42)),
    ];
    for mut s in strategies {
        let g = build_graph();
        let report = SingleThreadExecutor::new()
            .with_quantum(32)
            .with_sample_every(4)
            .run(&g, s.as_mut());
        println!(
            "{:<14} {:>10} {:>12} {:>12.1} {:>10.1}",
            report.strategy,
            report.quanta,
            report.peak_queue,
            report.avg_queue,
            report.wall.as_secs_f64() * 1000.0
        );
    }
}

fn compare_sweep_areas() {
    println!("\n── SweepArea variants on a windowed equi-join ──");
    let make_inputs = || {
        let left: Vec<Element<u64>> = (0..4000u64)
            .map(|i| {
                Element::new(
                    i % 50,
                    TimeInterval::new(Timestamp::new(i), Timestamp::new(i + 100)),
                )
            })
            .collect();
        let right = left.clone();
        (left, right)
    };
    println!("{:<10} {:>10} {:>12}", "variant", "results", "wall ms");
    for variant in ["list", "ordered", "hash"] {
        let join: RippleJoin<u64, u64, (u64, u64)> = match variant {
            "list" => RippleJoin::with_areas(
                Box::new(ListSweepArea::new(|r: &u64, l: &u64| l == r)),
                Box::new(ListSweepArea::new(|l: &u64, r: &u64| l == r)),
                |l, r| (*l, *r),
            ),
            "ordered" => RippleJoin::with_areas(
                Box::new(OrderedSweepArea::new(|r: &u64, l: &u64| l == r)),
                Box::new(OrderedSweepArea::new(|l: &u64, r: &u64| l == r)),
                |l, r| (*l, *r),
            ),
            _ => RippleJoin::with_areas(
                Box::new(HashSweepArea::new(|l: &u64| *l, |r: &u64| *r)),
                Box::new(HashSweepArea::new(|r: &u64| *r, |l: &u64| *l)),
                |l, r| (*l, *r),
            ),
        };
        let (left, right) = make_inputs();
        let start = std::time::Instant::now();
        let out = pipes::ops::drive::run_binary(join, left, right);
        println!(
            "{:<10} {:>10} {:>12.1}",
            variant,
            out.len(),
            start.elapsed().as_secs_f64() * 1000.0
        );
    }
}

fn memory_manager_demo() {
    println!("\n── adaptive memory management ──");
    let g = QueryGraph::new();
    let left: Vec<Element<u64>> = (0..2000u64)
        .map(|i| {
            Element::new(
                i % 20,
                TimeInterval::new(Timestamp::new(i), Timestamp::new(i + 5000)),
            )
        })
        .collect();
    let l = g.add_source("l", VecSource::new(left.clone()));
    let r = g.add_source("r", VecSource::new(left));
    let join = g.add_binary(
        "join",
        RippleJoin::equi(|x: &u64| *x, |y: &u64| *y, |x, y| (*x, *y)),
        &l,
        &r,
    );
    let (sink, results) = CollectSink::new();
    g.add_sink("sink", sink, &join);

    let mut manager = MemoryManager::new(500, AssignmentStrategy::Uniform);
    manager.subscribe(join.node());

    // Run in slices, letting the manager rebalance between them.
    let mut shed_total = 0;
    while !g.all_finished() {
        for id in 0..g.len() {
            g.step_node(id, 64);
        }
        let report = manager.rebalance(&g);
        shed_total += report.shed;
    }
    println!(
        "join ran under a 500-element budget: {} elements shed, {} (approximate) results",
        shed_total,
        results.lock().len()
    );
}

fn main() {
    compare_schedulers();
    compare_sweep_areas();
    memory_manager_demo();
}
