//! Quickstart: assemble a tiny DSMS from the PIPES building blocks.
//!
//! Builds the query "count the readings above 50 within a sliding 10-tick
//! window" directly from physical operators, runs it to completion with the
//! built-in executor, and prints the snapshot-aware results — plus the
//! source-to-sink latency quantiles the flight recorder's latency pipeline
//! collected along the way.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Set `PIPES_TRACE_OUT=/path/to/trace.json` to also dump the flight
//! recorder's event log as Chrome tracing JSON (open it at
//! `chrome://tracing` or <https://ui.perfetto.dev>), and
//! `PIPES_META_OUT=/path/to/meta.json` to dump the live metadata plane's
//! introspection snapshot (per-node rates, selectivities, confidence tags).

use pipes::prelude::*;

fn main() {
    // 1. A source: ten readings, one per tick.
    let readings: Vec<Element<i64>> = [52, 40, 71, 66, 12, 90, 33, 58, 49, 77]
        .into_iter()
        .enumerate()
        .map(|(i, v)| Element::at(v, Timestamp::new(i as u64)))
        .collect();

    // 2. A query graph: source → filter → window → count → sink.
    //    Filter and window are *fused* into one virtual node: no queue
    //    between them (the PIPES direct-interoperability architecture).
    let graph = QueryGraph::new();
    let source = graph.add_source("readings", VecSource::new(readings));
    let windowed = graph.add_unary(
        "high-pass ∘ window",
        Filter::new(|v: &i64| *v > 50).then(TimeWindow::new(Duration::from_ticks(10))),
        &source,
    );
    let counted = graph.add_unary("count", ScalarAggregate::new(CountAgg), &windowed);
    let (sink, results) = CollectSink::new();
    let sink_id = graph.add_sink("results", sink, &counted);

    // 3. Run. (Real deployments pick a scheduler from pipes-sched.)
    //    The latency pipeline makes sources stamp their elements and sinks
    //    time them on arrival, feeding per-sink P² quantile estimators.
    graph.enable_latency_tracking();
    graph.run_to_completion(16);

    // 4. Results are values with *validity intervals*: at every instant the
    //    count equals the number of high readings in the trailing window.
    println!("high readings in the last 10 ticks, over time:");
    for element in results.lock().iter() {
        println!("  {:>2} valid during {}", element.payload, element.interval);
    }

    let peak = results
        .lock()
        .iter()
        .map(|e| e.payload)
        .max()
        .expect("stream was not empty");
    println!("peak concurrent high readings: {peak}");

    // 5. The flight recorder was on the whole time. Source-to-sink latency:
    if let Some(lat) = graph.stats(sink_id).latency() {
        println!(
            "source→sink latency: p50 {:.1} µs, p95 {:.1} µs ({} samples)",
            lat.p50_ns / 1e3,
            lat.p95_ns / 1e3,
            lat.count
        );
    }

    // 6. The live metadata plane was on too: every node kept graph-fed
    //    online estimators (rates, run-level selectivity) current while the
    //    query ran, and the snapshot tags each value with its provenance.
    let meta = graph.meta_snapshot(&MetaConfig::default());
    println!("metadata plane (per-node online estimates):");
    for est in meta.iter() {
        println!(
            "  {:<18} in {:>9.1}/s out {:>9.1}/s sel {:>5.2} [{:?}]",
            est.name, est.in_rate, est.out_rate, est.selectivity, est.confidence
        );
    }
    if let Some(path) = std::env::var_os("PIPES_META_OUT") {
        let json = meta.to_json();
        std::fs::write(&path, &json).expect("write meta snapshot");
        println!(
            "wrote {} node estimates to {}",
            meta.iter().count(),
            path.to_string_lossy()
        );
    }

    // 7. And the recorder's event log can be exported for chrome://tracing.
    if let Some(path) = std::env::var_os("PIPES_TRACE_OUT") {
        let trace = pipes::trace::snapshot();
        let json = pipes::trace::chrome::chrome_trace_json(&trace);
        pipes::trace::chrome::validate_json(&json).expect("exporter must emit valid JSON");
        std::fs::write(&path, &json).expect("write trace file");
        println!(
            "wrote {} trace events to {}",
            trace.events.len(),
            path.to_string_lossy()
        );
    }
}
