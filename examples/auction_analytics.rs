//! Online-auction analytics (NEXMark) with multi-query optimization.
//!
//! Reproduces the paper's second demonstration scenario: several CQL
//! queries over the auction event streams — including the headline "return
//! every 10 minutes the highest bid in the recent 10 minutes" and a
//! stream–relation join against the persistent person table — installed
//! one after another into the *same running graph*, so overlapping
//! subplans are shared by the multi-query optimizer.
//!
//! Run with: `cargo run --release --example auction_analytics`

use pipes::nexmark::{self, generator::NexmarkConfig, queries};
use pipes::prelude::*;

fn main() {
    let mut catalog = Catalog::new();
    nexmark::register(
        &mut catalog,
        NexmarkConfig {
            max_events: 20_000,
            mean_inter_event_ms: 120.0,
            ..Default::default()
        },
    );

    let graph = QueryGraph::new();
    let mut optimizer = Optimizer::new();
    let mut sinks = Vec::new();

    println!("installing the NEXMark query suite:");
    for (name, sql) in queries::all() {
        let plan = compile_cql(sql, &catalog).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = optimizer
            .install(&plan, &graph, &catalog)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let (sink, buf) = CollectSink::new();
        graph.add_sink(name, sink, &report.handle);
        println!(
            "  {name:<28} +{} nodes, {} shared, est. cost {:>10.0}",
            report.created, report.reused, report.estimate.cost
        );
        sinks.push((name, buf));
    }
    println!(
        "graph: {} nodes for {} queries (a fresh graph per query would need many more)",
        graph.len(),
        sinks.len()
    );

    // Run everything on two worker threads (layer 3 of the scheduler).
    let graph = std::sync::Arc::new(graph);
    let reports = MultiThreadExecutor::new(2)
        .with_quantum(128)
        .run(&graph, || Box::new(FifoStrategy));
    let total = ExecutionReport::merge(&reports).consumed;
    println!(
        "\nprocessed {total} messages across {} threads",
        reports.len()
    );

    println!("\nresults:");
    for (name, buf) in &sinks {
        let rows = buf.lock();
        println!("  {name:<28} {} result rows", rows.len());
    }

    // Show the headline query's answers.
    let highest = &sinks
        .iter()
        .find(|(n, _)| *n == "q3_highest_bid")
        .expect("installed above")
        .1;
    println!("\nhighest bid per 10-minute period:");
    for e in highest.lock().iter() {
        if let Some(cents) = e.payload[0].as_i64() {
            println!(
                "  {:>10} → ${:>9.2}",
                e.interval.start(),
                cents as f64 / 100.0
            );
        }
    }

    // And a taste of the stream–relation join.
    let enriched = &sinks
        .iter()
        .find(|(n, _)| *n == "q6_bid_with_person")
        .expect("installed above")
        .1;
    println!("\nfirst bids enriched with person data (persistent relation):");
    for e in enriched.lock().iter().take(5) {
        println!(
            "  auction {} at {} by {} from {}",
            e.payload[0], e.payload[1], e.payload[2], e.payload[3]
        );
    }
}
