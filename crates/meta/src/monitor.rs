//! The performance-monitoring tool.
//!
//! Reproduces the functionality of the PIPES performance monitor (Figure 3 of
//! the demo paper): register arbitrary nodes, sample their secondary metadata
//! periodically, and visualize the resulting time series — here as ASCII
//! sparklines and CSV rather than a Swing window.

use crate::{NodeMeta, NodeMetaSnapshot, NodeStats, StatsSnapshot};
use pipes_sync::{Arc, Condvar, Mutex};
use std::fmt::Write as _;
use std::time::Instant;

/// A sampled metric series for one node.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    /// Sample times, in seconds since monitoring began.
    pub times: Vec<f64>,
    /// Snapshots taken at those times.
    pub snapshots: Vec<StatsSnapshot>,
    /// Metadata-plane estimator snapshots taken at those times (`None`
    /// entries: node registered without a [`NodeMeta`], block not yet warm,
    /// or the plane compiled out). May be shorter than `snapshots` for
    /// hand-built series; viewers treat missing entries as absent.
    pub metas: Vec<Option<NodeMetaSnapshot>>,
}

/// Which derived series to extract from a [`TimeSeries`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesView {
    /// Input rate in elements/second (differenced cumulative input count).
    InputRate,
    /// Output rate in elements/second.
    OutputRate,
    /// Instantaneous input-queue length.
    QueueLen,
    /// Instantaneous state memory (elements).
    Memory,
    /// Cumulative selectivity (out/in).
    Selectivity,
    /// Number of subscribed sinks.
    Subscribers,
    /// Cumulative mean batch size (messages per batched queue drain).
    BatchSize,
    /// p95 source-to-sink latency in nanoseconds (0 until the trace
    /// latency pipeline reports samples for the node).
    LatencyP95,
    /// Estimated input rate from the live metadata plane's sliding-window
    /// estimator (0 while the node's [`NodeMeta`] has no snapshot).
    EstInRate,
    /// Estimated output rate from the live metadata plane.
    EstOutRate,
    /// EWMA run-level selectivity from the live metadata plane.
    EstSelectivity,
}

impl SeriesView {
    /// Short label used in rendered output.
    pub fn label(&self) -> &'static str {
        match self {
            SeriesView::InputRate => "in/s",
            SeriesView::OutputRate => "out/s",
            SeriesView::QueueLen => "queue",
            SeriesView::Memory => "mem",
            SeriesView::Selectivity => "sel",
            SeriesView::Subscribers => "subs",
            SeriesView::BatchSize => "batch",
            SeriesView::LatencyP95 => "p95lat",
            SeriesView::EstInRate => "est-in/s",
            SeriesView::EstOutRate => "est-out/s",
            SeriesView::EstSelectivity => "est-sel",
        }
    }
}

impl TimeSeries {
    /// Extracts the requested derived series.
    pub fn view(&self, view: SeriesView) -> Vec<f64> {
        match view {
            SeriesView::QueueLen => self.snapshots.iter().map(|s| s.queue_len as f64).collect(),
            SeriesView::Memory => self.snapshots.iter().map(|s| s.memory as f64).collect(),
            SeriesView::Subscribers => self
                .snapshots
                .iter()
                .map(|s| s.subscribers as f64)
                .collect(),
            SeriesView::Selectivity => self
                .snapshots
                .iter()
                .map(|s| s.selectivity().unwrap_or(0.0))
                .collect(),
            SeriesView::BatchSize => self
                .snapshots
                .iter()
                .map(|s| s.avg_batch_size().unwrap_or(0.0))
                .collect(),
            SeriesView::LatencyP95 => self
                .snapshots
                .iter()
                .map(|s| s.latency.map(|l| l.p95_ns).unwrap_or(0.0))
                .collect(),
            SeriesView::InputRate => self.rate(|s| s.in_count),
            SeriesView::OutputRate => self.rate(|s| s.out_count),
            SeriesView::EstInRate => self.meta_view(|m| m.in_rate),
            SeriesView::EstOutRate => self.meta_view(|m| m.out_rate),
            SeriesView::EstSelectivity => self.meta_view(|m| m.selectivity),
        }
    }

    /// One value per stats sample: the metadata-plane reading at that
    /// sample, or 0 when the node had no estimator snapshot there.
    fn meta_view(&self, f: impl Fn(&NodeMetaSnapshot) -> f64) -> Vec<f64> {
        (0..self.snapshots.len())
            .map(|i| self.metas.get(i).and_then(|m| m.as_ref()).map_or(0.0, &f))
            .collect()
    }

    fn rate(&self, f: impl Fn(&StatsSnapshot) -> u64) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.snapshots.len());
        for i in 0..self.snapshots.len() {
            if i == 0 {
                out.push(0.0);
            } else {
                let dt = (self.times[i] - self.times[i - 1]).max(1e-9);
                // saturating_sub: a counter that went backwards (node
                // restarted / stats reset) reads as a zero-rate interval
                // instead of wrapping to ~u64::MAX.
                let dn = f(&self.snapshots[i]).saturating_sub(f(&self.snapshots[i - 1]));
                out.push(dn as f64 / dt);
            }
        }
        out
    }
}

/// Samples registered nodes into per-node time series.
pub struct Monitor {
    started: Instant,
    inner: Arc<MonitorInner>,
}

/// One node's metadata-plane registration: the live estimator block (if
/// any) and the graph topology epoch at which the node was registered —
/// for a hot graph, the splice time shown by [`Monitor::render_top`]'s
/// `epoch` column.
struct MetaReg {
    meta: Option<Arc<NodeMeta>>,
    spliced_epoch: Option<u64>,
}

struct MonitorInner {
    nodes: Mutex<Vec<Arc<NodeStats>>>,
    /// Metadata-plane registrations, parallel to `nodes` (`meta: None`
    /// for nodes registered without a block).
    /// Lock order: `nodes` → `metas` → `series`.
    metas: Mutex<Vec<MetaReg>>,
    series: Mutex<Vec<TimeSeries>>,
    /// Sampler lifecycle flag; paired with `stop` so `MonitorGuard::stop`
    /// interrupts the sampler's inter-sample wait instead of letting it
    /// sleep out a full interval.
    running: Mutex<bool>,
    stop: Condvar,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Monitor {
            started: Instant::now(),
            inner: Arc::new(MonitorInner {
                nodes: Mutex::new(Vec::new()),
                metas: Mutex::new(Vec::new()),
                series: Mutex::new(Vec::new()),
                running: Mutex::new(false),
                stop: Condvar::new(),
            }),
        }
    }

    /// Registers a node for sampling. Nodes can be added while sampling runs.
    pub fn register(&self, stats: Arc<NodeStats>) {
        self.register_with_meta(stats, None);
    }

    /// Registers a node together with its live metadata block (e.g. from
    /// `QueryGraph::meta`), so samples also capture the plane's
    /// rate/selectivity estimators ([`SeriesView::EstInRate`] and friends).
    pub fn register_with_meta(&self, stats: Arc<NodeStats>, meta: Option<Arc<NodeMeta>>) {
        self.register_inner(stats, meta, None);
    }

    /// Like [`Monitor::register_with_meta`], additionally recording the
    /// graph's topology epoch at registration time (from
    /// `QueryGraph::topology_epoch()`). [`Monitor::render_top`] shows it
    /// in the `epoch` column, tagging each row of a hot graph with when
    /// the node was spliced in.
    pub fn register_at_epoch(
        &self,
        stats: Arc<NodeStats>,
        meta: Option<Arc<NodeMeta>>,
        topology_epoch: u64,
    ) {
        self.register_inner(stats, meta, Some(topology_epoch));
    }

    fn register_inner(
        &self,
        stats: Arc<NodeStats>,
        meta: Option<Arc<NodeMeta>>,
        spliced_epoch: Option<u64>,
    ) {
        let mut nodes = self.inner.nodes.lock();
        let mut metas = self.inner.metas.lock();
        let mut series = self.inner.series.lock();
        nodes.push(stats);
        metas.push(MetaReg {
            meta,
            spliced_epoch,
        });
        series.push(TimeSeries::default());
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.lock().len()
    }

    /// The registered nodes, in registration order (e.g. for the
    /// Prometheus dumper in `pipes-trace`).
    pub fn registered(&self) -> Vec<Arc<NodeStats>> {
        self.inner.nodes.lock().clone()
    }

    /// Takes one sample of every registered node at the given logical time
    /// (seconds). Deterministic entry point for tests and simulations.
    pub fn sample_at(&self, t: f64) {
        let nodes = self.inner.nodes.lock();
        let metas = self.inner.metas.lock();
        let mut series = self.inner.series.lock();
        for (i, node) in nodes.iter().enumerate() {
            series[i].times.push(t);
            series[i].snapshots.push(node.snapshot());
            series[i]
                .metas
                .push(metas[i].meta.as_ref().and_then(|m| m.snapshot()));
        }
    }

    /// Takes one sample stamped with wall-clock time since monitor creation.
    pub fn sample(&self) {
        self.sample_at(self.started.elapsed().as_secs_f64());
    }

    /// Spawns a background thread sampling every `interval`. Returns a
    /// guard; dropping it (or calling its `stop` method) stops the thread
    /// promptly — the inter-sample wait is a condvar the guard signals, so
    /// stopping never blocks for a full `interval`.
    pub fn spawn(&self, interval: std::time::Duration) -> MonitorGuard {
        *self.inner.running.lock() = true;
        let inner = Arc::clone(&self.inner);
        let started = self.started;
        let handle = pipes_sync::thread::spawn(move || loop {
            let t = started.elapsed().as_secs_f64();
            {
                let nodes = inner.nodes.lock();
                let metas = inner.metas.lock();
                let mut series = inner.series.lock();
                for (i, node) in nodes.iter().enumerate() {
                    series[i].times.push(t);
                    series[i].snapshots.push(node.snapshot());
                    series[i]
                        .metas
                        .push(metas[i].meta.as_ref().and_then(|m| m.snapshot()));
                }
            }
            let mut running = inner.running.lock();
            if !*running {
                break;
            }
            // Timeout = the sampling interval; a stop notification wakes
            // the wait early.
            let _ = inner.stop.wait_for(&mut running, interval);
            if !*running {
                break;
            }
        });
        MonitorGuard {
            inner: Arc::clone(&self.inner),
            handle: Some(handle),
        }
    }

    /// The collected series, one per registered node (same order as
    /// registration).
    pub fn series(&self) -> Vec<TimeSeries> {
        self.inner.series.lock().clone()
    }

    /// Renders one sparkline per registered node for the given view.
    /// Nodes with no samples yet render a `-` placeholder.
    pub fn render_sparklines(&self, view: SeriesView) -> String {
        let nodes = self.inner.nodes.lock();
        let series = self.inner.series.lock();
        let mut out = String::new();
        for (i, node) in nodes.iter().enumerate() {
            let values = series[i].view(view);
            if values.is_empty() {
                let _ = writeln!(out, "{:>20} {:>6} -", node.name(), view.label());
                continue;
            }
            let _ = writeln!(
                out,
                "{:>20} {:>6} {} [min {:.1}, max {:.1}]",
                node.name(),
                view.label(),
                sparkline(&values),
                values.iter().cloned().fold(f64::INFINITY, f64::min),
                values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            );
        }
        out
    }

    /// Renders a `top`-style live table straight from the registered
    /// nodes' current counters and metadata blocks (no sampling history
    /// needed): one row per node with the splice epoch (the topology
    /// epoch recorded at registration, `-` when none was) and live rate /
    /// selectivity / state footprint / queue depth. Estimator columns
    /// show `-` for nodes without a warm metadata block.
    pub fn render_top(&self) -> String {
        let nodes = self.inner.nodes.lock();
        let metas = self.inner.metas.lock();
        let mut out = format!(
            "{:<20} {:>6} {:>10} {:>10} {:>7} {:>12} {:>8}\n",
            "node", "epoch", "in/s", "out/s", "sel", "state-bytes", "queue"
        );
        for (i, node) in nodes.iter().enumerate() {
            let stats = node.snapshot();
            let reg = metas.get(i);
            let epoch = match reg.and_then(|r| r.spliced_epoch) {
                Some(e) => e.to_string(),
                None => "-".to_string(),
            };
            let meta = reg.and_then(|r| r.meta.as_ref()).and_then(|m| m.snapshot());
            match meta {
                Some(m) => {
                    let _ = writeln!(
                        out,
                        "{:<20} {:>6} {:>10.1} {:>10.1} {:>7.3} {:>12} {:>8}",
                        stats.name,
                        epoch,
                        m.in_rate,
                        m.out_rate,
                        m.selectivity,
                        m.state_bytes,
                        stats.queue_len,
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{:<20} {:>6} {:>10} {:>10} {:>7} {:>12} {:>8}",
                        stats.name, epoch, "-", "-", "-", stats.state_bytes, stats.queue_len,
                    );
                }
            }
        }
        out
    }

    /// Dumps all samples as CSV:
    /// `time,node,in,out,queue,mem,sel,subs,avg_batch,p95_lat_ns`.
    pub fn to_csv(&self) -> String {
        let nodes = self.inner.nodes.lock();
        let series = self.inner.series.lock();
        let mut out = String::from(
            "time,node,in_count,out_count,queue_len,memory,selectivity,subscribers,avg_batch,p95_lat_ns\n",
        );
        for (i, node) in nodes.iter().enumerate() {
            let name = node.name();
            for (t, s) in series[i].times.iter().zip(&series[i].snapshots) {
                let _ = writeln!(
                    out,
                    "{:.3},{},{},{},{},{},{:.4},{},{:.2},{:.0}",
                    t,
                    name,
                    s.in_count,
                    s.out_count,
                    s.queue_len,
                    s.memory,
                    s.selectivity().unwrap_or(0.0),
                    s.subscribers,
                    s.avg_batch_size().unwrap_or(0.0),
                    s.latency.map(|l| l.p95_ns).unwrap_or(0.0),
                );
            }
        }
        out
    }
}

/// Stops the background sampling thread when dropped.
pub struct MonitorGuard {
    inner: Arc<MonitorInner>,
    handle: Option<pipes_sync::thread::JoinHandle<()>>,
}

impl MonitorGuard {
    /// Stops sampling and joins the thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        *self.inner.running.lock() = false;
        // Wake the sampler out of its inter-sample wait; the join() below
        // is the real synchronization with the sampling thread.
        self.inner.stop.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MonitorGuard {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Renders values as a unicode sparkline.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_builds_series() {
        let m = Monitor::new();
        let stats = Arc::new(NodeStats::new("src"));
        m.register(Arc::clone(&stats));

        stats.record_in(100);
        m.sample_at(1.0);
        stats.record_in(300);
        stats.set_queue_len(7);
        m.sample_at(2.0);

        let series = m.series();
        assert_eq!(series.len(), 1);
        let s = &series[0];
        assert_eq!(s.times, vec![1.0, 2.0]);
        assert_eq!(s.view(SeriesView::QueueLen), vec![0.0, 7.0]);
        let rates = s.view(SeriesView::InputRate);
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 300.0).abs() < 1e-9); // 300 new elements over 1s
    }

    #[test]
    fn selectivity_series() {
        let m = Monitor::new();
        let stats = Arc::new(NodeStats::new("filter"));
        m.register(Arc::clone(&stats));
        stats.record_in(10);
        stats.record_out(4);
        m.sample_at(0.5);
        let s = &m.series()[0];
        let sel = s.view(SeriesView::Selectivity);
        assert!((sel[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn batch_size_series() {
        let m = Monitor::new();
        let stats = Arc::new(NodeStats::new("op"));
        m.register(Arc::clone(&stats));
        m.sample_at(0.0); // before any drains: reported as 0
        stats.record_in(32);
        stats.record_batches(4);
        m.sample_at(1.0);
        let s = &m.series()[0];
        assert_eq!(s.view(SeriesView::BatchSize), vec![0.0, 8.0]);
        assert!(m.to_csv().lines().next().unwrap().ends_with("p95_lat_ns"));
    }

    #[test]
    fn latency_series() {
        let m = Monitor::new();
        let stats = Arc::new(NodeStats::new("sink"));
        m.register(Arc::clone(&stats));
        m.sample_at(0.0); // before any latency samples: reported as 0
        stats.record_latency_ns(&(1..=100).collect::<Vec<_>>());
        m.sample_at(1.0);
        let s = &m.series()[0];
        let lat = s.view(SeriesView::LatencyP95);
        assert_eq!(lat[0], 0.0);
        assert!(lat[1] > 0.0, "p95lat={}", lat[1]);
    }

    #[test]
    fn rate_tolerates_non_monotonic_counters() {
        // A node restart (or stats reset) makes a cumulative counter go
        // backwards between samples; the differenced rate must clamp to 0
        // rather than wrap to ~u64::MAX.
        fn snap(name: &str, in_count: u64) -> StatsSnapshot {
            StatsSnapshot {
                name: name.into(),
                in_count,
                out_count: 0,
                heartbeat_count: 0,
                batch_count: 0,
                queue_len: 0,
                memory: 0,
                state_bytes: 0,
                subscribers: 0,
                latency: None,
            }
        }
        let series = TimeSeries {
            times: vec![0.0, 1.0, 2.0],
            snapshots: vec![snap("n", 1000), snap("n", 200), snap("n", 700)],
            metas: vec![],
        };
        let rates = series.view(SeriesView::InputRate);
        assert_eq!(rates[0], 0.0);
        assert_eq!(rates[1], 0.0, "backwards counter must clamp, not wrap");
        assert!((rates[2] - 500.0).abs() < 1e-9);
    }

    #[test]
    fn sparkline_shape() {
        assert_eq!(sparkline(&[]), "");
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(line.chars().count(), 4);
        let first = line.chars().next().unwrap();
        let last = line.chars().last().unwrap();
        assert_eq!(first, '▁');
        assert_eq!(last, '█');
        // Constant series renders at the floor, not NaN.
        let flat = sparkline(&[5.0, 5.0]);
        assert_eq!(flat, "▁▁");
    }

    #[test]
    fn render_with_zero_samples_shows_placeholder() {
        let m = Monitor::new();
        m.register(Arc::new(NodeStats::new("idle")));
        let out = m.render_sparklines(SeriesView::QueueLen);
        assert!(out.contains("idle"));
        assert!(out.trim_end().ends_with('-'), "got: {out:?}");
        assert!(!out.contains("inf"), "got: {out:?}");
    }

    #[test]
    fn csv_contains_all_rows() {
        let m = Monitor::new();
        let a = Arc::new(NodeStats::new("a"));
        let b = Arc::new(NodeStats::new("b"));
        m.register(a);
        m.register(b);
        m.sample_at(0.0);
        m.sample_at(1.0);
        let csv = m.to_csv();
        // header + 2 nodes * 2 samples
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.lines().next().unwrap().starts_with("time,node"));
    }

    #[test]
    fn background_sampler_collects() {
        let m = Monitor::new();
        let stats = Arc::new(NodeStats::new("bg"));
        m.register(Arc::clone(&stats));
        let guard = m.spawn(std::time::Duration::from_millis(5));
        for _ in 0..10 {
            stats.record_in(10);
            pipes_sync::thread::sleep(std::time::Duration::from_millis(5));
        }
        guard.stop();
        let n = m.series()[0].times.len();
        assert!(n >= 2, "expected at least 2 samples, got {n}");
    }

    #[test]
    fn stop_does_not_wait_out_the_interval() {
        let m = Monitor::new();
        m.register(Arc::new(NodeStats::new("slow")));
        // A pathologically long interval: stopping must still be prompt.
        let guard = m.spawn(std::time::Duration::from_secs(60));
        pipes_sync::thread::sleep(std::time::Duration::from_millis(20));
        let t0 = Instant::now();
        guard.stop();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "stop took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn meta_series_track_estimator_snapshots() {
        let m = Monitor::new();
        let stats = Arc::new(NodeStats::new("op"));
        let meta = Arc::new(NodeMeta::new());
        m.register_with_meta(Arc::clone(&stats), Some(Arc::clone(&meta)));
        m.sample_at(0.0); // block still cold → None entry → 0.0 in views
        meta.record_quantum(100, 25, 0);
        m.sample_at(1.0);
        let s = &m.series()[0];
        assert_eq!(s.metas.len(), 2);
        let sel = s.view(SeriesView::EstSelectivity);
        assert_eq!(sel[0], 0.0, "cold sample reads as zero");
        if crate::META_COMPILED_OUT {
            assert_eq!(sel[1], 0.0);
        } else {
            assert!((sel[1] - 0.25).abs() < 1e-9, "est-sel={}", sel[1]);
            assert!(s.view(SeriesView::EstInRate)[1] > 0.0);
            assert!(s.view(SeriesView::EstOutRate)[1] > 0.0);
        }
    }

    #[test]
    fn series_without_metas_view_estimators_as_zero() {
        // Hand-built series (and pre-plane recordings) have no metas at
        // all; estimator views must degrade to zeros, not panic.
        let m = Monitor::new();
        let stats = Arc::new(NodeStats::new("plain"));
        m.register(Arc::clone(&stats));
        stats.record_in(10);
        m.sample_at(0.0);
        let s = &m.series()[0];
        assert_eq!(s.view(SeriesView::EstInRate), vec![0.0]);
        assert_eq!(s.view(SeriesView::EstSelectivity), vec![0.0]);
    }

    #[test]
    fn render_top_mixes_warm_and_plain_rows() {
        let m = Monitor::new();
        let plain = Arc::new(NodeStats::new("plain"));
        plain.set_queue_len(3);
        m.register(plain);
        let warm = Arc::new(NodeStats::new("warm"));
        let meta = Arc::new(NodeMeta::new());
        meta.record_quantum(200, 100, 64);
        m.register_with_meta(warm, Some(meta));
        let top = m.render_top();
        let lines: Vec<&str> = top.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows:\n{top}");
        assert!(lines[0].contains("node") && lines[0].contains("sel"));
        assert!(lines[1].contains("plain") && lines[1].contains('-'));
        assert!(lines[1].ends_with('3'), "queue column:\n{top}");
        if crate::META_COMPILED_OUT {
            assert!(lines[2].contains('-'), "compiled out → no estimates");
        } else {
            assert!(lines[2].contains("0.500"), "selectivity column:\n{top}");
            assert!(lines[2].contains("64"), "state-bytes column:\n{top}");
        }
    }

    #[test]
    fn render_top_shows_splice_epoch_column() {
        let m = Monitor::new();
        m.register(Arc::new(NodeStats::new("original")));
        m.register_at_epoch(Arc::new(NodeStats::new("late-query")), None, 7);
        let top = m.render_top();
        let lines: Vec<&str> = top.lines().collect();
        assert!(lines[0].contains("epoch"), "header:\n{top}");
        let original = lines[1].split_whitespace().nth(1).unwrap();
        assert_eq!(original, "-", "no epoch recorded at registration");
        let late = lines[2].split_whitespace().nth(1).unwrap();
        assert_eq!(late, "7", "splice epoch column:\n{top}");
    }

    #[test]
    fn render_includes_node_names() {
        let m = Monitor::new();
        m.register(Arc::new(NodeStats::new("join-7")));
        m.sample_at(0.0);
        let out = m.render_sparklines(SeriesView::QueueLen);
        assert!(out.contains("join-7"));
        assert!(out.contains("queue"));
    }
}
