//! Always-on per-node statistics.

use crate::estimators::P2Quantile;
use crate::MetricSet;
use pipes_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use pipes_sync::Mutex;

/// Cheap, always-on counters maintained by every node of a query graph.
///
/// All fields are atomics so the hot path (element processing) never blocks;
/// the composable [`MetricSet`] behind a mutex is only touched when custom
/// metadata has been attached via the decorator factory.
#[derive(Debug, Default)]
pub struct NodeStats {
    name: Mutex<String>,
    in_count: AtomicU64,
    out_count: AtomicU64,
    heartbeat_count: AtomicU64,
    batch_count: AtomicU64,
    queue_len: AtomicUsize,
    memory: AtomicUsize,
    state_bytes: AtomicUsize,
    subscribers: AtomicUsize,
    custom: Mutex<MetricSet>,
    latency: Mutex<Option<LatencyQuantiles>>,
}

/// P² estimators fed by the trace latency pipeline; lazily created on the
/// first batch of samples so nodes without latency tracking pay nothing.
#[derive(Debug)]
struct LatencyQuantiles {
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    count: u64,
}

impl NodeStats {
    /// Creates stats for a node with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        let s = NodeStats::default();
        *s.name.lock() = name.into();
        s
    }

    /// The node's display name.
    pub fn name(&self) -> String {
        self.name.lock().clone()
    }

    /// Records `n` consumed elements.
    #[inline]
    pub fn record_in(&self, n: u64) {
        // ordering: Relaxed — statistics counters carry no payload and
        // synchronize nothing; snapshots tolerate torn cross-counter reads
        // (see snapshot()). Applies to every counter update in this impl.
        self.in_count.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` produced elements.
    #[inline]
    pub fn record_out(&self, n: u64) {
        // ordering: Relaxed — see record_in().
        self.out_count.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` processed heartbeats.
    #[inline]
    pub fn record_heartbeat(&self, n: u64) {
        // ordering: Relaxed — see record_in().
        self.heartbeat_count.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` batched input-queue drains (runs moved under one lock).
    #[inline]
    pub fn record_batches(&self, n: u64) {
        // ordering: Relaxed — see record_in().
        self.batch_count.fetch_add(n, Ordering::Relaxed);
    }

    /// Publishes the current total input-queue length.
    #[inline]
    pub fn set_queue_len(&self, len: usize) {
        // ordering: Relaxed — see record_in().
        self.queue_len.store(len, Ordering::Relaxed);
    }

    /// Publishes the node's current state memory (in retained elements).
    #[inline]
    pub fn set_memory(&self, elems: usize) {
        // ordering: Relaxed — see record_in().
        self.memory.store(elems, Ordering::Relaxed);
    }

    /// Publishes the node's estimated state footprint in bytes (count ×
    /// per-unit estimate; see `pipes_meta::estimators::StateSize`).
    #[inline]
    pub fn set_state_bytes(&self, bytes: usize) {
        // ordering: Relaxed — see record_in().
        self.state_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Publishes the current number of subscribed sinks.
    #[inline]
    pub fn set_subscribers(&self, n: usize) {
        // ordering: Relaxed — see record_in().
        self.subscribers.store(n, Ordering::Relaxed);
    }

    /// Runs `f` with exclusive access to the composable metric set.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricSet) -> R) -> R {
        f(&mut self.custom.lock())
    }

    /// Feeds a batch of source-to-sink latency samples (nanoseconds) into
    /// the node's P² quantile estimators.
    ///
    /// Called by sinks on the trace latency pipeline, once per scheduler
    /// quantum with the quantum's sampled observations — one lock per
    /// quantum, not per tuple. The estimators are created on first use.
    pub fn record_latency_ns(&self, samples: &[u64]) {
        if samples.is_empty() {
            return;
        }
        let mut guard = self.latency.lock();
        let lat = guard.get_or_insert_with(|| LatencyQuantiles {
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            count: 0,
        });
        for &s in samples {
            let x = s as f64;
            lat.p50.observe(x);
            lat.p95.observe(x);
            lat.p99.observe(x);
        }
        lat.count += samples.len() as u64;
    }

    /// Current latency quantiles, or `None` if no latency sample was ever
    /// recorded (latency tracking disabled or node is not a sink).
    pub fn latency(&self) -> Option<LatencySummary> {
        self.latency.lock().as_ref().map(|l| LatencySummary {
            count: l.count,
            p50_ns: l.p50.value(),
            p95_ns: l.p95.value(),
            p99_ns: l.p99.value(),
        })
    }

    /// Takes a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            name: self.name(),
            // ordering: Relaxed — the snapshot is "consistent enough" by
            // contract: each counter is read atomically but the set is not
            // a cross-counter linearization point; monitoring tolerates a
            // snapshot taken mid-update.
            in_count: self.in_count.load(Ordering::Relaxed),
            out_count: self.out_count.load(Ordering::Relaxed),
            heartbeat_count: self.heartbeat_count.load(Ordering::Relaxed),
            batch_count: self.batch_count.load(Ordering::Relaxed),
            queue_len: self.queue_len.load(Ordering::Relaxed),
            memory: self.memory.load(Ordering::Relaxed),
            state_bytes: self.state_bytes.load(Ordering::Relaxed),
            subscribers: self.subscribers.load(Ordering::Relaxed),
            latency: self.latency(),
        }
    }
}

/// A point-in-time copy of a node's source-to-sink latency quantiles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Number of latency samples observed.
    pub count: u64,
    /// Median latency estimate, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile latency estimate, nanoseconds.
    pub p95_ns: f64,
    /// 99th-percentile latency estimate, nanoseconds.
    pub p99_ns: f64,
}

/// A point-in-time copy of a node's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsSnapshot {
    /// Node display name.
    pub name: String,
    /// Elements consumed so far.
    pub in_count: u64,
    /// Elements produced so far.
    pub out_count: u64,
    /// Heartbeats processed so far.
    pub heartbeat_count: u64,
    /// Batched input-queue drains so far (runs moved under one lock).
    pub batch_count: u64,
    /// Current total input-queue length.
    pub queue_len: usize,
    /// Current state memory in retained elements.
    pub memory: usize,
    /// Estimated state footprint in bytes (0 when the operator does not
    /// report one).
    pub state_bytes: usize,
    /// Current number of subscribed sinks.
    pub subscribers: usize,
    /// Latency quantiles, when the trace latency pipeline is attached.
    pub latency: Option<LatencySummary>,
}

impl StatsSnapshot {
    /// Observed selectivity: produced / consumed elements. `None` until the
    /// node has consumed anything.
    pub fn selectivity(&self) -> Option<f64> {
        if self.in_count == 0 {
            None
        } else {
            Some(self.out_count as f64 / self.in_count as f64)
        }
    }

    /// Mean messages moved per batched queue drain: how much per-message
    /// locking the batched data path amortized away. `None` until the node
    /// has drained anything (e.g. sources, which consume no input).
    pub fn avg_batch_size(&self) -> Option<f64> {
        if self.batch_count == 0 {
            None
        } else {
            Some(self.in_count as f64 / self.batch_count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::Welford;

    #[test]
    fn counters_accumulate() {
        let s = NodeStats::new("filter");
        s.record_in(10);
        s.record_in(5);
        s.record_out(6);
        s.record_heartbeat(2);
        s.record_batches(3);
        s.set_queue_len(3);
        s.set_memory(42);
        s.set_state_bytes(42 * 40);
        s.set_subscribers(2);
        let snap = s.snapshot();
        assert_eq!(snap.name, "filter");
        assert_eq!(snap.in_count, 15);
        assert_eq!(snap.out_count, 6);
        assert_eq!(snap.heartbeat_count, 2);
        assert_eq!(snap.batch_count, 3);
        assert_eq!(snap.queue_len, 3);
        assert_eq!(snap.memory, 42);
        assert_eq!(snap.state_bytes, 1680);
        assert_eq!(snap.subscribers, 2);
        assert_eq!(snap.latency, None);
        assert!((snap.selectivity().unwrap() - 0.4).abs() < 1e-12);
        assert!((snap.avg_batch_size().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn avg_batch_size_undefined_without_batches() {
        let s = NodeStats::new("src");
        s.record_in(10);
        assert_eq!(s.snapshot().avg_batch_size(), None);
    }

    #[test]
    fn selectivity_undefined_before_input() {
        let s = NodeStats::new("x");
        assert_eq!(s.snapshot().selectivity(), None);
    }

    #[test]
    fn custom_metrics_accessible() {
        let s = NodeStats::new("join");
        s.with_metrics(|m| m.attach("probe_cost", Box::new(Welford::new())));
        s.with_metrics(|m| m.observe("probe_cost", 12.0));
        assert_eq!(s.with_metrics(|m| m.value("probe_cost")), Some(12.0));
    }

    #[test]
    fn latency_quantiles_track_samples() {
        let s = NodeStats::new("sink");
        assert_eq!(s.latency(), None);
        s.record_latency_ns(&[]);
        assert_eq!(s.latency(), None, "empty batches must not create state");

        let samples: Vec<u64> = (1..=1000).collect();
        s.record_latency_ns(&samples);
        let lat = s.latency().expect("latency recorded");
        assert_eq!(lat.count, 1000);
        assert!((lat.p50_ns - 500.0).abs() < 50.0, "p50={}", lat.p50_ns);
        assert!((lat.p95_ns - 950.0).abs() < 50.0, "p95={}", lat.p95_ns);
        assert!((lat.p99_ns - 990.0).abs() < 50.0, "p99={}", lat.p99_ns);
        assert!(lat.p50_ns <= lat.p95_ns && lat.p95_ns <= lat.p99_ns);
        assert_eq!(s.snapshot().latency, Some(lat));
    }

    #[test]
    fn stats_shared_across_threads() {
        use pipes_sync::Arc;
        let s = Arc::new(NodeStats::new("shared"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                pipes_sync::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_in(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().in_count, 4000);
    }
}
