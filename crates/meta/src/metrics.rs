//! Runtime-composable metric sets and the metadata decorator factory.

use crate::estimators::{Ewma, MinMax, P2Quantile, Welford};
use std::collections::BTreeMap;

/// A named online estimator that consumes scalar observations.
///
/// This is the dynamically-typed face of the [`crate::estimators`] package,
/// used where the *composition* of metadata must be configurable and
/// alterable at runtime (the paper's "configurable factory that decorates
/// arbitrary nodes in a query graph with the desired metadata information").
pub trait OnlineEstimator: Send {
    /// Feeds one observation.
    fn observe(&mut self, x: f64);
    /// The current primary estimate.
    fn value(&self) -> f64;
    /// Resets to the empty state.
    fn reset(&mut self);
}

impl OnlineEstimator for Welford {
    fn observe(&mut self, x: f64) {
        Welford::observe(self, x)
    }
    fn value(&self) -> f64 {
        self.mean()
    }
    fn reset(&mut self) {
        Welford::reset(self)
    }
}

impl OnlineEstimator for Ewma {
    fn observe(&mut self, x: f64) {
        Ewma::observe(self, x)
    }
    fn value(&self) -> f64 {
        Ewma::value(self)
    }
    fn reset(&mut self) {
        Ewma::reset(self)
    }
}

impl OnlineEstimator for MinMax {
    fn observe(&mut self, x: f64) {
        MinMax::observe(self, x)
    }
    fn value(&self) -> f64 {
        self.max()
    }
    fn reset(&mut self) {
        MinMax::reset(self)
    }
}

impl OnlineEstimator for P2Quantile {
    fn observe(&mut self, x: f64) {
        P2Quantile::observe(self, x)
    }
    fn value(&self) -> f64 {
        P2Quantile::value(self)
    }
    fn reset(&mut self) {
        // P² has no cheap reset; rebuild at the same quantile.
        *self = P2Quantile::new(self.quantile());
    }
}

/// A named collection of online estimators attached to one node.
///
/// The set is composable at runtime: estimators can be attached and detached
/// while the node keeps processing.
#[derive(Default)]
pub struct MetricSet {
    metrics: BTreeMap<String, Box<dyn OnlineEstimator>>,
}

impl MetricSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches (or replaces) an estimator under `name`.
    pub fn attach(&mut self, name: impl Into<String>, est: Box<dyn OnlineEstimator>) {
        self.metrics.insert(name.into(), est);
    }

    /// Detaches the estimator under `name`, returning whether it existed.
    pub fn detach(&mut self, name: &str) -> bool {
        self.metrics.remove(name).is_some()
    }

    /// Feeds an observation to the estimator under `name`, if attached.
    pub fn observe(&mut self, name: &str, x: f64) {
        if let Some(m) = self.metrics.get_mut(name) {
            m.observe(x);
        }
    }

    /// The current value of the estimator under `name`.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).map(|m| m.value())
    }

    /// Names of all attached estimators.
    pub fn names(&self) -> Vec<&str> {
        self.metrics.keys().map(|s| s.as_str()).collect()
    }

    /// Number of attached estimators.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

impl std::fmt::Debug for MetricSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut map = f.debug_map();
        for (k, v) in &self.metrics {
            map.entry(k, &v.value());
        }
        map.finish()
    }
}

/// Which estimator a [`MetadataFactory`] attaches for a metric name.
#[derive(Clone, Debug, PartialEq)]
pub enum EstimatorSpec {
    /// Running mean and variance (Welford).
    MeanVar,
    /// Exponentially weighted moving average with the given alpha.
    Ewma(f64),
    /// Running min/max.
    MinMax,
    /// A P² quantile estimator for the given quantile.
    Quantile(f64),
}

impl EstimatorSpec {
    /// Instantiates the estimator.
    pub fn build(&self) -> Box<dyn OnlineEstimator> {
        match self {
            EstimatorSpec::MeanVar => Box::new(Welford::new()),
            EstimatorSpec::Ewma(a) => Box::new(Ewma::new(*a)),
            EstimatorSpec::MinMax => Box::new(MinMax::new()),
            EstimatorSpec::Quantile(p) => Box::new(P2Quantile::new(*p)),
        }
    }
}

/// The configurable decorator factory: a reusable recipe describing which
/// metadata to attach to a node.
///
/// An administrator builds a factory once ("input rate as EWMA, selectivity
/// as mean/variance, latency p95") and applies it to any number of nodes;
/// applying it again after changing the recipe alters the composition at
/// runtime.
#[derive(Clone, Debug, Default)]
pub struct MetadataFactory {
    specs: Vec<(String, EstimatorSpec)>,
}

impl MetadataFactory {
    /// Creates an empty factory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a metric to the recipe (builder style).
    pub fn with(mut self, name: impl Into<String>, spec: EstimatorSpec) -> Self {
        self.specs.push((name.into(), spec));
        self
    }

    /// Removes a metric from the recipe.
    pub fn without(mut self, name: &str) -> Self {
        self.specs.retain(|(n, _)| n != name);
        self
    }

    /// Decorates `set` with the recipe: attaches every configured estimator
    /// and detaches estimators no longer in the recipe.
    pub fn apply(&self, set: &mut MetricSet) {
        let keep: Vec<String> = self.specs.iter().map(|(n, _)| n.clone()).collect();
        let existing: Vec<String> = set.names().iter().map(|s| s.to_string()).collect();
        for name in existing {
            if !keep.contains(&name) {
                set.detach(&name);
            }
        }
        for (name, spec) in &self.specs {
            if set.value(name).is_none() {
                set.attach(name.clone(), spec.build());
            }
        }
    }

    /// The configured metric names.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|(n, _)| n.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_set_attach_observe_detach() {
        let mut set = MetricSet::new();
        assert!(set.is_empty());
        set.attach("sel", Box::new(Welford::new()));
        set.observe("sel", 0.2);
        set.observe("sel", 0.4);
        assert!((set.value("sel").unwrap() - 0.3).abs() < 1e-12);
        // Observations to unattached metrics are ignored, not errors.
        set.observe("nope", 1.0);
        assert_eq!(set.value("nope"), None);
        assert!(set.detach("sel"));
        assert!(!set.detach("sel"));
        assert!(set.is_empty());
    }

    #[test]
    fn factory_applies_and_reconfigures() {
        let factory = MetadataFactory::new()
            .with("rate", EstimatorSpec::Ewma(0.3))
            .with("sel", EstimatorSpec::MeanVar)
            .with("lat_p95", EstimatorSpec::Quantile(0.95));
        let mut set = MetricSet::new();
        factory.apply(&mut set);
        assert_eq!(set.names(), vec!["lat_p95", "rate", "sel"]);

        set.observe("sel", 0.5);
        // Reconfigure at runtime: drop selectivity, keep the rest.
        let factory2 = factory.without("sel");
        factory2.apply(&mut set);
        assert_eq!(set.names(), vec!["lat_p95", "rate"]);

        // Re-applying is idempotent and keeps accumulated state.
        set.observe("rate", 10.0);
        factory2.apply(&mut set);
        assert_eq!(set.value("rate"), Some(10.0));
    }

    #[test]
    fn p2_reset_keeps_configured_quantile() {
        // Regression: reset used to rebuild at the hardcoded median,
        // silently turning a p95 estimator into a p50 one.
        let mut est: Box<dyn OnlineEstimator> = EstimatorSpec::Quantile(0.95).build();
        for i in 0..10_000 {
            est.observe(i as f64);
        }
        est.reset();
        for i in 0..10_000 {
            est.observe(i as f64);
        }
        // exact p95 of 0..10000 is 9499; a median estimator would sit
        // near 5000.
        assert!(
            (est.value() - 9499.0).abs() < 500.0,
            "post-reset estimate drifted to {}",
            est.value()
        );
    }

    #[test]
    fn estimator_specs_build() {
        for spec in [
            EstimatorSpec::MeanVar,
            EstimatorSpec::Ewma(0.5),
            EstimatorSpec::MinMax,
            EstimatorSpec::Quantile(0.9),
        ] {
            let mut est = spec.build();
            est.observe(1.0);
            est.observe(2.0);
            assert!(est.value().is_finite());
            est.reset();
        }
    }
}
