//! Iteratively computed inferential estimators (online aggregation package).
//!
//! Every estimator here is *incremental*: it consumes one observation at a
//! time in O(1) (amortized) and can report its current estimate at any point.
//! This mirrors the online-aggregation style of Haas/Hellerstein that the
//! PIPES metadata framework builds on, and makes the package usable from both
//! demand-driven (cursor) and data-driven (stream) processing.

use rand::Rng;

/// Welford's numerically stable running mean and variance.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (Bessel-corrected; 0 with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Exponentially weighted moving average.
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` ∈ (0, 1]; larger alpha
    /// weights recent observations more.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Adds one observation.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current smoothed value (0 when empty).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Running minimum and maximum.
#[derive(Clone, Debug, Default)]
pub struct MinMax {
    min: Option<f64>,
    max: Option<f64>,
}

impl MinMax {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn observe(&mut self, x: f64) {
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        self.min.unwrap_or(f64::NAN)
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        self.max.unwrap_or(f64::NAN)
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// The P² algorithm (Jain & Chlamtac): a single-quantile estimator in O(1)
/// space, without storing observations.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments.
    dn: [f64; 5],
    count: u64,
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile, `p` ∈ (0, 1).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Adds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).unwrap());
                for i in 0..5 {
                    self.q[i] = self.init[i];
                }
            }
            return;
        }

        // Find the cell containing x and adjust extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for item in self.n.iter_mut().skip(k + 1) {
            *item += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers with the piecewise-parabolic formula.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate. With fewer than five observations this is
    /// the exact quantile of what has been seen (NaN when empty).
    pub fn value(&self) -> f64 {
        if self.init.len() < 5 {
            if self.init.is_empty() {
                return f64::NAN;
            }
            let mut sorted = self.init.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((sorted.len() - 1) as f64 * self.p).round() as usize;
            return sorted[idx];
        }
        self.q[2]
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The quantile this estimator was configured for (the `p` passed to
    /// [`P2Quantile::new`]).
    pub fn quantile(&self) -> f64 {
        self.p
    }
}

/// Uniform reservoir sample of a stream (Vitter's algorithm R).
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    sample: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Creates a reservoir holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            sample: Vec::with_capacity(capacity),
        }
    }

    /// Offers one item to the reservoir.
    pub fn observe<R: Rng>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.sample[j as usize] = item;
            }
        }
    }

    /// The current sample.
    pub fn sample(&self) -> &[T] {
        &self.sample
    }

    /// Total items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// A units×size state-footprint estimator for stateful operators.
///
/// Operators report live state as a number of homogeneous *units* (partial
/// aggregates, sweep-area entries, tree nodes); the estimator converts
/// that count into bytes using a per-unit payload estimate plus a per-unit
/// container overhead (map node, key, bookkeeping). This keeps the
/// operator-side accounting O(1) per update — the count is maintained
/// anyway for load shedding — while giving the memory manager a
/// byte-denominated view of aggregates as memory users.
#[derive(Clone, Copy, Debug)]
pub struct StateSize {
    unit_bytes: usize,
    overhead_bytes: usize,
    units: usize,
}

impl StateSize {
    /// Creates an estimator for units of `unit_bytes` payload each, held
    /// in a container costing `overhead_bytes` per unit.
    pub fn new(unit_bytes: usize, overhead_bytes: usize) -> Self {
        StateSize {
            unit_bytes,
            overhead_bytes,
            units: 0,
        }
    }

    /// Returns the estimator with the live unit count set to `units`.
    pub fn with_units(mut self, units: usize) -> Self {
        self.units = units;
        self
    }

    /// Sets the live unit count.
    pub fn set_units(&mut self, units: usize) {
        self.units = units;
    }

    /// Live unit count.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Estimated byte footprint: `units × (unit_bytes + overhead_bytes)`,
    /// saturating on overflow.
    pub fn bytes(&self) -> usize {
        self.units
            .saturating_mul(self.unit_bytes.saturating_add(self.overhead_bytes))
    }
}

/// A windowed event-rate estimator: events per second over a sliding window
/// of wall-clock time.
#[derive(Clone, Debug)]
pub struct RateEstimator {
    window_secs: f64,
    events: std::collections::VecDeque<(f64, u64)>,
    total_in_window: u64,
}

impl RateEstimator {
    /// Creates an estimator over a sliding window of `window_secs` seconds.
    pub fn new(window_secs: f64) -> Self {
        RateEstimator {
            window_secs: window_secs.max(1e-6),
            events: std::collections::VecDeque::new(),
            total_in_window: 0,
        }
    }

    /// Records `n` events at time `now` (seconds, monotonically increasing).
    pub fn record(&mut self, now: f64, n: u64) {
        self.events.push_back((now, n));
        self.total_in_window += n;
        self.evict(now);
    }

    fn evict(&mut self, now: f64) {
        while let Some(&(t, n)) = self.events.front() {
            if now - t > self.window_secs {
                self.events.pop_front();
                self.total_in_window -= n;
            } else {
                break;
            }
        }
    }

    /// Events per second over the window ending at `now`.
    ///
    /// Reading is `&self`: the decay is computed at read time by walking the
    /// expired prefix of the stored buckets (writes still evict eagerly, so
    /// the prefix is almost always empty). Snapshot paths can therefore read
    /// rates through a shared reference without taking a write borrow.
    pub fn rate(&self, now: f64) -> f64 {
        let mut total = self.total_in_window;
        for &(t, n) in &self.events {
            if now - t > self.window_secs {
                total -= n;
            } else {
                break;
            }
        }
        total as f64 / self.window_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.observe(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        let naive_sample_var = xs.iter().map(|x| (x - 5.0_f64).powi(2)).sum::<f64>() / 7.0;
        assert!((w.sample_variance() - naive_sample_var).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.observe(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.observe(x);
        }
        for &x in &xs[37..] {
            b.observe(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        // Merging into an empty accumulator copies.
        let mut empty = Welford::new();
        empty.merge(&whole);
        assert!((empty.mean() - whole.mean()).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), 0.0);
        e.observe(10.0);
        assert_eq!(e.value(), 10.0); // first observation seeds
        for _ in 0..50 {
            e.observe(20.0);
        }
        assert!((e.value() - 20.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn minmax_tracks_extremes() {
        let mut m = MinMax::new();
        assert!(m.min().is_nan());
        for x in [3.0, -1.0, 7.0, 2.0] {
            m.observe(x);
        }
        assert_eq!(m.min(), -1.0);
        assert_eq!(m.max(), 7.0);
    }

    #[test]
    fn p2_quantile_close_to_exact_on_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut p2 = P2Quantile::new(0.5);
        let mut all = Vec::new();
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..100.0);
            p2.observe(x);
            all.push(x);
        }
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = all[all.len() / 2];
        assert!(
            (p2.value() - exact).abs() < 2.0,
            "p2={} exact={}",
            p2.value(),
            exact
        );
    }

    #[test]
    fn p2_small_counts_are_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert!(p2.value().is_nan());
        for x in [5.0, 1.0, 3.0] {
            p2.observe(x);
        }
        assert_eq!(p2.value(), 3.0);
    }

    #[test]
    fn p2_tail_quantile() {
        let mut p2 = P2Quantile::new(0.95);
        for i in 0..10_000 {
            p2.observe(i as f64);
        }
        // exact p95 = 9499
        assert!((p2.value() - 9499.0).abs() < 300.0, "p95={}", p2.value());
    }

    #[test]
    fn reservoir_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut r = Reservoir::new(100);
        for i in 0..10_000u64 {
            r.observe(i, &mut rng);
        }
        assert_eq!(r.sample().len(), 100);
        assert_eq!(r.seen(), 10_000);
        // Mean of a uniform sample of 0..10000 should be near 5000.
        let mean = r.sample().iter().sum::<u64>() as f64 / 100.0;
        assert!((mean - 5000.0).abs() < 1200.0, "mean={mean}");
    }

    #[test]
    fn state_size_scales_with_units() {
        let s = StateSize::new(8, 32);
        assert_eq!(s.bytes(), 0);
        assert_eq!(s.with_units(10).bytes(), 400);
        let mut m = StateSize::new(16, 0);
        m.set_units(3);
        assert_eq!(m.units(), 3);
        assert_eq!(m.bytes(), 48);
        // Overflow saturates instead of wrapping.
        let big = StateSize::new(usize::MAX, 0).with_units(2);
        assert_eq!(big.bytes(), usize::MAX);
    }

    #[test]
    fn rate_estimator_windows() {
        let mut r = RateEstimator::new(2.0);
        r.record(0.0, 10);
        r.record(1.0, 10);
        assert!((r.rate(1.0) - 10.0).abs() < 1e-9); // 20 events / 2s
                                                    // After the first batch leaves the window:
        assert!((r.rate(2.5) - 5.0).abs() < 1e-9); // 10 events / 2s
        assert!((r.rate(10.0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn rate_reads_through_shared_reference() {
        // Regression for the `rate(&mut self)` API: snapshot paths read
        // rates through `&self`, with the decay computed at read time, and
        // reading must not mutate the estimator.
        let mut r = RateEstimator::new(2.0);
        r.record(0.0, 10);
        r.record(1.0, 10);
        let shared: &RateEstimator = &r;
        // Two buckets live, then one expired, then both — all via `&self`.
        assert!((shared.rate(1.0) - 10.0).abs() < 1e-9);
        assert!((shared.rate(2.5) - 5.0).abs() < 1e-9);
        assert!((shared.rate(10.0) - 0.0).abs() < 1e-9);
        // A late read at an earlier `now` still sees both buckets: the
        // read-time decay did not evict anything.
        assert!((shared.rate(1.0) - 10.0).abs() < 1e-9);
        // Writes keep evicting eagerly, so state stays bounded.
        r.record(10.0, 4);
        assert!((r.rate(10.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_alpha_boundaries() {
        // alpha = 1 is valid and tracks the last observation exactly.
        let mut e = Ewma::new(1.0);
        e.observe(3.0);
        e.observe(9.0);
        assert_eq!(e.value(), 9.0);
        // A tiny positive alpha is valid and barely moves.
        let mut slow = Ewma::new(1e-9);
        slow.observe(10.0);
        slow.observe(1_000.0);
        assert!((slow.value() - 10.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_alpha_above_one() {
        let _ = Ewma::new(1.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_negative_alpha() {
        let _ = Ewma::new(-0.5);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_nan_alpha() {
        let _ = Ewma::new(f64::NAN);
    }

    #[test]
    fn p2_small_n_is_exact_for_every_count_below_five() {
        // Below five observations P² has not initialized its markers; the
        // estimate must be the exact quantile of what has been seen.
        let p2 = P2Quantile::new(0.5);
        assert!(p2.value().is_nan(), "empty estimator reports NaN");
        assert_eq!(p2.count(), 0);

        let mut one = P2Quantile::new(0.5);
        one.observe(42.0);
        assert_eq!(one.value(), 42.0);
        assert_eq!(one.count(), 1);

        let mut two = P2Quantile::new(0.5);
        two.observe(7.0);
        two.observe(1.0);
        // Exact median of {1, 7} by nearest-rank rounding: index
        // round((2-1)*0.5) = 1 of the sorted sample.
        assert_eq!(two.value(), 7.0);

        let mut four = P2Quantile::new(0.25);
        for x in [40.0, 10.0, 30.0, 20.0] {
            four.observe(x);
        }
        // Exact p25 of {10,20,30,40}: index round(3*0.25) = 1 → 20.
        assert_eq!(four.value(), 20.0);
        assert_eq!(four.count(), 4);

        // Tail quantile of a small sample clamps into the sample.
        let mut tail = P2Quantile::new(0.95);
        tail.observe(5.0);
        tail.observe(-5.0);
        assert_eq!(tail.value(), 5.0);
    }

    #[test]
    fn p2_transitions_from_exact_to_markers_at_five() {
        let mut p2 = P2Quantile::new(0.5);
        for x in [1.0, 2.0, 3.0, 4.0] {
            p2.observe(x);
        }
        assert_eq!(p2.value(), 3.0, "still exact at n=4");
        p2.observe(5.0);
        // Marker initialization sorts the first five; the middle marker is
        // the exact median of them.
        assert_eq!(p2.value(), 3.0);
        assert_eq!(p2.count(), 5);
    }
}
