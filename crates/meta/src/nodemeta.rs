//! The per-node live metadata block of the metadata plane.
//!
//! Every graph node owns one [`NodeMeta`]: a lock-light bundle of online
//! estimators fed once per *drained run* (a scheduling quantum in which the
//! node consumed or produced anything) from the node-step path — never per
//! message. The block maintains:
//!
//! * input / output [`RateEstimator`]s (events per second over a sliding
//!   wall-clock window),
//! * run-level selectivity (produced / consumed messages of the quantum),
//!   EWMA-smoothed with a Welford variance alongside,
//! * inter-arrival variance of productive quanta (how bursty the node's
//!   work is),
//! * the operator's live state footprint in bytes (plumbed from
//!   [`crate::estimators::StateSize`] accounting via the node).
//!
//! ## Concurrency
//!
//! The writer side is single-writer by construction: the graph updates a
//! node's block while holding that node's runnable lock, so the estimator
//! bundle sits behind an uncontended `Mutex`. Publication to readers
//! mirrors the trace ring's seqlock discipline (`crates/trace/src/ring.rs`):
//! the writer bumps a sequence word odd, stores the derived values into
//! plain atomic cells, and bumps the sequence even; [`NodeMeta::snapshot`]
//! reads the cells bracketed by two `Acquire` loads of the sequence and
//! retries on a change. Readers never block writers and never take the
//! estimator lock. Every access is atomic, so a torn read is stale data,
//! never UB.
//!
//! ## Compile-out
//!
//! Like the flight recorder's `trace-off`, the `meta-off` feature (and
//! `cfg(pipes_model_check)`, where the extra atomics would only blow up
//! the model checker's schedule space) compiles the whole block down to a
//! unit struct whose methods are inline no-ops; [`META_COMPILED_OUT`]
//! reports which world was built. The always-on [`crate::NodeStats`]
//! counters are unaffected.

/// Whether the metadata plane was compiled out (the `meta-off` feature, or
/// a `pipes_model_check` build). When true, [`NodeMeta::record_quantum`] is
/// an inline no-op and [`NodeMeta::snapshot`] always returns `None`.
pub const META_COMPILED_OUT: bool = cfg!(any(feature = "meta-off", pipes_model_check));

/// A consistent point-in-time copy of one node's live estimators.
///
/// Produced by [`NodeMeta::snapshot`]; `None` means the node has never had
/// a productive quantum (or the plane is disabled / compiled out).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeMetaSnapshot {
    /// Input rate over the sliding window, messages per second.
    pub in_rate: f64,
    /// Output rate over the sliding window, messages per second.
    pub out_rate: f64,
    /// EWMA-smoothed run-level selectivity (produced / consumed messages
    /// per quantum; 1.0 until the first consuming quantum).
    pub selectivity: f64,
    /// Welford population variance of the run-level selectivity samples.
    pub selectivity_var: f64,
    /// Number of run-level selectivity samples folded in so far.
    pub selectivity_samples: u64,
    /// Variance of the inter-arrival gaps between productive quanta, s².
    pub interarrival_var: f64,
    /// Operator state footprint in bytes at the last update.
    pub state_bytes: usize,
    /// Seconds elapsed since the last update (staleness of this snapshot).
    pub age_secs: f64,
}

impl NodeMetaSnapshot {
    /// Whether this snapshot is fresh enough to trust at face value.
    pub fn is_fresh(&self, staleness_bound_secs: f64) -> bool {
        self.age_secs <= staleness_bound_secs
    }
}

#[cfg(not(any(feature = "meta-off", pipes_model_check)))]
pub use live::{meta_enabled, now_secs, set_meta_enabled, NodeMeta};

#[cfg(not(any(feature = "meta-off", pipes_model_check)))]
mod live {
    use super::NodeMetaSnapshot;
    use crate::estimators::{Ewma, RateEstimator, Welford};
    use pipes_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use pipes_sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Sliding-window length of the per-node rate estimators, seconds.
    const RATE_WINDOW_SECS: f64 = 1.0;
    /// EWMA smoothing factor for run-level selectivity: heavy enough to
    /// follow workload shifts within tens of quanta, light enough to damp
    /// single-quantum noise.
    const SELECTIVITY_ALPHA: f64 = 0.2;
    /// Snapshot retry budget: a writer's publication window is a handful
    /// of stores, so more than a couple of retries means the writer was
    /// preempted mid-publication — report "no snapshot" rather than spin.
    const SNAPSHOT_RETRIES: usize = 64;

    static META_ENABLED: AtomicBool = AtomicBool::new(true);

    /// Enables or disables metadata collection at runtime (one binary can
    /// measure plane-on vs plane-off; see bench E19). Estimator state is
    /// kept, not reset.
    pub fn set_meta_enabled(on: bool) {
        // ordering: Relaxed — a pure on/off flag polled by collection
        // sites; no data is published under it.
        META_ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether metadata collection is currently enabled.
    #[inline]
    pub fn meta_enabled() -> bool {
        // ordering: Relaxed — see set_meta_enabled().
        META_ENABLED.load(Ordering::Relaxed)
    }

    /// Seconds since the process's metadata epoch (first use). All
    /// [`NodeMeta`] timestamps share this clock, so ages and inter-node
    /// comparisons are meaningful across the whole graph.
    pub fn now_secs() -> f64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
    }

    /// The writer-side estimator bundle; only touched under `est`'s lock,
    /// which the node-step path holds uncontended (single writer).
    #[derive(Debug)]
    struct Estimators {
        in_rate: RateEstimator,
        out_rate: RateEstimator,
        sel_ewma: Ewma,
        sel_var: Welford,
        interarrival: Welford,
        /// Clock of the previous update; negative before the first.
        last_update: f64,
    }

    /// One node's live metadata block. See the module docs for the
    /// concurrency protocol.
    #[derive(Debug)]
    pub struct NodeMeta {
        est: Mutex<Estimators>,
        /// Seqlock word: 0 = never published, odd = publication in
        /// progress, even = `published` cells consistent.
        seq: AtomicU64,
        in_rate_bits: AtomicU64,
        out_rate_bits: AtomicU64,
        sel_bits: AtomicU64,
        sel_var_bits: AtomicU64,
        sel_samples: AtomicU64,
        ia_var_bits: AtomicU64,
        state_bytes: AtomicUsize,
        last_update_bits: AtomicU64,
    }

    impl Default for NodeMeta {
        fn default() -> Self {
            Self::new()
        }
    }

    impl NodeMeta {
        /// Creates an empty block (no quantum recorded yet).
        pub fn new() -> Self {
            NodeMeta {
                est: Mutex::new(Estimators {
                    in_rate: RateEstimator::new(RATE_WINDOW_SECS),
                    out_rate: RateEstimator::new(RATE_WINDOW_SECS),
                    sel_ewma: Ewma::new(SELECTIVITY_ALPHA),
                    sel_var: Welford::new(),
                    interarrival: Welford::new(),
                    last_update: -1.0,
                }),
                seq: AtomicU64::new(0),
                in_rate_bits: AtomicU64::new(0),
                out_rate_bits: AtomicU64::new(0),
                sel_bits: AtomicU64::new(0),
                sel_var_bits: AtomicU64::new(0),
                sel_samples: AtomicU64::new(0),
                ia_var_bits: AtomicU64::new(0),
                state_bytes: AtomicUsize::new(0),
                last_update_bits: AtomicU64::new(0),
            }
        }

        /// Folds one drained run into the estimators and publishes the
        /// derived values. **Must only be called by the node's stepping
        /// thread** (the graph calls it under the runnable lock) — the
        /// seqlock protocol assumes a single writer.
        pub fn record_quantum(&self, consumed: u64, produced: u64, state_bytes: usize) {
            if !meta_enabled() {
                return;
            }
            let now = now_secs();
            let mut est = self.est.lock();
            est.in_rate.record(now, consumed);
            est.out_rate.record(now, produced);
            if consumed > 0 {
                let s = produced as f64 / consumed as f64;
                est.sel_ewma.observe(s);
                est.sel_var.observe(s);
            }
            if est.last_update >= 0.0 {
                let gap = now - est.last_update;
                est.interarrival.observe(gap);
            }
            est.last_update = now;

            // Publish under the seqlock (see crates/trace/src/ring.rs for
            // the slot protocol this mirrors).
            // ordering: Relaxed — seq is only stored by this same thread
            // (single writer); the load needs no cross-thread ordering.
            let s0 = self.seq.load(Ordering::Relaxed);
            self.seq.store(s0 + 1, Ordering::Release); // odd: in progress
            let sel = if est.sel_var.count() == 0 {
                1.0
            } else {
                est.sel_ewma.value()
            };
            let in_rate = est.in_rate.rate(now).to_bits();
            let out_rate = est.out_rate.rate(now).to_bits();
            let sel_var = est.sel_var.variance().to_bits();
            let samples = est.sel_var.count();
            let ia_var = est.interarrival.variance().to_bits();
            let last = now.to_bits();
            // ordering: Relaxed — payload cells are guarded by the seq
            // word's Release/Acquire pair; readers that observe a
            // consistent even seq also observe these stores, and torn
            // reads of atomics are stale data, never UB. Covers every
            // payload store in this cluster.
            self.in_rate_bits.store(in_rate, Ordering::Relaxed);
            self.out_rate_bits.store(out_rate, Ordering::Relaxed);
            self.sel_bits.store(sel.to_bits(), Ordering::Relaxed);
            self.sel_var_bits.store(sel_var, Ordering::Relaxed);
            self.sel_samples.store(samples, Ordering::Relaxed);
            self.ia_var_bits.store(ia_var, Ordering::Relaxed);
            self.state_bytes.store(state_bytes, Ordering::Relaxed);
            self.last_update_bits.store(last, Ordering::Relaxed);
            self.seq.store(s0 + 2, Ordering::Release); // even: consistent
        }

        /// Takes a consistent snapshot of the published estimates without
        /// blocking the writer. Returns `None` when the node has never had
        /// a productive quantum, or when a writer kept racing past the
        /// retry budget (treat as "no usable estimate" and fall back).
        pub fn snapshot(&self) -> Option<NodeMetaSnapshot> {
            for _ in 0..SNAPSHOT_RETRIES {
                let s1 = self.seq.load(Ordering::Acquire);
                if s1 == 0 {
                    return None; // never published
                }
                if s1 % 2 == 1 {
                    pipes_sync::hint::spin_loop();
                    continue; // publication in progress
                }
                // ordering: Relaxed — bracketed by the two Acquire seq
                // loads; a slot the writer touched mid-read fails the
                // re-check below. Applies to every payload load here.
                let in_rate = f64::from_bits(self.in_rate_bits.load(Ordering::Relaxed));
                let out_rate = f64::from_bits(self.out_rate_bits.load(Ordering::Relaxed));
                let selectivity = f64::from_bits(self.sel_bits.load(Ordering::Relaxed));
                let selectivity_var = f64::from_bits(self.sel_var_bits.load(Ordering::Relaxed));
                let selectivity_samples = self.sel_samples.load(Ordering::Relaxed);
                let interarrival_var = f64::from_bits(self.ia_var_bits.load(Ordering::Relaxed));
                let state_bytes = self.state_bytes.load(Ordering::Relaxed);
                let last_update = f64::from_bits(self.last_update_bits.load(Ordering::Relaxed));
                let s2 = self.seq.load(Ordering::Acquire);
                if s1 != s2 {
                    continue; // torn: writer republished mid-read
                }
                return Some(NodeMetaSnapshot {
                    in_rate,
                    out_rate,
                    selectivity,
                    selectivity_var,
                    selectivity_samples,
                    interarrival_var,
                    state_bytes,
                    age_secs: (now_secs() - last_update).max(0.0),
                });
            }
            None
        }
    }
}

#[cfg(any(feature = "meta-off", pipes_model_check))]
pub use noop::{meta_enabled, now_secs, set_meta_enabled, NodeMeta};

#[cfg(any(feature = "meta-off", pipes_model_check))]
mod noop {
    use super::NodeMetaSnapshot;

    /// Compiled-out stand-in: every method is an inline no-op.
    #[derive(Debug, Default)]
    pub struct NodeMeta;

    impl NodeMeta {
        /// Creates the (zero-sized) block.
        #[inline(always)]
        pub fn new() -> Self {
            NodeMeta
        }

        /// No-op in the compiled-out configuration.
        #[inline(always)]
        pub fn record_quantum(&self, _consumed: u64, _produced: u64, _state_bytes: usize) {}

        /// Always `None` in the compiled-out configuration.
        #[inline(always)]
        pub fn snapshot(&self) -> Option<NodeMetaSnapshot> {
            None
        }
    }

    /// No-op in the compiled-out configuration.
    #[inline(always)]
    pub fn set_meta_enabled(_on: bool) {}

    /// Always `false` in the compiled-out configuration.
    #[inline(always)]
    pub fn meta_enabled() -> bool {
        false
    }

    /// Wall-clock seconds since first use (kept so callers compile
    /// identically in both configurations).
    pub fn now_secs() -> f64 {
        use pipes_sync::OnceLock;
        use std::time::Instant;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
    }
}

#[cfg(all(test, not(any(feature = "meta-off", pipes_model_check))))]
mod tests {
    use super::*;
    use pipes_sync::Arc;

    #[test]
    fn unwarmed_block_has_no_snapshot() {
        let m = NodeMeta::new();
        assert_eq!(m.snapshot(), None);
    }

    #[test]
    fn quanta_feed_rates_and_selectivity() {
        let m = NodeMeta::new();
        // Three drained runs of a drop-half operator.
        for _ in 0..3 {
            m.record_quantum(100, 50, 4096);
        }
        let s = m.snapshot().expect("warm block snapshots");
        assert!((s.selectivity - 0.5).abs() < 1e-9);
        assert_eq!(s.selectivity_samples, 3);
        assert!(s.selectivity_var.abs() < 1e-12, "constant samples");
        assert_eq!(s.state_bytes, 4096);
        // 300 in / 150 out within the 1s window.
        assert!(s.in_rate >= 300.0 - 1e-6, "in_rate={}", s.in_rate);
        assert!(s.out_rate >= 150.0 - 1e-6, "out_rate={}", s.out_rate);
        assert!((s.in_rate / s.out_rate - 2.0).abs() < 1e-9);
        assert!(s.age_secs >= 0.0 && s.age_secs < 5.0);
        assert!(s.is_fresh(5.0));
        assert!(!s.is_fresh(0.0) || s.age_secs == 0.0);
    }

    #[test]
    fn source_quanta_have_unit_selectivity_placeholder() {
        let m = NodeMeta::new();
        m.record_quantum(0, 64, 0); // a source: produces, consumes nothing
        let s = m.snapshot().unwrap();
        assert_eq!(s.selectivity_samples, 0);
        assert_eq!(s.selectivity, 1.0, "no consuming quantum yet");
        assert!(s.out_rate > 0.0);
        assert_eq!(s.in_rate, 0.0);
    }

    #[test]
    fn disabled_plane_records_nothing() {
        let m = NodeMeta::new();
        set_meta_enabled(false);
        m.record_quantum(10, 10, 0);
        set_meta_enabled(true);
        assert_eq!(m.snapshot(), None, "disabled quanta must not publish");
        m.record_quantum(10, 10, 0);
        assert!(m.snapshot().is_some());
    }

    #[test]
    fn selectivity_variance_tracks_run_spread() {
        let m = NodeMeta::new();
        m.record_quantum(100, 0, 0);
        m.record_quantum(100, 100, 0);
        let s = m.snapshot().unwrap();
        // Samples {0, 1}: population variance 0.25.
        assert!((s.selectivity_var - 0.25).abs() < 1e-12);
        assert_eq!(s.selectivity_samples, 2);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_bits() {
        // A writer republishes continuously while readers snapshot; every
        // snapshot must be internally consistent (rates derived from the
        // same publication, so in/out stay in the written 2:1 ratio).
        let m = Arc::new(NodeMeta::new());
        let stop = Arc::new(pipes_sync::atomic::AtomicBool::new(false));
        let writer = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            pipes_sync::thread::spawn(move || {
                // ordering: Relaxed — test-local stop flag, no payload.
                while !stop.load(pipes_sync::atomic::Ordering::Relaxed) {
                    m.record_quantum(64, 32, 128);
                }
            })
        };
        let mut seen = 0;
        for _ in 0..10_000 {
            if let Some(s) = m.snapshot() {
                seen += 1;
                assert!((s.selectivity - 0.5).abs() < 1e-9, "torn selectivity");
                assert_eq!(s.state_bytes, 128);
                assert!(
                    (s.in_rate - 2.0 * s.out_rate).abs() < 1e-6,
                    "torn rate pair: in={} out={}",
                    s.in_rate,
                    s.out_rate
                );
            }
        }
        // ordering: Relaxed — test-local stop flag, no payload.
        stop.store(true, pipes_sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
        assert!(seen > 0, "reader never caught a consistent snapshot");
    }
}

#[cfg(all(test, any(feature = "meta-off", pipes_model_check)))]
mod off_tests {
    use super::*;

    #[test]
    fn compiled_out_block_is_inert() {
        assert!(META_COMPILED_OUT);
        let m = NodeMeta::new();
        m.record_quantum(100, 50, 4096);
        assert_eq!(m.snapshot(), None);
        set_meta_enabled(true);
        assert!(!meta_enabled(), "compiled out: plane can never enable");
    }
}
