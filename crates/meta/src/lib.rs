//! # pipes-meta
//!
//! The *secondary metadata* framework of PIPES.
//!
//! During runtime, each node of a query graph collects secondary metadata —
//! "a kind of synopses, represented by iteratively computed inferential
//! estimators similar to online aggregation" (PIPES, SIGMOD 2004): stream
//! rates, selectivity, memory size, and averages/variances thereof. Runtime
//! components (scheduler, memory manager, optimizer) are parameterized by
//! strategies that consume this metadata.
//!
//! This crate provides:
//!
//! * [`estimators`] — a package of iteratively computed online estimators
//!   (Welford mean/variance, EWMA, min/max, P² quantiles, reservoir samples).
//!   These are *processing-style agnostic*: the same estimators back the
//!   demand-driven cursor aggregates of `pipes-cursor` and the data-driven
//!   stream aggregates of `pipes-ops` (the paper's code-reusability claim).
//! * [`NodeStats`] — cheap, always-on per-node counters (atomics).
//! * [`MetricSet`] / [`MetadataFactory`] — the configurable decorator that
//!   attaches a chosen composition of estimators to a node; the composition
//!   can be altered at runtime.
//! * [`Monitor`] — the performance-monitoring tool: samples registered nodes
//!   into time series and renders them (ASCII sparklines, CSV).
//! * [`NodeMeta`] — the live metadata plane's per-node block: graph-fed
//!   online rate/selectivity/variance estimators published through a
//!   seqlock so readers never block the stepping thread; compiled out
//!   under the `meta-off` feature (see [`META_COMPILED_OUT`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimators;
mod metrics;
mod monitor;
mod nodemeta;
mod stats;

pub use metrics::{EstimatorSpec, MetadataFactory, MetricSet, OnlineEstimator};
pub use monitor::{Monitor, SeriesView, TimeSeries};
pub use nodemeta::{
    meta_enabled, now_secs, set_meta_enabled, NodeMeta, NodeMetaSnapshot, META_COMPILED_OUT,
};
pub use stats::{LatencySummary, NodeStats, StatsSnapshot};
