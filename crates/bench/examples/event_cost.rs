//! Microbenchmark of the recorder hot path: cost of one `instant()` with
//! recording enabled, the clock read alone, and the disabled fast path.
//!
//! The enabled cost is dominated by the `clock_gettime` read (~30 ns on
//! typical hosts); the ring push, thread-local access, and intern-cache
//! scan add single-digit nanoseconds on top. `trace::instant_coarse`
//! exists precisely because of this split.

use std::time::Instant;

fn main() {
    let n: u64 = 10_000_000;
    pipes::trace::set_enabled(true);
    let t = Instant::now();
    for i in 0..n {
        pipes::trace::instant("bench.evt", [i, 0, 0]);
    }
    let per = t.elapsed().as_nanos() as f64 / n as f64;
    println!("instant() enabled:  {per:.1} ns/event");

    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..n {
        acc = acc.wrapping_add(pipes::trace::now_ns());
    }
    let per = t.elapsed().as_nanos() as f64 / n as f64;
    println!("now_ns() alone:     {per:.1} ns/call");
    std::hint::black_box(acc);

    pipes::trace::set_enabled(false);
    let t = Instant::now();
    for i in 0..n {
        pipes::trace::instant("bench.evt", [i, 0, 0]);
    }
    let per = t.elapsed().as_nanos() as f64 / n as f64;
    println!("instant() disabled: {per:.2} ns/event");
    pipes::trace::set_enabled(true);
}
