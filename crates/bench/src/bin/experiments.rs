//! Experiment runner: regenerates every table/figure of the reproduction.
//!
//! ```text
//! experiments all            # full pass (minutes)
//! experiments all --quick    # small workloads (seconds)
//! experiments e5 e6          # selected experiments (e1..e18)
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if ids.is_empty() {
        eprintln!("usage: experiments <e1..e18|all> [--quick]");
        eprintln!("running 'all --quick' by default\n");
        pipes_bench::experiments::run("all", true);
        return;
    }
    for id in ids {
        pipes_bench::experiments::run(id, quick);
    }
}
