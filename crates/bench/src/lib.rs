//! # pipes-bench
//!
//! The experiment harness: one reproducible experiment per demonstrated
//! claim of the PIPES paper (see `DESIGN.md`, experiment index E1–E16).
//!
//! Each experiment prints the table/series it regenerates. Run everything:
//!
//! ```text
//! cargo run --release -p pipes-bench --bin experiments -- all
//! cargo run --release -p pipes-bench --bin experiments -- e5      # one exp
//! cargo bench -p pipes-bench                                      # quick pass + criterion micro-benches
//! ```

pub mod experiments;

use std::fmt::Write as _;

/// Prints an aligned ASCII table with a title.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ");
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(120)));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ");
        }
        println!("{line}");
    }
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a duration as milliseconds.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn formatting_helpers() {
        assert_eq!(super::f(1.23456, 2), "1.23");
        assert_eq!(super::ms(std::time::Duration::from_millis(1500)), "1500.0");
        // table() only prints; smoke-test it doesn't panic.
        super::table("t", &["a", "long-header"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn quick_experiments_run() {
        // The full quick pass is exercised by `cargo bench`; here we smoke
        // the cheapest two to keep unit tests fast.
        super::experiments::run("e4", true);
        super::experiments::run("e9", true);
    }
}
