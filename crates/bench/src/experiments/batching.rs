//! E14 — batched data path: amortizing per-message locking.
//!
//! The kernel's queued edges, output ports and node step loops all operate
//! at batch granularity: one queue-lock round per run of messages, one
//! arrival-sequence block per flush, one scratch buffer reused across
//! quanta. Setting the batch limit to 1 reproduces the original
//! per-message cost model (every message pays its own lock round and
//! sequence allocation), so the same graph measured under both limits
//! isolates exactly what batching buys.
//!
//! Acceptance: the batched path sustains at least 2x the per-message
//! throughput on a queued 4-operator chain. Results are also written to
//! `BENCH_batching.json` for the tracking harness.

use crate::{f, table};
use pipes::prelude::*;
use std::time::Instant;

fn input(n: u64) -> Vec<Element<i64>> {
    (0..n)
        .map(|i| Element::at(i as i64, Timestamp::new(i)))
        .collect()
}

/// Runs a queued chain of `k` cheap maps under the given batch limit
/// (`None` = kernel default, unbounded) and returns elements/second.
fn run_chain(n: u64, k: usize, batch_limit: Option<usize>) -> f64 {
    let g = QueryGraph::new();
    let src = g.add_source("src", VecSource::new(input(n)));
    let mut cur = g.add_unary("op0", Map::new(|v: i64| v + 1), &src);
    for i in 1..k {
        cur = g.add_unary(&format!("op{i}"), Map::new(|v: i64| v ^ 7), &cur);
    }
    let (sink, buf) = CollectSink::new();
    g.add_sink("sink", sink, &cur);
    if let Some(limit) = batch_limit {
        g.set_batch_limit(limit);
    }
    let start = Instant::now();
    g.run_to_completion(256);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(buf.lock().len(), n as usize);
    n as f64 / secs
}

/// Best-of-`r` to damp scheduler and allocator noise.
fn best_of(r: usize, mut run: impl FnMut() -> f64) -> f64 {
    (0..r).map(|_| run()).fold(f64::MIN, f64::max)
}

/// Runs E14 and prints the table; writes `BENCH_batching.json`.
pub fn e14_batching(quick: bool) {
    let n: u64 = if quick { 100_000 } else { 1_000_000 };
    const K: usize = 4;
    let reps = if quick { 2 } else { 3 };

    let mut rows = Vec::new();
    let mut tput_at = |limit: Option<usize>| {
        let t = best_of(reps, || run_chain(n, K, limit));
        let label = match limit {
            Some(l) => l.to_string(),
            None => "unbounded".to_string(),
        };
        rows.push(vec![label, f(t / 1e6, 2)]);
        t
    };
    let before = tput_at(Some(1));
    tput_at(Some(8));
    tput_at(Some(64));
    let after = tput_at(None);
    let speedup = after / before;

    table(
        &format!("E14 — batched data path, queued {K}-op chain, {n} elements"),
        &["batch limit", "Melem/s"],
        &rows,
    );
    println!("speedup (unbounded vs per-message): {}x", f(speedup, 2));
    println!(
        "shape check: throughput grows monotonically with the batch limit; \
         the unbounded batched path is >= 2x the per-message baseline."
    );

    let json = format!(
        "{{\n  \"experiment\": \"batching\",\n  \"chain_ops\": {K},\n  \
         \"elements\": {n},\n  \"quantum\": 256,\n  \
         \"before_elem_per_s\": {before:.0},\n  \
         \"after_elem_per_s\": {after:.0},\n  \"speedup\": {speedup:.3}\n}}\n"
    );
    match std::fs::write("BENCH_batching.json", &json) {
        Ok(()) => println!("wrote BENCH_batching.json"),
        Err(e) => eprintln!("could not write BENCH_batching.json: {e}"),
    }
}
