//! E7 — adaptive memory management and load shedding.
//!
//! Paper claim (§Memory Manager): the manager keeps operators within a
//! globally assigned budget; when an operator reaches its limit, a
//! load-shedding strategy degrades answers gracefully instead of letting
//! memory grow. Expected shape: memory stays under every cap; recall
//! (results kept vs unbounded run) degrades smoothly as the cap tightens.

use crate::{f, table};
use pipes::prelude::*;

struct RunOutcome {
    results: usize,
    peak_usage: usize,
    shed: usize,
}

fn run_with_budget(n: u64, budget: Option<usize>) -> RunOutcome {
    let left: Vec<Element<u64>> = (0..n)
        .map(|i| {
            Element::new(
                i % 25,
                TimeInterval::new(Timestamp::new(i), Timestamp::new(i + 2_000)),
            )
        })
        .collect();
    let g = QueryGraph::new();
    let l = g.add_source("l", VecSource::new(left.clone()));
    let r = g.add_source("r", VecSource::new(left));
    let join = g.add_binary(
        "join",
        RippleJoin::equi(|x: &u64| *x, |y: &u64| *y, |x, y| (*x, *y)),
        &l,
        &r,
    );
    let (sink, buf) = CollectSink::new();
    g.add_sink("sink", sink, &join);

    let manager = budget.map(|b| {
        let mut m = MemoryManager::new(b, AssignmentStrategy::Uniform);
        m.subscribe(join.node());
        m
    });

    let mut peak = 0usize;
    let mut shed = 0usize;
    while !g.all_finished() {
        for id in 0..g.len() {
            g.step_node(id, 64);
        }
        if let Some(m) = &manager {
            let report = m.rebalance(&g);
            shed += report.shed;
            peak = peak.max(report.usage_after);
        } else {
            peak = peak.max(g.memory(join.node()));
        }
    }
    let results = buf.lock().len();
    RunOutcome {
        results,
        peak_usage: peak,
        shed,
    }
}

/// Runs E7 and prints the table.
pub fn e7_memory_manager(quick: bool) {
    let n: u64 = if quick { 3_000 } else { 10_000 };
    let unbounded = run_with_budget(n, None);
    let mut rows = vec![vec![
        "unbounded".to_string(),
        unbounded.peak_usage.to_string(),
        "0".into(),
        unbounded.results.to_string(),
        "1.00".into(),
    ]];
    for pct in [75, 50, 25, 10] {
        let budget = unbounded.peak_usage * pct / 100;
        let run = run_with_budget(n, Some(budget));
        assert!(
            run.peak_usage <= budget,
            "cap violated: {} > {budget}",
            run.peak_usage
        );
        rows.push(vec![
            format!("{pct}% cap ({budget})"),
            run.peak_usage.to_string(),
            run.shed.to_string(),
            run.results.to_string(),
            f(run.results as f64 / unbounded.results as f64, 3),
        ]);
    }
    table(
        &format!("E7 — memory manager + load shedding, {n}×{n} window join"),
        &["budget", "peak state", "shed", "results", "recall"],
        &rows,
    );
    println!(
        "shape check: state never exceeds the cap; recall degrades \
         gracefully (not cliff-like) as the budget tightens."
    );
}
