//! E4 — virtual nodes: direct connections vs inter-operator queues.
//!
//! Paper claim (§Query Plans): connecting operators directly inside a
//! virtual node requires no inter-operator queues and "leads to a
//! substantial overhead reduction". We run a chain of k cheap operators
//! over the same input, once as k queued graph nodes and once fused into a
//! single virtual node, and report throughput.

use crate::{f, table};
use pipes::prelude::*;
use std::time::Instant;

fn input(n: u64) -> Vec<Element<i64>> {
    (0..n)
        .map(|i| Element::at(i as i64, Timestamp::new(i)))
        .collect()
}

/// A cheap operator: one branch + one add.
fn cheap() -> Map<i64, i64, impl FnMut(i64) -> i64> {
    Map::new(|v: i64| if v % 2 == 0 { v + 1 } else { v - 1 })
}

fn run_queued(n: u64, k: usize) -> (f64, usize) {
    let g = QueryGraph::new();
    let src = g.add_source("src", VecSource::new(input(n)));
    let mut cur = g.add_unary("op0", cheap(), &src);
    for i in 1..k {
        cur = g.add_unary(&format!("op{i}"), cheap(), &cur);
    }
    let (sink, buf) = CollectSink::new();
    g.add_sink("sink", sink, &cur);
    let start = Instant::now();
    g.run_to_completion(256);
    let secs = start.elapsed().as_secs_f64();
    let count = buf.lock().len();
    assert_eq!(count, n as usize);
    (n as f64 / secs, g.len())
}

fn run_fused(n: u64, k: usize) -> (f64, usize) {
    // Build the k-chain as nested fusions behind one boxed operator.
    let mut chain: Box<dyn Operator<In = i64, Out = i64>> = Box::new(cheap());
    for _ in 1..k {
        chain = Box::new(chain.then(cheap()));
    }
    let g = QueryGraph::new();
    let src = g.add_source("src", VecSource::new(input(n)));
    let cur = g.add_unary("virtual", chain, &src);
    let (sink, buf) = CollectSink::new();
    g.add_sink("sink", sink, &cur);
    let start = Instant::now();
    g.run_to_completion(256);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(buf.lock().len(), n as usize);
    (n as f64 / secs, g.len())
}

/// Runs E4 and prints the table.
pub fn e4_fusion(quick: bool) {
    let n: u64 = if quick { 50_000 } else { 1_000_000 };
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 16] {
        let (queued_tput, queued_nodes) = run_queued(n, k);
        let (fused_tput, fused_nodes) = run_fused(n, k);
        rows.push(vec![
            k.to_string(),
            queued_nodes.to_string(),
            fused_nodes.to_string(),
            f(queued_tput / 1e6, 2),
            f(fused_tput / 1e6, 2),
            f(fused_tput / queued_tput, 2),
        ]);
    }
    table(
        &format!("E4 — operator fusion (virtual nodes), {n} elements per run"),
        &[
            "chain k",
            "nodes queued",
            "nodes fused",
            "queued Melem/s",
            "fused Melem/s",
            "speedup",
        ],
        &rows,
    );
    println!(
        "shape check: fused ≥ queued for every k, and the gap widens with k \
         (no inter-operator queues inside the virtual node)."
    );
}
