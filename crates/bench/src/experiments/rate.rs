//! E9 — rate reduction: coalescing and granularity.
//!
//! Paper claim (§Operator algebra): the interval algebra "includes special
//! mechanisms that substantially reduce stream rates" while staying
//! snapshot-equivalent. We measure the output volume of a windowed count
//! (a) plain, (b) with coalesce, (c) with a granularity cap, and verify
//! snapshot equivalence where it is exact.

use crate::{f, table};
use pipes::ops::drive::run_unary;
use pipes::prelude::*;

fn events(n: u64, run_len: u64) -> Vec<Element<i64>> {
    // Steps of constant concurrency: within each run of `run_len` events
    // the count stays flat, so coalescing has something to merge.
    (0..n)
        .map(|i| {
            let slot = i / run_len;
            Element::new(
                1,
                TimeInterval::new(
                    Timestamp::new(slot * run_len + (i % run_len)),
                    Timestamp::new(slot * run_len + (i % run_len) + run_len),
                ),
            )
        })
        .collect()
}

/// Runs E9 and prints the table.
pub fn e9_rate_reduction(quick: bool) {
    let n: u64 = if quick { 5_000 } else { 40_000 };
    let mut rows = Vec::new();
    for run_len in [4u64, 16, 64] {
        let input = events(n, run_len);

        let plain = run_unary(ScalarAggregate::new(CountAgg), input.clone());
        let coalesced = run_unary(
            ScalarAggregate::new(CountAgg).then(Coalesce::new()),
            input.clone(),
        );
        let sampled = run_unary(
            ScalarAggregate::new(CountAgg).then(Granularity::new(Duration::from_ticks(256))),
            input.clone(),
        );

        // Coalescing must stay exactly snapshot-equivalent.
        pipes::time::snapshot::check_unary(&input, &coalesced, |s| {
            pipes::time::snapshot::rel::aggregate(s, |v| v.len() as u64)
        })
        .expect("coalesce broke snapshot equivalence");

        rows.push(vec![
            run_len.to_string(),
            plain.len().to_string(),
            coalesced.len().to_string(),
            f(plain.len() as f64 / coalesced.len().max(1) as f64, 1),
            sampled.len().to_string(),
            f(plain.len() as f64 / sampled.len().max(1) as f64, 1),
        ]);
    }
    table(
        &format!("E9 — rate reduction on a windowed count, {n} input elements"),
        &[
            "run len",
            "plain out",
            "coalesced",
            "reduction×",
            "granularity(256)",
            "reduction×",
        ],
        &rows,
    );
    println!(
        "shape check: coalesce reduction grows with run length (≈ the \
         run-length factor) at zero semantic cost; granularity gives a \
         hard output cap at bounded approximation."
    );
}
