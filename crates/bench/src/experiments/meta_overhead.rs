//! E19 — metadata-plane overhead on the run-native join plan.
//!
//! The live metadata plane updates every node's `NodeMeta` estimator block
//! once per drained run (rates, run-level selectivity, inter-arrival
//! variance) and publishes the derived values through a seqlock. This
//! experiment prices that on E17's NEXMark-style plan — auctions ⋈ bursty
//! bids → map → grouped max — by running the identical workload with
//! collection disabled (`meta::set_meta_enabled(false)` — the per-quantum
//! flag check is the only residual cost) and enabled.
//!
//! Acceptance: the plane-on run stays within 3% of plane-off throughput,
//! the bar the flight recorder set. Building with `--features meta-off`
//! compiles every collection site out (`meta_compiled_out: true` in the
//! JSON), which is the true-zero-cost configuration.
//!
//! Results are written to `BENCH_meta_overhead.json`.

use crate::{f, table};
use pipes::prelude::*;
use std::time::Instant;

/// Bids per burst (one auction, one timestamp — NEXMark-style flurries).
const BURST: u64 = 16;
/// Distinct auctions (the join's key domain).
const AUCTIONS: u64 = 512;
/// Aggregation categories.
const CATEGORIES: i64 = 8;

/// Payloads are `(auction_id, x)` pairs: `x` is the category on the
/// auctions stream and the price on the bids stream.
type Pair = (i64, i64);

fn auctions() -> Vec<Element<Pair>> {
    let horizon = Timestamp::new(u64::MAX / 2);
    (0..AUCTIONS)
        .map(|id| {
            Element::new(
                (id as i64, id as i64 % CATEGORIES),
                TimeInterval::new(Timestamp::ZERO, horizon),
            )
        })
        .collect()
}

fn bids(n: u64) -> Vec<Element<Pair>> {
    (0..n)
        .map(|i| {
            let burst = i / BURST;
            let auction = (burst * 7919) % AUCTIONS;
            let price = 100 + (i % BURST) as i64 * 3;
            Element::at((auction as i64, price), Timestamp::new(burst + 1))
        })
        .collect()
}

/// Builds E17's run-native plan, runs it to completion, and returns
/// elements/s over both inputs.
fn run_plan(n_bids: u64) -> f64 {
    let g = QueryGraph::new();
    let a = g.add_source("auctions", VecSource::new(auctions()));
    let b = g.add_source("bids", VecSource::new(bids(n_bids)));
    let join = RippleJoin::equi(|l: &Pair| l.0, |r: &Pair| r.0, |l, r| (l.1, r.1));
    let joined = g.add_binary("join", join, &a, &b);
    let mapped = g.add_unary("fee", Map::new(|p: Pair| (p.0, p.1 + p.1 / 50)), &joined);
    let agg = GroupedAggregate::new(|p: &Pair| p.0, MaxAgg(|p: &Pair| p.1));
    let top = g.add_unary("top-price", agg, &mapped);
    let (sink, buf) = CollectSink::new();
    g.add_sink("sink", sink, &top);

    let total = AUCTIONS + n_bids;
    let start = Instant::now();
    g.run_to_completion(256);
    let secs = start.elapsed().as_secs_f64();
    assert!(!buf.lock().is_empty(), "plan produced no aggregates");
    total as f64 / secs
}

/// Sanity check (plane compiled in): after a run with collection enabled,
/// a snapshot of a warm graph reports measured estimates.
fn check_plane_feeds_estimates() {
    if pipes::meta::META_COMPILED_OUT {
        return;
    }
    use pipes::graph::{Confidence, MetaConfig};
    let g = QueryGraph::new();
    let src = g.add_source("s", VecSource::new(bids(4096)));
    let (sink, _) = CollectSink::new();
    g.add_sink("k", sink, &src);
    g.run_to_completion(256);
    let snap = g.meta_snapshot(&MetaConfig::default());
    let est = snap.get(src.node()).expect("source estimate");
    assert_eq!(est.confidence, Confidence::Measured);
    assert!(est.out_rate > 0.0);
}

/// Runs E19 and prints the table; writes `BENCH_meta_overhead.json`.
pub fn e19_meta_overhead(quick: bool) {
    let n_bids: u64 = if quick { 64_000 } else { 256_000 };
    let reps = if quick { 8 } else { 48 };

    // Warm up allocator and page cache (and the estimator blocks) off the
    // clock, then run the two configurations back to back per rep in
    // alternating order — the per-pair throughput ratio cancels machine
    // drift and the median over pairs damps outliers (E15 methodology).
    pipes::meta::set_meta_enabled(true);
    run_plan(n_bids.min(8_000));
    check_plane_feeds_estimates();
    let run = |collect: bool| {
        pipes::meta::set_meta_enabled(collect);
        run_plan(n_bids)
    };
    let mut off = f64::MIN;
    let mut on = f64::MIN;
    let mut ratios = Vec::with_capacity(reps);
    for rep in 0..reps {
        let (a, b) = if rep % 2 == 0 {
            let on_t = run(true);
            (run(false), on_t)
        } else {
            (run(false), run(true))
        };
        off = off.max(a);
        on = on.max(b);
        ratios.push(b / a);
        if std::env::var_os("PIPES_E19_DEBUG").is_some() {
            eprintln!("rep {rep:>2}: off {a:.3e} on {b:.3e} ratio {:.4}", b / a);
        }
    }
    pipes::meta::set_meta_enabled(true);
    ratios.sort_by(f64::total_cmp);
    let median_ratio = if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    };
    let overhead_pct = (1.0 - median_ratio) * 100.0;

    table(
        &format!(
            "E19 — metadata-plane overhead, auctions({AUCTIONS}) ⋈ bids({n_bids}, \
             bursts of {BURST}) → map → group-by-category max"
        ),
        &["metadata plane", "Melem/s"],
        &[
            vec!["disabled".into(), f(off / 1e6, 2)],
            vec!["enabled".into(), f(on / 1e6, 2)],
        ],
    );
    println!(
        "overhead: {}% (compiled out: {})",
        f(overhead_pct, 2),
        pipes::meta::META_COMPILED_OUT
    );
    println!(
        "shape check: one estimator update per drained run (not per message) \
         keeps the live metadata plane within 3% of plane-off throughput; \
         `--features meta-off` removes even the flag check."
    );

    let json = format!(
        "{{\n  \"experiment\": \"meta_overhead\",\n  \"auctions\": {AUCTIONS},\n  \
         \"bids\": {n_bids},\n  \"burst\": {BURST},\n  \
         \"categories\": {CATEGORIES},\n  \"quantum\": 256,\n  \
         \"off_elem_per_s\": {off:.0},\n  \
         \"on_elem_per_s\": {on:.0},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"bar_pct\": 3,\n  \
         \"meta_compiled_out\": {}\n}}\n",
        pipes::meta::META_COMPILED_OUT
    );
    match std::fs::write("BENCH_meta_overhead.json", &json) {
        Ok(()) => println!("wrote BENCH_meta_overhead.json"),
        Err(e) => eprintln!("could not write BENCH_meta_overhead.json: {e}"),
    }
}
