//! E8 — multi-query optimization: sharing subplans of the running graph.
//!
//! Paper claim (§Query Optimizer): a new query is probed against the
//! running query graph and only the missing operators are instantiated.
//! Expected shape: with sharing, each added overlapping query contributes
//! O(1) new nodes (its private filter/projection), while the unshared
//! baseline replicates the whole pipeline; total node count and install
//! cost diverge linearly.

use crate::{f, table};
use pipes::nexmark::{self, generator::NexmarkConfig};
use pipes::prelude::*;

fn catalog(events: u64) -> Catalog {
    let mut cat = Catalog::new();
    nexmark::register(
        &mut cat,
        NexmarkConfig {
            max_events: events,
            mean_inter_event_ms: 250.0,
            ..Default::default()
        },
    );
    cat
}

fn queries(n: usize) -> Vec<LogicalPlan> {
    // n overlapping queries: identical selective scan (filter + window),
    // different final projections — the MQO shares the whole prefix and
    // each query contributes only its private projection node.
    (0..n)
        .map(|i| {
            pipes::cql::compile_cql(
                &format!(
                    "SELECT auction, price * {} AS scaled \
                     FROM bid [RANGE 2 MINUTES] WHERE price > 1000",
                    i + 1
                ),
                &catalog(10),
            )
            .expect("query parses")
        })
        .collect()
}

/// Runs E8 and prints the table.
pub fn e8_multi_query(quick: bool) {
    let events: u64 = if quick { 2_000 } else { 8_000 };
    let counts = if quick {
        vec![1usize, 4, 8, 16]
    } else {
        vec![1usize, 2, 4, 8, 16, 32]
    };
    let mut rows = Vec::new();
    for n in counts {
        let plans = queries(n);

        // Shared: one optimizer, one running graph.
        let cat = catalog(events);
        let shared_graph = QueryGraph::new();
        let mut optimizer = Optimizer::new();
        let mut created = 0;
        let mut reused = 0;
        for p in &plans {
            let r = optimizer.install(p, &shared_graph, &cat).expect("installs");
            created += r.created;
            reused += r.reused;
            let (sink, _) = CollectSink::new();
            shared_graph.add_sink("s", sink, &r.handle);
        }
        let shared_nodes = shared_graph.len() - n; // minus sinks

        // Unshared baseline: a fresh optimizer (= no running-plan index)
        // per query, same graph.
        let cat = catalog(events);
        let solo_graph = QueryGraph::new();
        let mut solo_nodes = 0;
        for p in &plans {
            let mut fresh = Optimizer::new();
            let r = fresh.install(p, &solo_graph, &cat).expect("installs");
            solo_nodes += r.created;
            let (sink, _) = CollectSink::new();
            solo_graph.add_sink("s", sink, &r.handle);
        }

        // Throughput of the shared graph.
        let start = std::time::Instant::now();
        let mut strat = FifoStrategy;
        let report = SingleThreadExecutor::new()
            .with_quantum(128)
            .run(&shared_graph, &mut strat);
        let wall = start.elapsed();

        rows.push(vec![
            n.to_string(),
            shared_nodes.to_string(),
            solo_nodes.to_string(),
            created.to_string(),
            reused.to_string(),
            f(solo_nodes as f64 / shared_nodes as f64, 2),
            f(report.consumed as f64 / wall.as_secs_f64() / 1000.0, 0),
        ]);
    }
    table(
        &format!(
            "E8 — multi-query optimization, shared scan + distinct projections, {events} events"
        ),
        &[
            "queries",
            "nodes shared",
            "nodes unshared",
            "created",
            "reused",
            "saving×",
            "kmsg/s",
        ],
        &rows,
    );
    println!(
        "shape check: with sharing each extra query adds ~1 node; the \
         unshared baseline grows by the full pipeline per query."
    );
}
