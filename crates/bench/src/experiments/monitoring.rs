//! E3 — the performance monitor under fluctuating stream rates (Figure 3).
//!
//! Paper claim (§Performance Monitoring Tool): secondary metadata of any
//! node can be observed at runtime; the demo highlights "the effect of
//! fluctuating stream rates on internal buffers". We drive a square-wave
//! rate through filter → window → count under a deliberately slow
//! round-robin scheduler and sample every node's metadata on a fixed
//! logical grid, then render the series.

use crate::table;
use pipes::prelude::*;

/// Runs E3 and prints the series.
pub fn e3_monitoring(quick: bool) {
    let n: u64 = if quick { 30_000 } else { 120_000 };
    // Square-wave arrivals: alternate dense and sparse phases.
    let mut t = 0u64;
    let elems: Vec<Element<i64>> = (0..n)
        .map(|i| {
            t += if (i / 1024) % 2 == 0 { 1 } else { 32 };
            Element::at(i as i64, Timestamp::new(t))
        })
        .collect();

    let g = QueryGraph::new();
    let src = g.add_source("square-wave", VecSource::new(elems));
    let filt = g.add_unary("filter", Filter::new(|v: &i64| v % 3 != 0), &src);
    let win = g.add_unary("window", TimeWindow::new(Duration::from_ticks(256)), &filt);
    let agg = g.add_unary("count", ScalarAggregate::new(CountAgg), &win);
    let (sink, _) = CollectSink::new();
    g.add_sink("sink", sink, &agg);

    let monitor = Monitor::new();
    for info in g.infos() {
        monitor.register(g.stats(info.id));
    }

    // Deterministic sampling: one sample every few scheduling rounds.
    let mut strategy = RoundRobinStrategy::new();
    let node_ids: Vec<NodeId> = (0..g.len()).collect();
    let mut round = 0.0f64;
    loop {
        if g.all_finished() {
            break;
        }
        // One short slice, then a sample.
        let view = pipes::sched::SchedView::new(&g, &node_ids);
        if let Some(id) = strategy.select(&view) {
            g.step_node(id, 192);
        }
        round += 1.0;
        if (round as u64).is_multiple_of(4) {
            monitor.sample_at(round);
        }
    }

    println!("\n=== E3 — secondary metadata under a square-wave input rate ===");
    print!("{}", monitor.render_sparklines(SeriesView::InputRate));
    print!("{}", monitor.render_sparklines(SeriesView::QueueLen));
    print!("{}", monitor.render_sparklines(SeriesView::Memory));

    // Quantify the claim: the filter's queue peaks during bursts.
    let series = monitor.series();
    let filt_series = &series[filt.node()];
    let queue = filt_series.view(SeriesView::QueueLen);
    let peak = queue.iter().cloned().fold(0.0f64, f64::max);
    let avg = queue.iter().sum::<f64>() / queue.len().max(1) as f64;
    let agg_mem = series[agg.node()].view(SeriesView::Memory);
    let mem_peak = agg_mem.iter().cloned().fold(0.0f64, f64::max);
    table(
        "E3 — buffer statistics",
        &["node", "peak queue", "avg queue", "peak state"],
        &[
            vec![
                "filter".into(),
                format!("{peak:.0}"),
                format!("{avg:.1}"),
                "-".into(),
            ],
            vec![
                "count".into(),
                "-".into(),
                "-".into(),
                format!("{mem_peak:.0}"),
            ],
        ],
    );
    println!(
        "shape check: queue length tracks the square wave (bursts fill \
         internal buffers, gaps drain them); selectivity converges to ≈0.67."
    );
    let sel = g.stats(filt.node()).snapshot().selectivity().unwrap_or(0.0);
    println!("observed filter selectivity: {sel:.3}");
}
