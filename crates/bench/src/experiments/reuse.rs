//! E12 — code reuse across processing styles.
//!
//! Paper claim (§Code Reusability): the online-aggregation functions are
//! "designed independently from the underlying kind of processing, i.e.,
//! demand- or data-driven". We compute the mean/variance of the same data
//! three ways — demand-driven cursor online aggregation, data-driven stream
//! aggregation, and a plain fold — all backed by the *same* Welford
//! estimator from `pipes-meta`, and check they agree bit-for-bit.

use crate::{f, ms, table};
use pipes::cursor::{CursorExt, VecCursor};
use pipes::prelude::*;
use std::time::Instant;

/// Runs E12 and prints the table.
pub fn e12_code_reuse(quick: bool) {
    let n: u64 = if quick { 200_000 } else { 2_000_000 };
    let values: Vec<f64> = (0..n)
        .map(|i| ((i as f64) * 0.37).sin() * 50.0 + 100.0)
        .collect();

    // 1. Plain estimator (ground truth).
    let start = Instant::now();
    let mut direct = pipes::meta::estimators::Welford::new();
    for &v in &values {
        direct.observe(v);
    }
    let t_direct = start.elapsed();

    // 2. Demand-driven: cursor online aggregation.
    let start = Instant::now();
    let estimates = VecCursor::new(values.clone())
        .online_aggregate(|v| *v, 10_000)
        .collect_vec();
    let t_cursor = start.elapsed();
    let last = estimates.last().expect("non-empty input");
    assert!(last.finished);

    // 3. Data-driven: stream aggregation over one big window.
    let elems: Vec<Element<f64>> = values
        .iter()
        .map(|&v| Element::new(v, TimeInterval::new(Timestamp::new(0), Timestamp::new(1))))
        .collect();
    // All elements share the interval [0,1): one partial accumulates the
    // whole dataset and the snapshot at t=0 is the full aggregate.
    let start = Instant::now();
    let out = pipes::ops::drive::run_unary(ScalarAggregate::new(StatsAgg(|v: &f64| *v)), elems);
    let t_stream = start.elapsed();
    let (stream_mean, stream_var) = out
        .iter()
        .find(|e| e.interval.contains(Timestamp::ZERO))
        .expect("snapshot at 0 exists")
        .payload;

    assert_eq!(
        direct.mean().to_bits(),
        last.mean.to_bits(),
        "cursor path diverged"
    );
    assert_eq!(
        direct.mean().to_bits(),
        stream_mean.to_bits(),
        "stream path diverged"
    );
    assert_eq!(direct.variance().to_bits(), stream_var.to_bits());

    table(
        &format!("E12 — one Welford estimator, three processing styles, {n} values"),
        &["style", "mean", "variance", "wall ms"],
        &[
            vec![
                "direct fold".into(),
                f(direct.mean(), 6),
                f(direct.variance(), 6),
                ms(t_direct),
            ],
            vec![
                "cursor (demand-driven)".into(),
                f(last.mean, 6),
                f(last.variance, 6),
                ms(t_cursor),
            ],
            vec![
                "stream (data-driven)".into(),
                f(stream_mean, 6),
                f(stream_var, 6),
                ms(t_stream),
            ],
        ],
    );
    println!("shape check: identical digits — the same estimator code runs in every style.");
}
