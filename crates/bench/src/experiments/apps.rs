//! E1, E10, E11 — the assembled DSMS prototype and the two application
//! scenarios.

use crate::{f, ms, table};
use pipes::nexmark::{self, generator::NexmarkConfig, queries as nex_queries};
use pipes::prelude::*;
use pipes::traffic::{self, generator::FspConfig, queries as traffic_queries};
use std::time::Instant;

fn traffic_config(secs: u64) -> FspConfig {
    FspConfig {
        duration_secs: secs,
        sections: 5,
        base_vehicles_per_min: 2.0,
        incidents_per_hour: 4.0,
        incident_duration_secs: 1200,
        ..Default::default()
    }
}

fn nexmark_config(events: u64) -> NexmarkConfig {
    NexmarkConfig {
        max_events: events,
        mean_inter_event_ms: 250.0,
        ..Default::default()
    }
}

/// E1 — the full prototype: both scenarios, several queries each, one
/// graph, one scheduler, the optimizer sharing what it can.
pub fn e1_architecture(quick: bool) {
    let (secs, events) = if quick { (300, 3_000) } else { (1200, 12_000) };
    let mut cat = Catalog::new();
    traffic::register(&mut cat, traffic_config(secs));
    nexmark::register(&mut cat, nexmark_config(events));

    let graph = QueryGraph::new();
    let mut optimizer = Optimizer::new();
    let mut installed = 0;
    let mut created = 0;
    let mut reused = 0;
    let mut sinks = Vec::new();
    let queries: Vec<(&str, String)> = vec![
        (
            "traffic/hov",
            traffic_queries::q1_hov_avg_speed_cql().into(),
        ),
        (
            "traffic/flow",
            traffic_queries::q3_section_flow_cql().into(),
        ),
        (
            "auction/highest",
            nex_queries::q3_highest_bid_10min().into(),
        ),
        ("auction/hot", nex_queries::q4_hot_items().into()),
        ("auction/join", nex_queries::q5_bid_auction_join().into()),
    ];
    for (name, sql) in &queries {
        let plan = pipes::cql::compile_cql(sql, &cat).expect("parses");
        let r = optimizer.install(&plan, &graph, &cat).expect("installs");
        created += r.created;
        reused += r.reused;
        installed += 1;
        let (sink, buf) = CollectSink::new();
        graph.add_sink(name, sink, &r.handle);
        sinks.push((*name, buf));
    }

    let graph = std::sync::Arc::new(graph);
    let start = Instant::now();
    let reports = MultiThreadExecutor::new(2)
        .with_quantum(128)
        .run(&graph, || Box::new(FifoStrategy));
    let wall = start.elapsed();
    let consumed = ExecutionReport::merge(&reports).consumed;

    let mut rows = Vec::new();
    for (name, buf) in &sinks {
        rows.push(vec![name.to_string(), buf.lock().len().to_string()]);
    }
    table(
        "E1 — assembled DSMS prototype: results per query",
        &["query", "rows"],
        &rows,
    );
    table(
        "E1 — run summary",
        &[
            "queries", "nodes", "created", "reused", "messages", "wall ms", "kmsg/s",
        ],
        &[vec![
            installed.to_string(),
            graph.len().to_string(),
            created.to_string(),
            reused.to_string(),
            consumed.to_string(),
            ms(wall),
            f(consumed as f64 / wall.as_secs_f64() / 1000.0, 0),
        ]],
    );
    for (name, buf) in &sinks {
        assert!(!buf.lock().is_empty(), "{name} produced nothing");
    }
    println!("shape check: every query of both domains produces results in one shared graph.");
}

/// E10 — traffic queries: latency/volume plus incident-detection accuracy
/// against the generator's ground-truth schedule.
pub fn e10_traffic(quick: bool) {
    let secs = if quick { 1200 } else { 3600 };
    // Seed 1 schedules an Oakland-bound incident ~218 s in, long enough
    // for Q2's 15-minute persistence criterion even in the quick run.
    let cfg = FspConfig {
        seed: 1,
        incidents_per_hour: 6.0,
        incident_duration_secs: 1500,
        ..traffic_config(secs)
    };
    let schedule = traffic::generator::FspGenerator::new(cfg.clone()).incident_schedule();
    let mut cat = Catalog::new();
    traffic::register(&mut cat, cfg);

    let mut rows = Vec::new();
    let plans = vec![
        (
            "q1 hov avg speed",
            pipes::cql::compile_cql(traffic_queries::q1_hov_avg_speed_cql(), &cat).unwrap(),
        ),
        (
            "q2 slowdown",
            traffic_queries::q2_persistent_slowdown_plan(0, 40.0),
        ),
        (
            "q3 section flow",
            pipes::cql::compile_cql(traffic_queries::q3_section_flow_cql(), &cat).unwrap(),
        ),
        (
            "q4 truck share",
            pipes::cql::compile_cql(traffic_queries::q4_truck_share_cql(), &cat).unwrap(),
        ),
    ];
    let mut flagged: std::collections::BTreeSet<i64> = std::collections::BTreeSet::new();
    for (name, plan) in plans {
        let graph = QueryGraph::new();
        let mut optimizer = Optimizer::new();
        let r = optimizer.install(&plan, &graph, &cat).unwrap();
        let (sink, buf) = CollectSink::new();
        graph.add_sink("out", sink, &r.handle);
        let start = Instant::now();
        let mut strat = FifoStrategy;
        let report = SingleThreadExecutor::new()
            .with_quantum(256)
            .run(&graph, &mut strat);
        let wall = start.elapsed();
        if name.starts_with("q2") {
            flagged = buf
                .lock()
                .iter()
                .filter_map(|e| e.payload[0].as_i64())
                .collect();
        }
        rows.push(vec![
            name.to_string(),
            buf.lock().len().to_string(),
            report.consumed.to_string(),
            ms(wall),
        ]);
    }
    table(
        &format!("E10 — traffic queries over {secs} simulated seconds"),
        &["query", "rows", "messages", "wall ms"],
        &rows,
    );

    let oakland: Vec<u16> = schedule
        .iter()
        .filter(|(_, _, _, d)| *d == traffic::Direction::Oakland)
        .map(|(_, _, s, _)| *s)
        .collect();
    println!("ground-truth Oakland-bound incidents at sections: {oakland:?}");
    println!("q2 flagged sections (speed < 40 mph for 15 min): {flagged:?}");
}

/// E11 — the NEXMark suite end-to-end.
pub fn e11_nexmark(quick: bool) {
    let events = if quick { 4_000 } else { 20_000 };
    let mut cat = Catalog::new();
    nexmark::register(&mut cat, nexmark_config(events));

    let mut rows = Vec::new();
    for (name, sql) in nex_queries::all() {
        let plan = pipes::cql::compile_cql(sql, &cat).unwrap();
        let graph = QueryGraph::new();
        let mut optimizer = Optimizer::new();
        let r = optimizer.install(&plan, &graph, &cat).unwrap();
        let (sink, buf) = CollectSink::new();
        graph.add_sink("out", sink, &r.handle);
        let start = Instant::now();
        let mut strat = FifoStrategy;
        let report = SingleThreadExecutor::new()
            .with_quantum(256)
            .run(&graph, &mut strat);
        let wall = start.elapsed();
        rows.push(vec![
            name.to_string(),
            buf.lock().len().to_string(),
            report.consumed.to_string(),
            ms(wall),
            f(report.consumed as f64 / wall.as_secs_f64() / 1000.0, 0),
        ]);
    }
    table(
        &format!("E11 — NEXMark query suite, {events} events"),
        &["query", "rows", "messages", "wall ms", "kmsg/s"],
        &rows,
    );
}
