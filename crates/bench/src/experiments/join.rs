//! E6 — the generic join framework: exchangeable SweepAreas and the
//! multiway join.
//!
//! Paper claim (§Algorithmic Testbed): the generalized ripple join,
//! parameterized by SweepAreas, covers window joins and multiway joins and
//! allows their systematic comparison. Expected shapes: hash SweepAreas
//! dominate for equi-joins (probe O(1) vs O(n)); probe cost and output
//! rate grow with window size; one MJoin node beats a cascade of binary
//! joins on intermediate-result volume for star-shaped 3-way joins.

use crate::{f, ms, table};
use pipes::ops::drive::{run_binary, run_nary};
use pipes::ops::join::{HashSweepArea, ListSweepArea, OrderedSweepArea};
use pipes::prelude::*;
use std::time::Instant;

fn make_stream(n: u64, keys: u64, window: u64, seed: u64) -> Vec<Element<u64>> {
    (0..n)
        .map(|i| {
            Element::new(
                (i.wrapping_mul(seed)) % keys,
                TimeInterval::new(Timestamp::new(i), Timestamp::new(i + window)),
            )
        })
        .collect()
}

fn join_for(variant: &str) -> RippleJoin<u64, u64, (u64, u64)> {
    match variant {
        "list" => RippleJoin::with_areas(
            Box::new(ListSweepArea::new(|r: &u64, l: &u64| l == r)),
            Box::new(ListSweepArea::new(|l: &u64, r: &u64| l == r)),
            |l, r| (*l, *r),
        ),
        "ordered" => RippleJoin::with_areas(
            Box::new(OrderedSweepArea::new(|r: &u64, l: &u64| l == r)),
            Box::new(OrderedSweepArea::new(|l: &u64, r: &u64| l == r)),
            |l, r| (*l, *r),
        ),
        "hash" => RippleJoin::with_areas(
            Box::new(HashSweepArea::new(|l: &u64| *l, |r: &u64| *r)),
            Box::new(HashSweepArea::new(|r: &u64| *r, |l: &u64| *l)),
            |l, r| (*l, *r),
        ),
        other => panic!("unknown variant {other}"),
    }
}

/// Runs E6 and prints the tables.
pub fn e6_join_framework(quick: bool) {
    let n: u64 = if quick { 4_000 } else { 20_000 };

    // ---- SweepArea comparison across window sizes ------------------------
    let mut rows = Vec::new();
    for window in [50u64, 200, 800] {
        let mut per_variant: Vec<(usize, std::time::Duration)> = Vec::new();
        for variant in ["list", "ordered", "hash"] {
            let left = make_stream(n, 40, window, 2654435761);
            let right = make_stream(n, 40, window, 40503);
            let start = Instant::now();
            let out = run_binary(join_for(variant), left, right);
            per_variant.push((out.len(), start.elapsed()));
        }
        let results = per_variant[0].0;
        assert!(
            per_variant.iter().all(|(c, _)| *c == results),
            "variants disagree"
        );
        rows.push(vec![
            window.to_string(),
            results.to_string(),
            ms(per_variant[0].1),
            ms(per_variant[1].1),
            ms(per_variant[2].1),
            f(
                per_variant[0].1.as_secs_f64() / per_variant[2].1.as_secs_f64(),
                1,
            ),
        ]);
    }
    table(
        &format!("E6a — SweepArea variants, equi-join, {n}×{n} elements, 40 keys"),
        &[
            "window",
            "results",
            "list ms",
            "ordered ms",
            "hash ms",
            "list/hash",
        ],
        &rows,
    );

    // ---- Theta joins: list competitive at low match rates ----------------
    let mut rows = Vec::new();
    for keys in [4u64, 40, 400] {
        let left = make_stream(n / 2, keys, 100, 2654435761);
        let right = make_stream(n / 2, keys, 100, 40503);
        let start = Instant::now();
        let out = run_binary(
            RippleJoin::theta(|l: &u64, r: &u64| l == r, |l, r| (*l, *r)),
            left.clone(),
            right.clone(),
        );
        let theta = start.elapsed();
        let start = Instant::now();
        let out2 = run_binary(
            RippleJoin::equi(|l: &u64| *l, |r: &u64| *r, |l, r| (*l, *r)),
            left,
            right,
        );
        let equi = start.elapsed();
        assert_eq!(out.len(), out2.len());
        rows.push(vec![
            keys.to_string(),
            out.len().to_string(),
            ms(theta),
            ms(equi),
        ]);
    }
    table(
        &format!(
            "E6b — match-rate sweep, {}×{} elements (fewer keys = higher selectivity)",
            n / 2,
            n / 2
        ),
        &["keys", "results", "theta(list) ms", "equi(hash) ms"],
        &rows,
    );

    // ---- MJoin vs binary cascade ------------------------------------------
    let m: u64 = if quick { 1_500 } else { 6_000 };
    let a = make_stream(m, 30, 150, 2654435761);
    let b = make_stream(m, 30, 150, 40503);
    let c = make_stream(m, 30, 150, 69857);

    let start = Instant::now();
    let multiway = run_nary(
        MultiwayJoin::new(3, |v: &u64| *v),
        vec![a.clone(), b.clone(), c.clone()],
    );
    let mjoin_t = start.elapsed();

    let start = Instant::now();
    let ab = run_binary(
        RippleJoin::equi(|l: &u64| *l, |r: &u64| *r, |l, r| (*l, *r)),
        a,
        b,
    );
    let intermediate = ab.len();
    let abc = run_binary(
        RippleJoin::equi(|l: &(u64, u64)| l.0, |r: &u64| *r, |l, r| (l.0, l.1, *r)),
        ab,
        c,
    );
    let cascade_t = start.elapsed();
    assert_eq!(multiway.len(), abc.len(), "join trees must agree");

    table(
        &format!("E6c — 3-way equi-join, {m} elements per input, 30 keys"),
        &["plan", "results", "intermediate", "wall ms"],
        &[
            vec![
                "MJoin (1 node)".into(),
                multiway.len().to_string(),
                "0".into(),
                ms(mjoin_t),
            ],
            vec![
                "binary cascade".into(),
                abc.len().to_string(),
                intermediate.to_string(),
                ms(cascade_t),
            ],
        ],
    );
    println!(
        "shape check: hash beats list increasingly with window size; \
         theta(list) degrades with match rate; MJoin avoids the \
         intermediate result of the cascade."
    );
}
