//! E15 — flight-recorder overhead on the batched data path.
//!
//! The recorder is *always on*: every edge push, batch drain, node step
//! and scheduler quantum records into per-thread rings. This experiment
//! prices that on the same queued 4-map chain E14 uses, by measuring the
//! identical workload with recording disabled (`trace::set_enabled(false)`
//! — the per-event check is the only residual cost) and enabled.
//!
//! Acceptance: the recorder-on run stays within 5% of recorder-off
//! throughput. Building with `--features trace-off` compiles every
//! recording site out entirely (`trace_compiled_out: true` in the JSON),
//! which is the true-zero-cost configuration.
//!
//! Results are written to `BENCH_trace_overhead.json`.

use crate::{f, table};
use pipes::prelude::*;
use std::time::Instant;

fn input(n: u64) -> Vec<Element<i64>> {
    (0..n)
        .map(|i| Element::at(i as i64, Timestamp::new(i)))
        .collect()
}

/// Runs the E14 chain (kernel-default batching) and returns elements/s.
fn run_chain(n: u64, k: usize) -> f64 {
    let g = QueryGraph::new();
    let src = g.add_source("src", VecSource::new(input(n)));
    let mut cur = g.add_unary("op0", Map::new(|v: i64| v + 1), &src);
    for i in 1..k {
        cur = g.add_unary(&format!("op{i}"), Map::new(|v: i64| v ^ 7), &cur);
    }
    let (sink, buf) = CollectSink::new();
    g.add_sink("sink", sink, &cur);
    let start = Instant::now();
    g.run_to_completion(256);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(buf.lock().len(), n as usize);
    n as f64 / secs
}

/// Runs E15 and prints the table; writes `BENCH_trace_overhead.json`.
pub fn e15_trace_overhead(quick: bool) {
    // Many short paired runs beat few long ones on a shared machine: the
    // noise floor here is per-scheduling-quantum (±10% between adjacent
    // 100 ms runs), so the estimator's error shrinks with the number of
    // pairs, not with per-run length.
    let n: u64 = if quick { 100_000 } else { 250_000 };
    const K: usize = 4;
    let reps = if quick { 12 } else { 96 };

    // Warm up the allocator, page cache, and the recorder's ring + name
    // table before timing anything. Each rep then runs the two
    // configurations back to back (alternating which goes first), so a
    // rep's pair shares whatever the machine is doing at that moment;
    // the per-pair throughput ratio cancels that drift, and the median
    // over all pairs damps the outliers a single loaded-core rep
    // produces. Best-of throughputs are reported alongside for scale.
    pipes::trace::set_enabled(true);
    run_chain(n.min(100_000), K);
    let run = |record: bool| {
        pipes::trace::set_enabled(record);
        pipes::trace::clear();
        run_chain(n, K)
    };
    let mut off = f64::MIN;
    let mut on = f64::MIN;
    let mut ratios = Vec::with_capacity(reps);
    for rep in 0..reps {
        let (a, b) = if rep % 2 == 0 {
            let on_t = run(true);
            (run(false), on_t)
        } else {
            (run(false), run(true))
        };
        off = off.max(a);
        on = on.max(b);
        ratios.push(b / a);
        if std::env::var_os("PIPES_E15_DEBUG").is_some() {
            eprintln!("rep {rep:>2}: off {a:.3e} on {b:.3e} ratio {:.4}", b / a);
        }
    }
    pipes::trace::set_enabled(true);
    ratios.sort_by(f64::total_cmp);
    let median_ratio = if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    };
    let overhead_pct = (1.0 - median_ratio) * 100.0;

    table(
        &format!("E15 — flight-recorder overhead, queued {K}-op chain, {n} elements"),
        &["recorder", "Melem/s"],
        &[
            vec!["disabled".into(), f(off / 1e6, 2)],
            vec!["enabled".into(), f(on / 1e6, 2)],
        ],
    );
    println!(
        "overhead: {}% (compiled out: {})",
        f(overhead_pct, 2),
        pipes::trace::COMPILED_OUT
    );
    println!(
        "shape check: the always-on recorder costs < 5% throughput on the \
         batched chain; `--features trace-off` removes even that."
    );

    let json = format!(
        "{{\n  \"experiment\": \"trace_overhead\",\n  \"chain_ops\": {K},\n  \
         \"elements\": {n},\n  \"quantum\": 256,\n  \
         \"off_elem_per_s\": {off:.0},\n  \
         \"on_elem_per_s\": {on:.0},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"trace_compiled_out\": {}\n}}\n",
        pipes::trace::COMPILED_OUT
    );
    match std::fs::write("BENCH_trace_overhead.json", &json) {
        Ok(()) => println!("wrote BENCH_trace_overhead.json"),
        Err(e) => eprintln!("could not write BENCH_trace_overhead.json: {e}"),
    }
}
