//! E17 — run-at-a-time operator algebra vs element-at-a-time dispatch.
//!
//! A NEXMark-style join + aggregate plan: an auctions stream (one element
//! per auction, valid over the whole session) equi-joined with a bursty
//! bids stream (bursts of same-auction, same-timestamp bids — the shape
//! real bidding traffic has), the matches mapped, then grouped-aggregated
//! by category. Two variants run the *identical* batched kernel:
//!
//! * **run-native** — the operators as shipped: `RippleJoin` probes a
//!   whole same-side segment with one hash lookup per distinct adjacent
//!   key and bulk-inserts with per-run bucket reservation, `Map` reserves
//!   its output once per run, and `GroupedAggregate` applies each
//!   same-key/same-interval burst as one boundary split
//!   ([`Partials::insert_group`]-style) instead of one per element;
//! * **per-message** — the same operators wrapped in
//!   [`ElementWise`]/[`BinaryElementWise`], which suppress the native
//!   `on_run` overrides so every message takes the trait's default
//!   per-message loop.
//!
//! Since the wrappers change *only* the dispatch granularity, the ratio
//! isolates what the run-level algebra buys. Methodology follows E15:
//! paired back-to-back runs in alternating order per rep, per-rep ratio,
//! median over reps. Acceptance: run-native reaches ≥ 1.5× the
//! per-message throughput. Results go to `BENCH_ops_runs.json`.

use crate::{f, table};
use pipes::ops::drive::{BinaryElementWise, ElementWise};
use pipes::prelude::*;
use std::time::Instant;

/// Bids per burst (one auction, one timestamp — NEXMark-style flurries).
const BURST: u64 = 16;
/// Distinct auctions (the join's key domain).
const AUCTIONS: u64 = 512;
/// Aggregation categories.
const CATEGORIES: i64 = 8;

/// Payloads are `(auction_id, x)` pairs: `x` is the category on the
/// auctions stream and the price on the bids stream.
type Pair = (i64, i64);

fn auctions() -> Vec<Element<Pair>> {
    // Every auction is open for the whole session, so each burst's probe
    // hits exactly one live match and no variant-dependent purging occurs.
    let horizon = Timestamp::new(u64::MAX / 2);
    (0..AUCTIONS)
        .map(|id| {
            Element::new(
                (id as i64, id as i64 % CATEGORIES),
                TimeInterval::new(Timestamp::ZERO, horizon),
            )
        })
        .collect()
}

fn bids(n: u64) -> Vec<Element<Pair>> {
    // `n` bids in bursts of `BURST`: every burst picks one auction and one
    // timestamp, prices vary inside the burst.
    (0..n)
        .map(|i| {
            let burst = i / BURST;
            let auction = (burst * 7919) % AUCTIONS; // stride over the key domain
            let price = 100 + (i % BURST) as i64 * 3;
            Element::at((auction as i64, price), Timestamp::new(burst + 1))
        })
        .collect()
}

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    RunNative,
    PerMessage,
}

fn join_op() -> RippleJoin<Pair, Pair, Pair> {
    // Left: auctions (id, category); right: bids (id, price);
    // out: (category, price).
    RippleJoin::equi(|a: &Pair| a.0, |b: &Pair| b.0, |a, b| (a.1, b.1))
}

/// Builds the plan, runs it to completion on the single-threaded batched
/// kernel, and returns (elements/s over both inputs, sink message count).
fn run_variant(variant: Variant, n_bids: u64) -> (f64, usize) {
    let g = QueryGraph::new();
    let a = g.add_source("auctions", VecSource::new(auctions()));
    let b = g.add_source("bids", VecSource::new(bids(n_bids)));
    let joined = match variant {
        Variant::RunNative => g.add_binary("join", join_op(), &a, &b),
        Variant::PerMessage => g.add_binary("join", BinaryElementWise(join_op()), &a, &b),
    };
    let fee = |p: Pair| (p.0, p.1 + p.1 / 50);
    let mapped = match variant {
        Variant::RunNative => g.add_unary("fee", Map::new(fee), &joined),
        Variant::PerMessage => g.add_unary("fee", ElementWise(Map::new(fee)), &joined),
    };
    let agg = || GroupedAggregate::new(|p: &Pair| p.0, MaxAgg(|p: &Pair| p.1));
    let top = match variant {
        Variant::RunNative => g.add_unary("top-price", agg(), &mapped),
        Variant::PerMessage => g.add_unary("top-price", ElementWise(agg()), &mapped),
    };
    let (sink, buf) = CollectSink::new();
    g.add_sink("sink", sink, &top);

    let total = AUCTIONS + n_bids;
    let start = Instant::now();
    g.run_to_completion(256);
    let secs = start.elapsed().as_secs_f64();
    let produced = buf.lock().len();
    assert!(produced > 0, "plan produced no aggregates");
    (total as f64 / secs, produced)
}

fn median(ratios: &mut [f64]) -> f64 {
    ratios.sort_by(f64::total_cmp);
    if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    }
}

/// Runs E17 and prints the table; writes `BENCH_ops_runs.json`.
pub fn e17_ops_runs(quick: bool) {
    let n_bids: u64 = if quick { 64_000 } else { 384_000 };
    let reps = if quick { 6 } else { 16 };

    // Warm up allocator and page cache off the clock.
    run_variant(Variant::RunNative, n_bids.min(8_000));

    // Per E15: back-to-back paired runs in alternating order; the per-rep
    // ratio cancels machine drift, the median damps outliers. The two
    // variants must also agree on the exact sink output count — dispatch
    // granularity is not allowed to change what the plan computes.
    let mut best = [f64::MIN; 2];
    let mut ratios = Vec::with_capacity(reps);
    let mut produced = [0usize; 2];
    for rep in 0..reps {
        let order = if rep % 2 == 0 {
            [Variant::PerMessage, Variant::RunNative]
        } else {
            [Variant::RunNative, Variant::PerMessage]
        };
        let mut thr = [0.0f64; 2];
        for v in order {
            let (t, out) = run_variant(v, n_bids);
            let slot = if v == Variant::PerMessage { 0 } else { 1 };
            thr[slot] = t;
            best[slot] = best[slot].max(t);
            produced[slot] = out;
        }
        assert_eq!(
            produced[0], produced[1],
            "run-native and per-message dispatch must produce the same output"
        );
        ratios.push(thr[1] / thr[0]);
        if std::env::var_os("PIPES_E17_DEBUG").is_some() {
            eprintln!(
                "rep {rep:>2}: per-message {:.3e} run-native {:.3e} (x{:.2})",
                thr[0],
                thr[1],
                thr[1] / thr[0]
            );
        }
    }
    let ratio = median(&mut ratios);

    table(
        &format!(
            "E17 — run-at-a-time algebra, auctions({AUCTIONS}) ⋈ bids({n_bids}, \
             bursts of {BURST}) → map → group-by-category max"
        ),
        &["dispatch", "Melem/s", "vs per-message (median)"],
        &[
            vec!["per-message".into(), f(best[0] / 1e6, 2), "1.00".into()],
            vec!["run-native".into(), f(best[1] / 1e6, 2), f(ratio, 2)],
        ],
    );
    println!(
        "shape check: handing whole drained runs to operators turns per-element \
         hash probes, bucket inserts, and aggregate boundary splits into \
         per-burst work (one lookup per distinct adjacent key, one split per \
         distinct timestamp); the run-native plan sustains >= 1.5x the \
         per-message dispatch throughput on the identical kernel."
    );

    let json = format!(
        "{{\n  \"experiment\": \"ops_runs\",\n  \"auctions\": {AUCTIONS},\n  \
         \"bids\": {n_bids},\n  \"burst\": {BURST},\n  \
         \"categories\": {CATEGORIES},\n  \"quantum\": 256,\n  \
         \"per_message_elem_per_s\": {:.0},\n  \
         \"run_native_elem_per_s\": {:.0},\n  \
         \"run_vs_message_median_ratio\": {ratio:.3}\n}}\n",
        best[0], best[1]
    );
    match std::fs::write("BENCH_ops_runs.json", &json) {
        Ok(()) => println!("wrote BENCH_ops_runs.json"),
        Err(e) => eprintln!("could not write BENCH_ops_runs.json: {e}"),
    }
}
