//! E2 — query-plan construction, persistence and re-instantiation
//! (the functionality behind the plan GUI, Figure 2).
//!
//! The demo constructs plans visually, stores them as XML and regenerates
//! runnable code. Here: CQL → logical plan → textual persistence → parse →
//! physical compilation, with the costs of each stage and a Graphviz
//! rendering of one plan.

use crate::{f, table};
use pipes::nexmark::{self, generator::NexmarkConfig, queries};
use pipes::prelude::*;
use std::time::Instant;

/// Runs E2 and prints the table.
pub fn e2_query_plans(_quick: bool) {
    let mut cat = Catalog::new();
    nexmark::register(
        &mut cat,
        NexmarkConfig {
            max_events: 500,
            ..Default::default()
        },
    );

    let mut rows = Vec::new();
    for (name, sql) in queries::all() {
        let start = Instant::now();
        let plan = pipes::cql::compile_cql(sql, &cat).expect("parses");
        let parse_us = start.elapsed().as_micros();

        let start = Instant::now();
        let text = pipes::optimizer::sexpr::to_string(&plan);
        let ser_us = start.elapsed().as_micros();

        let start = Instant::now();
        let reloaded = pipes::optimizer::sexpr::from_str(&text).expect("round-trips");
        let deser_us = start.elapsed().as_micros();
        assert_eq!(plan, reloaded, "{name} round-trip changed the plan");

        let graph = QueryGraph::new();
        let mut optimizer = Optimizer::new();
        let start = Instant::now();
        let report = optimizer
            .install(&reloaded, &graph, &cat)
            .expect("installs");
        let compile_us = start.elapsed().as_micros();

        rows.push(vec![
            name.to_string(),
            plan.node_count().to_string(),
            report.variants_considered.to_string(),
            text.len().to_string(),
            f(parse_us as f64, 0),
            f(ser_us as f64, 0),
            f(deser_us as f64, 0),
            f(compile_us as f64, 0),
        ]);
    }
    table(
        "E2 — plan construction / persistence / re-instantiation (NEXMark suite)",
        &[
            "query",
            "plan nodes",
            "variants",
            "bytes",
            "parse µs",
            "store µs",
            "load µs",
            "install µs",
        ],
        &rows,
    );

    // One rendered plan, as the GUI would show it.
    let plan = pipes::cql::compile_cql(queries::q7_avg_price_per_category(), &cat).expect("parses");
    println!("\nq7 plan (logical):\n{}", plan.pretty());
    println!("q7 plan (Graphviz):\n{}", plan.render_dot());
}
