//! E18 — sub-linear sliding-window aggregation vs the naive partial scan.
//!
//! The exact temporal count over sliding windows of width w: element `i`
//! is valid on `[i, i+w)`, so every arriving element overlaps w live
//! partials. Two variants run the identical driver
//! (`run_unary_messages`: start-ordered elements, the strongest valid
//! heartbeat after each, close at the end):
//!
//! * **naive** — `AggStrategy::Naive`, the boundary table as originally
//!   shipped: every insert folds its payload into all w covered partials,
//!   O(r·w) for r elements — the throughput cliff this experiment
//!   documents;
//! * **tree** — `AggStrategy::Auto` (the shipped default): the partial-
//!   aggregate tree of `pipes-ops::aggtree` defers combining to the
//!   heartbeat sweep, touching O(1) amortized accumulators per insert,
//!   converting from the naive table once an insert covers the
//!   conversion threshold (so narrow windows keep the naive fast path).
//!
//! Both variants must produce the **byte-identical** sink message
//! sequence — asserted on every rep, heartbeats included. Methodology
//! follows E15: paired back-to-back runs in alternating order per rep,
//! per-rep ratio, median over reps. Acceptance (full run): ≥ 20× at
//! window 1024, no regression at window 16 beyond the paired-median
//! noise bound. Results go to `BENCH_window_agg.json`.

use crate::{f, table};
use pipes::ops::drive::run_unary_messages;
use pipes::prelude::*;
use std::time::Instant;

/// Elements valid on `[i, i+window)`: the exact sliding-window shape the
/// criterion `temporal_aggregate/count_window` series uses.
fn input(n: u64, window: u64) -> Vec<Element<i64>> {
    (0..n)
        .map(|i| {
            Element::new(
                i as i64,
                TimeInterval::new(Timestamp::new(i), Timestamp::new(i + window)),
            )
        })
        .collect()
}

/// Runs one variant over a pre-built input, returning elements/s and the
/// produced message sequence (for the byte-identical check).
fn run_variant(strategy: AggStrategy, input: &[Element<i64>]) -> (f64, Vec<Message<u64>>) {
    let op = ScalarAggregate::with_strategy(CountAgg, strategy);
    let cloned = input.to_vec();
    let start = Instant::now();
    let out = run_unary_messages(op, cloned);
    let secs = start.elapsed().as_secs_f64();
    (input.len() as f64 / secs, out)
}

fn median(ratios: &mut [f64]) -> f64 {
    ratios.sort_by(f64::total_cmp);
    if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    }
}

/// Runs E18 and prints the window-sweep table; writes
/// `BENCH_window_agg.json`.
pub fn e18_window_agg(quick: bool) {
    // (window, elements, reps): larger windows get smaller inputs so the
    // naive baseline finishes in reasonable time; reps stay odd for a
    // clean median.
    let plan: Vec<(u64, u64, usize)> = if quick {
        vec![(16, 4_000, 3), (1024, 4_000, 3)]
    } else {
        vec![
            (16, 20_000, 9),
            (64, 20_000, 9),
            (256, 10_000, 7),
            (1024, 10_000, 7),
            (8192, 3_000, 5),
        ]
    };

    // Warm up allocator and page cache off the clock.
    run_variant(AggStrategy::Auto, &input(2_000, 64));

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    for &(window, n, reps) in &plan {
        let elems = input(n, window);
        let mut best = [f64::MIN; 2]; // [naive, tree]
        let mut ratios = Vec::with_capacity(reps);
        for rep in 0..reps {
            let order = if rep % 2 == 0 {
                [AggStrategy::Naive, AggStrategy::Auto]
            } else {
                [AggStrategy::Auto, AggStrategy::Naive]
            };
            let mut thr = [0.0f64; 2];
            let mut outs: [Option<Vec<Message<u64>>>; 2] = [None, None];
            for v in order {
                let (t, out) = run_variant(v, &elems);
                let slot = usize::from(v != AggStrategy::Naive);
                thr[slot] = t;
                best[slot] = best[slot].max(t);
                outs[slot] = Some(out);
            }
            // Byte-identical sink output, heartbeats included, every rep:
            // the state layout is not allowed to change what the operator
            // computes or when it emits it.
            assert_eq!(
                outs[0], outs[1],
                "naive and tree layouts diverged at window {window}"
            );
            ratios.push(thr[1] / thr[0]);
            if std::env::var_os("PIPES_E18_DEBUG").is_some() {
                eprintln!(
                    "w={window:>5} rep {rep}: naive {:.3e} tree {:.3e} (x{:.2})",
                    thr[0],
                    thr[1],
                    thr[1] / thr[0]
                );
            }
        }
        let ratio = median(&mut ratios);
        rows.push(vec![
            window.to_string(),
            n.to_string(),
            f(best[0] / 1e3, 1),
            f(best[1] / 1e3, 1),
            f(ratio, 2),
        ]);
        json_rows.push(format!(
            "    {{\"window\": {window}, \"elements\": {n}, \
             \"naive_elem_per_s\": {:.0}, \"tree_elem_per_s\": {:.0}, \
             \"tree_vs_naive_median_ratio\": {ratio:.3}}}",
            best[0], best[1]
        ));
    }

    table(
        "E18 — sliding-window count, partial-aggregate tree vs naive scan \
         (exact temporal aggregation, per-element heartbeats)",
        &[
            "window",
            "elements",
            "naive kelem/s",
            "tree kelem/s",
            "tree/naive (median)",
        ],
        &rows,
    );
    println!(
        "shape check: the naive boundary table folds every element into all w \
         covered partials (O(r*w) — the cliff from 2.75 Melem/s at w=16 to \
         31.6 kelem/s at w=1024); the tree keeps the identical boundary index \
         but defers combining to the heartbeat sweep, touching O(1) amortized \
         accumulators per insert, so throughput stays flat as w grows. Bar \
         (full run): >= 20x at window 1024, parity at window 16 (Auto stays \
         on the naive fast path below the conversion threshold)."
    );

    let json = format!(
        "{{\n  \"experiment\": \"window_agg\",\n  \"aggregate\": \"count\",\n  \
         \"quick\": {quick},\n  \"windows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_window_agg.json", &json) {
        Ok(()) => println!("wrote BENCH_window_agg.json"),
        Err(e) => eprintln!("could not write BENCH_window_agg.json: {e}"),
    }
}
