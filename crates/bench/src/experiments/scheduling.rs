//! E5 — scheduler comparison within the uniform framework.
//!
//! Paper claim (§Scheduler / §Algorithmic Testbed): the 3-layer framework
//! can express and compare the recent scheduling techniques. Expected
//! shape: queue-aware strategies (Chain, greedy, FIFO) keep queue memory
//! small on bursty input, while work-oblivious ones (round-robin, random)
//! let queues grow by orders of magnitude; Chain targets minimal memory.

use crate::{f, ms, table};
use pipes::prelude::*;

/// Bursty source (dense bursts, long gaps) feeding two queries of
/// different selectivity — the canonical Chain workload.
fn build(n: u64) -> QueryGraph {
    let mut t = 0u64;
    let elems: Vec<Element<(u64, u64)>> = (0..n)
        .map(|i| {
            t += if (i / 128) % 2 == 0 { 1 } else { 60 };
            Element::at((i * 2654435761 % 97, i), Timestamp::new(t))
        })
        .collect();
    let g = QueryGraph::new();
    let src = g.add_source("bursty", VecSource::new(elems));

    // Query A: highly selective filter, then window + count.
    let fa = g.add_unary(
        "sel-filter",
        Filter::new(|(k, _): &(u64, u64)| *k < 5),
        &src,
    );
    let wa = g.add_unary("win-a", TimeWindow::new(Duration::from_ticks(400)), &fa);
    let aa = g.add_unary("count-a", ScalarAggregate::new(CountAgg), &wa);
    let (sa, _) = CollectSink::new();
    g.add_sink("sink-a", sa, &aa);

    // Query B: pass-through grouped max (expensive, unselective).
    let wb = g.add_unary("win-b", TimeWindow::new(Duration::from_ticks(150)), &src);
    let gb = g.add_unary(
        "max-b",
        GroupedAggregate::new(
            |(k, _): &(u64, u64)| *k % 8,
            MaxAgg(|(_, v): &(u64, u64)| *v),
        ),
        &wb,
    );
    let (sb, _) = CollectSink::new();
    g.add_sink("sink-b", sb, &gb);
    g
}

/// Runs E5 and prints the table.
pub fn e5_scheduling(quick: bool) {
    let n: u64 = if quick { 20_000 } else { 120_000 };
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(ChainStrategy::new(64)),
        Box::new(FifoStrategy),
        Box::new(GreedyStrategy),
        Box::new(RateBasedStrategy),
        Box::new(RoundRobinStrategy::new()),
        Box::new(RandomStrategy::new(42)),
    ];
    let mut rows = Vec::new();
    for mut s in strategies {
        let g = build(n);
        let report = SingleThreadExecutor::new()
            .with_quantum(32)
            .with_sample_every(4)
            .run(&g, s.as_mut());
        assert!(g.all_finished(), "{} stalled", report.strategy);
        rows.push(vec![
            report.strategy.clone(),
            report.quanta.to_string(),
            report.peak_queue.to_string(),
            f(report.avg_queue, 1),
            report.peak_state.to_string(),
            ms(report.wall),
            f(report.throughput() / 1000.0, 0),
        ]);
    }
    table(
        &format!("E5 — scheduling strategies, bursty 2-query graph, {n} elements"),
        &[
            "strategy",
            "quanta",
            "peak queue",
            "avg queue",
            "peak state",
            "wall ms",
            "kelem/s",
        ],
        &rows,
    );
    println!(
        "shape check: chain/fifo/greedy bound queue memory on bursts; \
         round-robin and random let queues grow by orders of magnitude."
    );
}
