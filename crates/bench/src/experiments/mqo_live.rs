//! E20 — hot topology: queries spliced into a *running* work-stealing
//! executor.
//!
//! E8 showed the multi-query optimizer sharing subplans when all queries
//! are installed up front. This experiment exercises the dynamic half of
//! the story: a fleet of NEXMark-style bid queries (shared scan, window
//! and filter prefix, a rotating set of private projections) registers
//! incrementally against a graph the work-stealing executor is already
//! draining. Every install bumps the graph's topology epoch; the leader
//! re-runs fusion analysis incrementally and splices the new chain into
//! the live plan — the executor never stops or restarts.
//!
//! Measured, against the bars from the roadmap:
//! * shared vs isolated node count — the live-shared graph must need
//!   ≥5× fewer non-sink nodes than one pipeline per query;
//! * steady-state throughput — the live-spliced run must not fall more
//!   than 20% below an identical run with every query pre-installed
//!   (in practice it lands at or above it: the replans re-partition with
//!   measured costs where the static plan only had priors);
//! * splice latency — install() returning to the first tuple arriving at
//!   the new query's sink, sampled across the install stream;
//! * peak state/queue memory from the executor reports, live vs
//!   pre-installed.
//!
//! Results are written to `BENCH_mqo_live.json`.

use crate::{f, table};
use pipes::nexmark::{self, generator::NexmarkConfig};
use pipes::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker threads draining the live graph.
const THREADS: usize = 4;
/// Distinct projection bodies the query fleet rotates through — every
/// `DISTINCT`th query is textually identical and shares even its
/// projection node; the rest share the scan/window/filter prefix.
const DISTINCT: usize = 50;

fn catalog(events: u64) -> Catalog {
    let mut cat = Catalog::new();
    nexmark::register(
        &mut cat,
        NexmarkConfig {
            max_events: events,
            mean_inter_event_ms: 250.0,
            ..Default::default()
        },
    );
    cat
}

fn queries(n: usize, distinct: usize) -> Vec<LogicalPlan> {
    (0..n)
        .map(|i| {
            pipes::cql::compile_cql(
                &format!(
                    "SELECT auction, price * {} AS scaled \
                     FROM bid [RANGE 2 MINUTES] WHERE price > 1000",
                    (i % distinct) + 1
                ),
                &catalog(10),
            )
            .expect("query parses")
        })
        .collect()
}

/// Installs every plan up front and drains the graph: the static
/// baseline the live-spliced run is held against.
fn run_preinstalled(plans: &[LogicalPlan], events: u64) -> (ExecutionReport, usize) {
    let cat = catalog(events);
    let graph = Arc::new(QueryGraph::new());
    let mut opt = Optimizer::new();
    for p in plans {
        let r = opt.install(p, &graph, &cat).expect("installs");
        let (sink, _) = CollectSink::new();
        graph.add_sink("s", sink, &r.handle);
    }
    let shared_nodes = graph.node_ids().count() - plans.len(); // minus sinks
    let reports = WorkStealingExecutor::new(THREADS).run(&graph, || Box::new(FifoStrategy));
    assert!(graph.all_finished(), "preinstalled run did not drain");
    (ExecutionReport::merge(&reports), shared_nodes)
}

/// Builds one isolated pipeline per query (fresh optimizer = empty
/// sharing index) and counts the nodes — the no-sharing strawman.
fn isolated_nodes(plans: &[LogicalPlan]) -> usize {
    let cat = catalog(10);
    let graph = QueryGraph::new();
    let mut total = 0;
    for p in plans {
        let mut fresh = Optimizer::new();
        let r = fresh.install(p, &graph, &cat).expect("installs");
        total += r.created;
    }
    total
}

/// Runs E20 and prints the table; writes `BENCH_mqo_live.json`.
pub fn e20_mqo_live(quick: bool) {
    let n: usize = if quick { 100 } else { 1_000 };
    let distinct = if quick { 10 } else { DISTINCT };
    // Sized so the drain far outlasts the install phase (~100 ms): total
    // work scales with events × sinks, so the quick config (10× fewer
    // sinks) needs more events than the full one to keep the executor busy
    // while queries splice in.
    let events: u64 = if quick { 30_000 } else { 60_000 };
    let plans = queries(n, distinct);

    let solo_nodes = isolated_nodes(&plans);
    let (pre, shared_nodes) = run_preinstalled(&plans, events);
    let tp_pre = pre.consumed as f64 / pre.wall.as_secs_f64();

    // The live run: one query installed, the executor started, and the
    // remaining n-1 queries spliced in while it drains. Splice latency
    // (install returning → first tuple at the new sink) is sampled every
    // `sample_every`th install.
    let cat = catalog(events);
    let graph = Arc::new(QueryGraph::new());
    let mut opt = Optimizer::new();
    let r0 = opt.install(&plans[0], &graph, &cat).expect("installs");
    let (sink0, _) = CollectSink::new();
    graph.add_sink("s", sink0, &r0.handle);
    let epoch_at_start = graph.topology_epoch();

    let exec_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handle = std::thread::spawn({
        let graph = Arc::clone(&graph);
        let exec_done = Arc::clone(&exec_done);
        move || {
            let reports = WorkStealingExecutor::new(THREADS).run(&graph, || Box::new(FifoStrategy));
            exec_done.store(true, std::sync::atomic::Ordering::Release);
            reports
        }
    });

    // Install the remaining queries back-to-back — no waits in the loop, so
    // the install phase stays a sliver of the run and the live run does the
    // same total work as the pre-installed one (comparable whole-run
    // throughput). First-result latency for sampled installs is watched
    // from short-lived side threads instead.
    let sample_every = (n / 16).max(1);
    let mut watchers = Vec::new();
    let install_start = Instant::now();
    for (i, p) in plans.iter().enumerate().skip(1) {
        let t0 = Instant::now();
        let r = opt.install(p, &graph, &cat).expect("installs");
        let (sink, buf) = CollectSink::new();
        graph.add_sink("s", sink, &r.handle);
        if i % sample_every == 0 {
            let exec_done = Arc::clone(&exec_done);
            watchers.push(std::thread::spawn(move || -> Option<f64> {
                let deadline = t0 + Duration::from_secs(10);
                loop {
                    if !buf.lock().is_empty() {
                        return Some(t0.elapsed().as_secs_f64() * 1e6);
                    }
                    // Sources drained before this splice saw data (or the
                    // watch timed out): skip the sample.
                    if exec_done.load(std::sync::atomic::Ordering::Acquire)
                        || Instant::now() > deadline
                    {
                        return None;
                    }
                    std::thread::yield_now();
                }
            }));
        }
    }
    let install_wall = install_start.elapsed();
    let epoch_after_installs = graph.topology_epoch();
    let mut splice_us: Vec<f64> = watchers
        .into_iter()
        .filter_map(|w| w.join().expect("watcher thread"))
        .collect();

    let reports = handle.join().expect("executor thread");
    // Queries spliced after the sources drained still hold a pending Close
    // nobody steps once the executor returns; finish them sequentially.
    // They carry no tuples, so live throughput is unaffected.
    let mut rounds = 0;
    while !graph.all_finished() {
        for id in graph.node_ids() {
            if !graph.is_finished(id) {
                graph.step_node(id, 1024);
            }
        }
        rounds += 1;
        assert!(rounds < 10_000, "live run did not drain");
    }
    let live = ExecutionReport::merge(&reports);
    let tp_live = live.consumed as f64 / live.wall.as_secs_f64();

    let node_ratio = solo_nodes as f64 / shared_nodes as f64;
    let tp_ratio = tp_live / tp_pre;
    splice_us.sort_by(f64::total_cmp);
    let pct = |q: f64| -> f64 {
        if splice_us.is_empty() {
            return 0.0;
        }
        splice_us[((splice_us.len() - 1) as f64 * q) as usize]
    };
    let (lat_p50, lat_p95, lat_max) = (pct(0.5), pct(0.95), pct(1.0));

    table(
        &format!(
            "E20 — hot topology: {n} bid queries ({distinct} distinct projections) \
             spliced into a running {THREADS}-thread work-stealing executor, \
             {events} events"
        ),
        &[
            "variant",
            "nodes",
            "kmsg/s",
            "peak-state",
            "peak-queue",
            "steals",
        ],
        &[
            vec![
                "isolated (constructed)".into(),
                solo_nodes.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
            vec![
                "shared, pre-installed".into(),
                shared_nodes.to_string(),
                f(tp_pre / 1e3, 0),
                pre.peak_state.to_string(),
                pre.peak_queue.to_string(),
                pre.steals.to_string(),
            ],
            vec![
                "shared, live-spliced".into(),
                shared_nodes.to_string(),
                f(tp_live / 1e3, 0),
                live.peak_state.to_string(),
                live.peak_queue.to_string(),
                live.steals.to_string(),
            ],
        ],
    );
    println!(
        "node sharing: {}× fewer nodes than isolated (bar: ≥5×) — {}",
        f(node_ratio, 1),
        if node_ratio >= 5.0 { "PASS" } else { "FAIL" }
    );
    println!(
        "live throughput: {}% of pre-installed (bar: ≥80%, splicing must \
         not degrade the executor) — {}",
        f(tp_ratio * 100.0, 1),
        if tp_ratio >= 0.80 { "PASS" } else { "FAIL" }
    );
    println!(
        "splice latency (install → first result): p50 {} µs, p95 {} µs, \
         max {} µs over {} samples; {} installs in {} ms against the live \
         executor (topology epoch {} → {}, executor never stopped)",
        f(lat_p50, 0),
        f(lat_p95, 0),
        f(lat_max, 0),
        splice_us.len(),
        n - 1,
        install_wall.as_millis(),
        epoch_at_start,
        epoch_after_installs,
    );
    println!(
        "shape check: incremental re-planning keeps old virtual-node groups \
         and their in-flight state; each spliced query costs one replan at a \
         quantum boundary, not an executor restart."
    );

    let json = format!(
        "{{\n  \"experiment\": \"mqo_live\",\n  \"queries\": {n},\n  \
         \"distinct_projections\": {distinct},\n  \"events\": {events},\n  \
         \"threads\": {THREADS},\n  \
         \"isolated_nodes\": {solo_nodes},\n  \
         \"shared_nodes\": {shared_nodes},\n  \
         \"node_ratio\": {node_ratio:.2},\n  \"node_ratio_bar\": 5,\n  \
         \"preinstalled_msg_per_s\": {tp_pre:.0},\n  \
         \"live_msg_per_s\": {tp_live:.0},\n  \
         \"throughput_ratio\": {tp_ratio:.3},\n  \"throughput_bar_min_ratio\": 0.8,\n  \
         \"splice_latency_us_p50\": {lat_p50:.0},\n  \
         \"splice_latency_us_p95\": {lat_p95:.0},\n  \
         \"splice_latency_us_max\": {lat_max:.0},\n  \
         \"splice_latency_samples\": {},\n  \
         \"install_wall_ms\": {},\n  \
         \"topology_epoch_final\": {epoch_after_installs},\n  \
         \"peak_state_pre\": {},\n  \"peak_state_live\": {},\n  \
         \"peak_queue_pre\": {},\n  \"peak_queue_live\": {}\n}}\n",
        splice_us.len(),
        install_wall.as_millis(),
        pre.peak_state,
        live.peak_state,
        pre.peak_queue,
        live.peak_queue,
    );
    match std::fs::write("BENCH_mqo_live.json", &json) {
        Ok(()) => println!("wrote BENCH_mqo_live.json"),
        Err(e) => eprintln!("could not write BENCH_mqo_live.json: {e}"),
    }
}
