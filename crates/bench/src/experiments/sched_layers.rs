//! E16 — the three scheduler layers on a skewed multi-chain workload.
//!
//! One hot chain (source → `K` maps → sink) carries most of the stream
//! while several cold chains idle along beside it. Three executors run the
//! identical graph on two worker threads:
//!
//! * **static round-robin** — the former default split
//!   ([`MultiThreadExecutor::run_static_round_robin`]): node ids dealt over
//!   threads, so every edge of every chain crosses threads and each hop
//!   pays cross-thread queue locking plus wakeup latency;
//! * **topology** — [`MultiThreadExecutor::run`]: layer-1 virtual-node
//!   groups from [`ExecutionPlan`], chains fused and placed whole, edges
//!   thread-local;
//! * **topology + stealing** — [`WorkStealingExecutor`]: the same plan with
//!   the dynamic layer 3 on top (group ownership, idle-steal, targeted
//!   wakeups, stats-driven rebalance).
//!
//! Methodology follows E15: every rep runs the paired variants back to
//! back in alternating order, the per-rep throughput ratio cancels machine
//! drift, and the median over all reps damps outliers. Acceptance:
//! topology + stealing reaches ≥ 1.5× the static round-robin throughput.
//!
//! Results are written to `BENCH_sched_layers.json`.

use crate::{f, table};
use pipes::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Maps per hot chain; cold chains get a single map.
const K: usize = 6;
/// Cold chains riding along beside the hot one.
const COLD_CHAINS: usize = 3;
/// Worker threads for the headline comparison (the sweep below also runs
/// every other count up to the machine's core count).
const THREADS: usize = 2;

fn input(n: u64) -> Vec<Element<i64>> {
    (0..n)
        .map(|i| Element::at(i as i64, Timestamp::new(i)))
        .collect()
}

/// Builds the skewed graph: one hot `K`-map chain of `hot_n` elements plus
/// `COLD_CHAINS` single-map chains of `cold_n` elements each. Returns the
/// graph and the per-sink buffers (hot sink first).
fn skewed_graph(
    hot_n: u64,
    cold_n: u64,
) -> (Arc<QueryGraph>, Vec<pipes::graph::io::Collected<i64>>) {
    let g = QueryGraph::new();
    let mut bufs = Vec::new();
    let src = g.add_source("hot-src", VecSource::new(input(hot_n)));
    let mut cur = g.add_unary("hot-op0", Map::new(|v: i64| v + 1), &src);
    for i in 1..K {
        cur = g.add_unary(&format!("hot-op{i}"), Map::new(|v: i64| v ^ 7), &cur);
    }
    let (sink, buf) = CollectSink::new();
    g.add_sink("hot-sink", sink, &cur);
    bufs.push(buf);
    for c in 0..COLD_CHAINS {
        let src = g.add_source(&format!("cold-src{c}"), VecSource::new(input(cold_n)));
        let op = g.add_unary(&format!("cold-op{c}"), Map::new(|v: i64| v - 1), &src);
        let (sink, buf) = CollectSink::new();
        g.add_sink(&format!("cold-sink{c}"), sink, &op);
        bufs.push(buf);
    }
    (Arc::new(g), bufs)
}

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    StaticRoundRobin,
    Topology,
    Stealing,
}

/// Runs one variant on a fresh graph and returns elements/s over the whole
/// stream (hot + cold).
fn run_variant(variant: Variant, hot_n: u64, cold_n: u64, threads: usize) -> f64 {
    let (g, bufs) = skewed_graph(hot_n, cold_n);
    let total = hot_n + COLD_CHAINS as u64 * cold_n;
    let start = Instant::now();
    match variant {
        Variant::StaticRoundRobin => {
            MultiThreadExecutor::new(threads)
                .run_static_round_robin(&g, || Box::new(RoundRobinStrategy::new()));
        }
        Variant::Topology => {
            MultiThreadExecutor::new(threads).run(&g, || Box::new(RoundRobinStrategy::new()));
        }
        Variant::Stealing => {
            WorkStealingExecutor::new(threads).run(&g, || Box::new(RoundRobinStrategy::new()));
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let delivered: u64 = bufs.iter().map(|b| b.lock().len() as u64).sum();
    assert_eq!(delivered, total, "stream not fully delivered");
    assert!(g.all_finished());
    total as f64 / secs
}

fn median(ratios: &mut [f64]) -> f64 {
    ratios.sort_by(f64::total_cmp);
    if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    }
}

/// Runs E16 and prints the table; writes `BENCH_sched_layers.json`.
pub fn e16_sched_layers(quick: bool) {
    let hot_n: u64 = if quick { 60_000 } else { 200_000 };
    let cold_n: u64 = hot_n / 10;
    let reps = if quick { 6 } else { 24 };

    // Warm up allocator and page cache off the clock.
    run_variant(
        Variant::Topology,
        hot_n.min(20_000),
        cold_n.min(2_000),
        THREADS,
    );

    // Per E15: alternating-order back-to-back runs per rep; the per-rep
    // ratio cancels whatever the machine is doing at that moment, and the
    // median over reps damps single-rep outliers. Best-of throughputs are
    // reported alongside for scale.
    let mut best = [f64::MIN; 3];
    let mut steal_ratios = Vec::with_capacity(reps);
    let mut topo_ratios = Vec::with_capacity(reps);
    for rep in 0..reps {
        let order = if rep % 2 == 0 {
            [
                Variant::StaticRoundRobin,
                Variant::Topology,
                Variant::Stealing,
            ]
        } else {
            [
                Variant::Stealing,
                Variant::Topology,
                Variant::StaticRoundRobin,
            ]
        };
        let mut thr = [0.0f64; 3];
        for v in order {
            let t = run_variant(v, hot_n, cold_n, THREADS);
            let slot = match v {
                Variant::StaticRoundRobin => 0,
                Variant::Topology => 1,
                Variant::Stealing => 2,
            };
            thr[slot] = t;
            best[slot] = best[slot].max(t);
        }
        topo_ratios.push(thr[1] / thr[0]);
        steal_ratios.push(thr[2] / thr[0]);
        if std::env::var_os("PIPES_E16_DEBUG").is_some() {
            eprintln!(
                "rep {rep:>2}: static {:.3e} topo {:.3e} steal {:.3e} (x{:.2}, x{:.2})",
                thr[0],
                thr[1],
                thr[2],
                thr[1] / thr[0],
                thr[2] / thr[0]
            );
        }
    }
    let topo_ratio = median(&mut topo_ratios);
    let steal_ratio = median(&mut steal_ratios);

    table(
        &format!(
            "E16 — scheduler layers, hot {K}-op chain ({hot_n} elems) + \
             {COLD_CHAINS} cold chains ({cold_n} elems each), {THREADS} threads"
        ),
        &["executor", "Melem/s", "vs static (median)"],
        &[
            vec![
                "static round-robin".into(),
                f(best[0] / 1e6, 2),
                "1.00".into(),
            ],
            vec!["topology".into(), f(best[1] / 1e6, 2), f(topo_ratio, 2)],
            vec![
                "topology + stealing".into(),
                f(best[2] / 1e6, 2),
                f(steal_ratio, 2),
            ],
        ],
    );
    println!(
        "shape check: fusing chains into thread-local virtual-node groups \
         removes the cross-thread hop every edge pays under the round-robin \
         split; the dynamic layer (stealing + targeted wakeups) holds that \
         gain at >= 1.5x while also absorbing runtime skew."
    );

    // Thread sweep 1 → every available core: stealing vs static at each
    // count (fewer reps than the headline pair — the sweep is a shape, not
    // an acceptance bar). On a single-core host this still exercises the
    // 1- and 2-thread points.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sweep_reps = (reps / 3).max(2);
    let mut sweep_rows = Vec::new();
    let mut sweep_threads: Vec<usize> = (1..=cores).collect();
    if !sweep_threads.contains(&THREADS) {
        sweep_threads.push(THREADS);
    }
    for t in sweep_threads {
        let mut ratios = Vec::with_capacity(sweep_reps);
        let mut best_t = [f64::MIN; 2];
        for rep in 0..sweep_reps {
            let order = if rep % 2 == 0 {
                [Variant::StaticRoundRobin, Variant::Stealing]
            } else {
                [Variant::Stealing, Variant::StaticRoundRobin]
            };
            let mut thr = [0.0f64; 2];
            for v in order {
                let x = run_variant(v, hot_n, cold_n, t);
                let slot = if v == Variant::StaticRoundRobin { 0 } else { 1 };
                thr[slot] = x;
                best_t[slot] = best_t[slot].max(x);
            }
            ratios.push(thr[1] / thr[0]);
        }
        let r = median(&mut ratios);
        println!(
            "  sweep {t} thread(s): static {:.2} Melem/s, stealing {:.2} Melem/s (x{r:.2})",
            best_t[0] / 1e6,
            best_t[1] / 1e6
        );
        sweep_rows.push(format!(
            "    {{\"threads\": {t}, \"static_elem_per_s\": {:.0}, \
             \"stealing_elem_per_s\": {:.0}, \
             \"stealing_vs_static_median_ratio\": {r:.3}}}",
            best_t[0], best_t[1]
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"sched_layers\",\n  \"threads\": {THREADS},\n  \
         \"cores\": {cores},\n  \
         \"hot_chain_ops\": {K},\n  \"hot_elements\": {hot_n},\n  \
         \"cold_chains\": {COLD_CHAINS},\n  \"cold_elements\": {cold_n},\n  \
         \"static_elem_per_s\": {:.0},\n  \
         \"topology_elem_per_s\": {:.0},\n  \
         \"stealing_elem_per_s\": {:.0},\n  \
         \"topology_vs_static_median_ratio\": {topo_ratio:.3},\n  \
         \"stealing_vs_static_median_ratio\": {steal_ratio:.3},\n  \
         \"thread_sweep\": [\n{}\n  ]\n}}\n",
        best[0],
        best[1],
        best[2],
        sweep_rows.join(",\n")
    );
    match std::fs::write("BENCH_sched_layers.json", &json) {
        Ok(()) => println!("wrote BENCH_sched_layers.json"),
        Err(e) => eprintln!("could not write BENCH_sched_layers.json: {e}"),
    }
}
