//! E13 (ablation) — design choices called out in DESIGN.md.
//!
//! (a) **Scheduling quantum / heartbeat batching.** Sources punctuate once
//! per produced batch, so the scheduler's quantum directly sets the
//! heartbeat rate that stateful operators must process. Sweep the quantum
//! and measure throughput and result granularity.
//!
//! (b) **Sharing-aware cost model.** Rerun the E8 16-query install with the
//! sharing discount disabled in variant selection (every variant priced as
//! if nothing ran) and compare node counts — isolating how much of the MQO
//! win comes from *pricing* sharing rather than merely deduplicating
//! identical subplans.

use crate::{f, table};
use pipes::prelude::*;
use std::time::Instant;

fn aggregate_pipeline(n: u64) -> (QueryGraph, pipes::graph::io::Collected<u64>) {
    let elems: Vec<Element<i64>> = (0..n)
        .map(|i| Element::at(i as i64, Timestamp::new(i)))
        .collect();
    let g = QueryGraph::new();
    let src = g.add_source("src", VecSource::new(elems));
    let w = g.add_unary("window", TimeWindow::new(Duration::from_ticks(64)), &src);
    let a = g.add_unary("count", ScalarAggregate::new(CountAgg), &w);
    let (sink, buf) = CollectSink::new();
    g.add_sink("sink", sink, &a);
    (g, buf)
}

/// Runs E13 and prints the tables.
pub fn e13_ablation(quick: bool) {
    let n: u64 = if quick { 40_000 } else { 200_000 };

    // (a) quantum sweep -----------------------------------------------------
    let mut rows = Vec::new();
    for quantum in [1usize, 8, 64, 512] {
        let (g, buf) = aggregate_pipeline(n);
        let mut strat = FifoStrategy;
        let start = Instant::now();
        SingleThreadExecutor::new()
            .with_quantum(quantum)
            .run(&g, &mut strat);
        let secs = start.elapsed().as_secs_f64();
        let outputs = buf.lock().len();
        rows.push(vec![
            quantum.to_string(),
            f(n as f64 / secs / 1000.0, 0),
            outputs.to_string(),
        ]);
    }
    table(
        &format!(
            "E13a — scheduling quantum (= heartbeat batch size), {n} elements through window+count"
        ),
        &["quantum", "kelem/s", "agg outputs"],
        &rows,
    );
    println!(
        "shape check: results are identical across quanta (snapshot \
         semantics is schedule-independent); throughput rises ~3x from \
         quantum 1 to the sweet spot around 64 as punctuation flushes \
         amortize, then dips again when oversized batches let queues bloat. \
         This is the batching knob DESIGN.md §6b describes."
    );

    // (b) sharing-aware costing ablation -------------------------------------
    // Install the E8 workload twice: once normally, once forcing variant
    // selection to ignore what is already running (we emulate that by
    // pricing each query against an empty sunk set: the first enumerated
    // minimal-cost variant is chosen regardless of the running graph; the
    // compiler still deduplicates *identical* subplans).
    use pipes::nexmark::{self, generator::NexmarkConfig};
    use std::collections::{HashMap, HashSet};

    let make_catalog = || {
        let mut cat = Catalog::new();
        nexmark::register(
            &mut cat,
            NexmarkConfig {
                max_events: 10,
                ..Default::default()
            },
        );
        cat
    };
    // A bare windowed scan plus queries with *different* filters over it:
    // only a sharing-aware cost model keeps the filters above the running
    // window — priced standalone, the pushed-down variant always looks
    // cheaper and destroys the shareable prefix.
    let mut sqls = vec!["SELECT * FROM bid [RANGE 2 MINUTES]".to_string()];
    for i in 0..16 {
        sqls.push(format!(
            "SELECT * FROM bid [RANGE 2 MINUTES] WHERE price > {}",
            1000 + i * 500
        ));
    }
    let queries: Vec<LogicalPlan> = sqls
        .iter()
        .map(|sql| pipes::cql::compile_cql(sql, &make_catalog()).expect("parses"))
        .collect();

    // Normal: sharing-aware optimizer.
    let cat = make_catalog();
    let g1 = QueryGraph::new();
    let mut opt = Optimizer::new();
    for q in &queries {
        opt.install(q, &g1, &cat).expect("installs");
    }

    // Ablated: choose the variant with an empty sunk set, then compile with
    // dedup only.
    let g2 = QueryGraph::new();
    let mut installed: HashMap<String, pipes::graph::StreamHandle<Tuple>> = HashMap::new();
    for q in &queries {
        let variants = pipes::optimizer::rules::enumerate(q, &cat);
        let chosen = variants
            .into_iter()
            .min_by(|a, b| {
                let ca = pipes::optimizer::cost::estimate_with_sunk(a, &cat, &HashSet::new()).cost;
                let cb = pipes::optimizer::cost::estimate_with_sunk(b, &cat, &HashSet::new()).cost;
                ca.partial_cmp(&cb).expect("finite costs")
            })
            .expect("at least one variant");
        let mut ctx = pipes::optimizer::CompileContext::new(&g2, &cat, &mut installed);
        pipes::optimizer::compile(&chosen, &mut ctx).expect("compiles");
    }

    table(
        "E13b — sharing-aware variant pricing vs dedup-only (scan + 16 filters)",
        &["configuration", "graph nodes"],
        &[
            vec!["sharing-aware (full MQO)".into(), g1.len().to_string()],
            vec!["dedup-only (ablated)".into(), g2.len().to_string()],
        ],
    );
    println!(
        "shape check: pricing sunk subplans as free steers variant choice \
         toward the running graph; dedup alone still helps but chooses \
         pushed-down variants that cannot share the windowed scan."
    );
}
