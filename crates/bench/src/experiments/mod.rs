//! The experiments E1–E21 (see `DESIGN.md` for the paper mapping).

mod ablation;
mod apps;
mod batching;
mod fusion;
mod join;
mod keyed_parallel;
mod memory;
mod meta_overhead;
mod monitoring;
mod mqo;
mod mqo_live;
mod ops_runs;
mod plans;
mod rate;
mod reuse;
mod sched_layers;
mod scheduling;
mod trace_overhead;
mod window_agg;

/// Runs one experiment by id (`e1`..`e21`) or `all`. `quick` shrinks the
/// workloads so a full pass finishes in seconds (used by `cargo bench`).
pub fn run(which: &str, quick: bool) {
    let all = which.eq_ignore_ascii_case("all");
    let want = |id: &str| all || which.eq_ignore_ascii_case(id);
    if want("e1") {
        apps::e1_architecture(quick);
    }
    if want("e2") {
        plans::e2_query_plans(quick);
    }
    if want("e3") {
        monitoring::e3_monitoring(quick);
    }
    if want("e4") {
        fusion::e4_fusion(quick);
    }
    if want("e5") {
        scheduling::e5_scheduling(quick);
    }
    if want("e6") {
        join::e6_join_framework(quick);
    }
    if want("e7") {
        memory::e7_memory_manager(quick);
    }
    if want("e8") {
        mqo::e8_multi_query(quick);
    }
    if want("e9") {
        rate::e9_rate_reduction(quick);
    }
    if want("e10") {
        apps::e10_traffic(quick);
    }
    if want("e11") {
        apps::e11_nexmark(quick);
    }
    if want("e12") {
        reuse::e12_code_reuse(quick);
    }
    if want("e13") {
        ablation::e13_ablation(quick);
    }
    if want("e14") {
        batching::e14_batching(quick);
    }
    if want("e15") {
        trace_overhead::e15_trace_overhead(quick);
    }
    if want("e16") {
        sched_layers::e16_sched_layers(quick);
    }
    if want("e17") {
        ops_runs::e17_ops_runs(quick);
    }
    if want("e18") {
        window_agg::e18_window_agg(quick);
    }
    if want("e19") {
        meta_overhead::e19_meta_overhead(quick);
    }
    if want("e20") {
        mqo_live::e20_mqo_live(quick);
    }
    if want("e21") {
        keyed_parallel::e21_keyed_parallel(quick);
    }
}
