//! E21 — keyed data parallelism: partition-by-key shuffle edges on the
//! E17 NEXMark plan.
//!
//! The same auctions ⋈ bids → fee → grouped-max pipeline as E17, built two
//! ways:
//!
//! * **single** — one `RippleJoin` and one `GroupedAggregate` node, the
//!   E17 run-native plan verbatim;
//! * **keyed** — the join behind a two-sided shuffle edge
//!   ([`QueryGraph::add_keyed_binary`], both inputs hash-partitioned by
//!   auction id) and the grouped-max behind a one-sided shuffle edge
//!   ([`QueryGraph::add_keyed_unary`], partitioned by category), with as
//!   many instances of each as worker threads.
//!
//! Two claims are measured:
//!
//! 1. **Byte identity** — on the deterministic single-threaded kernel the
//!    keyed plan's sink output must equal the single plan's exactly (same
//!    payloads, same intervals, same order). This is asserted here for
//!    several instance counts, on top of the proptest pins in
//!    `crates/ops/tests/keyed_parallel_props.rs`.
//! 2. **Scaling** — under the work-stealing executor, threads swept from
//!    1 to every available core, the keyed plan's throughput relative to
//!    the single plan at the same thread count. The single plan cannot use
//!    extra cores on the hot operators (a stateful node is one graph node,
//!    so at most one thread can run it); the keyed plan's instances are
//!    independently stealable.
//!
//! Methodology follows E15: paired back-to-back runs in alternating order
//! per rep, per-rep ratio, median over reps. Results are written to
//! `BENCH_keyed_parallel.json`, including the measured core count — on a
//! single-core host the sweep collapses to the 1-thread point, which
//! measures pure shuffle-edge overhead rather than scaling.

use crate::{f, table};
use pipes::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Bids per burst (one auction, one timestamp — NEXMark-style flurries).
const BURST: u64 = 16;
/// Distinct auctions (the join's key domain).
const AUCTIONS: u64 = 512;
/// Aggregation categories.
const CATEGORIES: i64 = 8;

/// Payloads are `(auction_id, x)` pairs: `x` is the category on the
/// auctions stream and the price on the bids stream.
type Pair = (i64, i64);

fn auctions() -> Vec<Element<Pair>> {
    let horizon = Timestamp::new(u64::MAX / 2);
    (0..AUCTIONS)
        .map(|id| {
            Element::new(
                (id as i64, id as i64 % CATEGORIES),
                TimeInterval::new(Timestamp::ZERO, horizon),
            )
        })
        .collect()
}

fn bids(n: u64) -> Vec<Element<Pair>> {
    (0..n)
        .map(|i| {
            let burst = i / BURST;
            let auction = (burst * 7919) % AUCTIONS;
            let price = 100 + (i % BURST) as i64 * 3;
            Element::at((auction as i64, price), Timestamp::new(burst + 1))
        })
        .collect()
}

fn join_op() -> RippleJoin<Pair, Pair, Pair> {
    // Left: auctions (id, category); right: bids (id, price);
    // out: (category, price).
    RippleJoin::equi(|a: &Pair| a.0, |b: &Pair| b.0, |a, b| (a.1, b.1))
}

fn category(p: &Pair) -> i64 {
    p.0
}

fn price(p: &Pair) -> i64 {
    p.1
}

#[allow(clippy::type_complexity)]
fn agg_op() -> GroupedAggregate<Pair, i64, fn(&Pair) -> i64, MaxAgg<fn(&Pair) -> i64>> {
    GroupedAggregate::new(
        category as fn(&Pair) -> i64,
        MaxAgg(price as fn(&Pair) -> i64),
    )
}

/// Builds the plan and returns `(graph, sink buffer)`. `instances == 1`
/// with `keyed == false` is the E17 single-node plan; otherwise the join
/// and the grouped-max each sit behind a shuffle edge with `instances`
/// copies.
fn plan(
    n_bids: u64,
    keyed: bool,
    instances: usize,
) -> (Arc<QueryGraph>, pipes::graph::io::Collected<(i64, i64)>) {
    let g = QueryGraph::new();
    let a = g.add_source("auctions", VecSource::new(auctions()));
    let b = g.add_source("bids", VecSource::new(bids(n_bids)));
    let joined = if keyed {
        g.add_keyed_binary(
            "join",
            || join_op().with_rekey(|a: &Pair| key_hash(&a.0), |b: &Pair| key_hash(&b.0)),
            Arc::new(|a: &Pair| key_hash(&a.0)),
            Arc::new(|b: &Pair| key_hash(&b.0)),
            instances,
            // The join emits only while processing elements — no
            // broadcast-stamp ties across instances.
            None,
            &a,
            &b,
        )
    } else {
        g.add_binary("join", join_op(), &a, &b)
    };
    let fee = |p: Pair| (p.0, p.1 + p.1 / 50);
    let mapped = g.add_unary("fee", Map::new(fee), &joined);
    let top = if keyed {
        g.add_keyed_unary(
            "top-price",
            agg_op,
            Arc::new(|p: &Pair| key_hash(&p.0)),
            instances,
            // Heartbeat flushes are key-sorted in the single plan; the key
            // tie restores that order across instances.
            Some(Arc::new(
                |a: &Element<(i64, i64)>, b: &Element<(i64, i64)>| a.payload.0.cmp(&b.payload.0),
            )),
            &mapped,
        )
    } else {
        g.add_unary("top-price", agg_op(), &mapped)
    };
    let (sink, buf) = CollectSink::new();
    g.add_sink("sink", sink, &top);
    (Arc::new(g), buf)
}

/// Runs one plan under the work-stealing executor with `threads` workers
/// and returns (elements/s over both inputs, sink message count).
fn run_threaded(n_bids: u64, keyed: bool, instances: usize, threads: usize) -> (f64, usize) {
    let (g, buf) = plan(n_bids, keyed, instances);
    let total = AUCTIONS + n_bids;
    let start = Instant::now();
    WorkStealingExecutor::new(threads).run(&g, || Box::new(RoundRobinStrategy::new()));
    let secs = start.elapsed().as_secs_f64();
    let produced = buf.lock().len();
    assert!(produced > 0, "plan produced no aggregates");
    assert!(g.all_finished());
    (total as f64 / secs, produced)
}

/// Deterministic single-threaded byte-identity check: the keyed plan must
/// reproduce the single plan's sink stream exactly. Both plans drain under
/// the same round-robin quantum, so the sources punctuate identically and
/// the outputs are directly comparable.
fn assert_byte_identical(n_bids: u64, instances: usize) {
    let (g_single, out_single) = plan(n_bids, false, 1);
    g_single.run_to_completion(256);
    let (g_keyed, out_keyed) = plan(n_bids, true, instances);
    g_keyed.run_to_completion(256);
    let want = out_single.lock().clone();
    let got = out_keyed.lock().clone();
    assert_eq!(
        got, want,
        "keyed plan with {instances} instances diverged from the single plan"
    );
}

fn median(ratios: &mut [f64]) -> f64 {
    ratios.sort_by(f64::total_cmp);
    if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    }
}

/// Runs E21 and prints the table; writes `BENCH_keyed_parallel.json`.
pub fn e21_keyed_parallel(quick: bool) {
    let n_bids: u64 = if quick { 48_000 } else { 256_000 };
    let reps = if quick { 4 } else { 12 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Byte identity first — scaling numbers mean nothing if the keyed plan
    // computes a different stream.
    for instances in [2usize, 3, 5] {
        assert_byte_identical(n_bids.min(16_000), instances);
    }
    println!("byte-identity: keyed plan == single plan at 2/3/5 instances");

    // Warm up allocator and page cache off the clock.
    run_threaded(n_bids.min(8_000), true, 2, 1);

    // Thread sweep 1 → cores. Per E15: paired back-to-back runs per rep in
    // alternating order, per-rep ratio, median over reps.
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for threads in 1..=cores {
        let instances = threads.max(2);
        let mut best = [f64::MIN; 2];
        let mut ratios = Vec::with_capacity(reps);
        for rep in 0..reps {
            let order = if rep % 2 == 0 {
                [false, true]
            } else {
                [true, false]
            };
            let mut thr = [0.0f64; 2];
            for keyed in order {
                let (t, _) =
                    run_threaded(n_bids, keyed, if keyed { instances } else { 1 }, threads);
                thr[keyed as usize] = t;
                best[keyed as usize] = best[keyed as usize].max(t);
            }
            ratios.push(thr[1] / thr[0]);
            if std::env::var_os("PIPES_E21_DEBUG").is_some() {
                eprintln!(
                    "threads {threads} rep {rep:>2}: single {:.3e} keyed {:.3e} (x{:.2})",
                    thr[0],
                    thr[1],
                    thr[1] / thr[0]
                );
            }
        }
        let ratio = median(&mut ratios);
        rows.push(vec![
            threads.to_string(),
            instances.to_string(),
            f(best[0] / 1e6, 2),
            f(best[1] / 1e6, 2),
            f(ratio, 2),
        ]);
        json_rows.push(format!(
            "    {{\"threads\": {threads}, \"instances\": {instances}, \
             \"single_elem_per_s\": {:.0}, \"keyed_elem_per_s\": {:.0}, \
             \"keyed_vs_single_median_ratio\": {ratio:.3}}}",
            best[0], best[1]
        ));
    }

    table(
        &format!(
            "E21 — keyed parallelism, auctions({AUCTIONS}) ⋈ bids({n_bids}, \
             bursts of {BURST}) → fee → group-by-category max, {cores} core(s)"
        ),
        &[
            "threads",
            "instances",
            "single Melem/s",
            "keyed Melem/s",
            "keyed vs single (median)",
        ],
        &rows,
    );
    if cores == 1 {
        println!(
            "shape check: single-core host — the sweep collapses to the 1-thread \
             point, so the ratio above is the shuffle edge's overhead (partition + \
             merge stages on one core), not a scaling result; on a multi-core host \
             the keyed plan's instances are independently stealable and the ratio \
             grows with the thread count."
        );
    } else {
        println!(
            "shape check: the single plan's stateful operators are one graph node \
             each, so extra threads cannot help them; the keyed plan splits the \
             join and the aggregate into per-thread instances that the \
             work-stealing executor schedules independently, and the ratio grows \
             with the thread count."
        );
    }

    let json = format!(
        "{{\n  \"experiment\": \"keyed_parallel\",\n  \"auctions\": {AUCTIONS},\n  \
         \"bids\": {n_bids},\n  \"burst\": {BURST},\n  \
         \"categories\": {CATEGORIES},\n  \"cores\": {cores},\n  \
         \"byte_identical\": true,\n  \"sweep\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_keyed_parallel.json", &json) {
        Ok(()) => println!("wrote BENCH_keyed_parallel.json"),
        Err(e) => eprintln!("could not write BENCH_keyed_parallel.json: {e}"),
    }
}
