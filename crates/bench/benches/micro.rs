//! Criterion micro-benchmarks for the hot building blocks: operator
//! fusion, SweepArea probing, and the temporal aggregation machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pipes::ops::drive::{run_binary, run_unary};
use pipes::ops::join::{HashSweepArea, ListSweepArea, OrderedSweepArea, SweepArea};
use pipes::prelude::*;

fn events(n: u64) -> Vec<Element<i64>> {
    (0..n)
        .map(|i| Element::at(i as i64, Timestamp::new(i)))
        .collect()
}

/// E4 micro: fused vs queued chain of four cheap maps.
fn bench_fusion(c: &mut Criterion) {
    const N: u64 = 20_000;
    let mut group = c.benchmark_group("fusion");
    group.throughput(Throughput::Elements(N));

    group.bench_function("queued_chain_4", |b| {
        b.iter(|| {
            let g = QueryGraph::new();
            let src = g.add_source("src", VecSource::new(events(N)));
            let a = g.add_unary("a", Map::new(|v: i64| v + 1), &src);
            let d = g.add_unary("b", Map::new(|v: i64| v * 2), &a);
            let e = g.add_unary("c", Map::new(|v: i64| v - 3), &d);
            let f = g.add_unary("d", Map::new(|v: i64| v ^ 7), &e);
            let (sink, buf) = CollectSink::new();
            g.add_sink("s", sink, &f);
            g.run_to_completion(256);
            let n = buf.lock().len();
            n
        })
    });
    group.bench_function("fused_chain_4", |b| {
        b.iter(|| {
            let g = QueryGraph::new();
            let src = g.add_source("src", VecSource::new(events(N)));
            let chain = Map::new(|v: i64| v + 1)
                .then(Map::new(|v: i64| v * 2))
                .then(Map::new(|v: i64| v - 3))
                .then(Map::new(|v: i64| v ^ 7));
            let f = g.add_unary("virtual", chain, &src);
            let (sink, buf) = CollectSink::new();
            g.add_sink("s", sink, &f);
            g.run_to_completion(256);
            let n = buf.lock().len();
            n
        })
    });
    group.finish();
}

/// E14 micro: the same queued 4-op chain swept across batch limits. A limit
/// of 1 reproduces the per-message cost model (one lock round and one
/// sequence allocation per message); "unbounded" is the kernel default.
fn bench_batching(c: &mut Criterion) {
    const N: u64 = 20_000;
    let mut group = c.benchmark_group("batching");
    group.throughput(Throughput::Elements(N));
    for limit in [1usize, 8, 64, usize::MAX] {
        let label = if limit == usize::MAX {
            "unbounded".to_string()
        } else {
            limit.to_string()
        };
        group.bench_function(BenchmarkId::new("queued_chain_4", label), |b| {
            b.iter(|| {
                let g = QueryGraph::new();
                let src = g.add_source("src", VecSource::new(events(N)));
                let a = g.add_unary("a", Map::new(|v: i64| v + 1), &src);
                let d = g.add_unary("b", Map::new(|v: i64| v * 2), &a);
                let e = g.add_unary("c", Map::new(|v: i64| v - 3), &d);
                let f = g.add_unary("d", Map::new(|v: i64| v ^ 7), &e);
                let (sink, buf) = CollectSink::new();
                g.add_sink("s", sink, &f);
                g.set_batch_limit(limit);
                g.run_to_completion(256);
                let n = buf.lock().len();
                n
            })
        });
    }
    group.finish();
}

/// E6 micro: probe cost per SweepArea variant at a fixed live-set size.
fn bench_sweeparea(c: &mut Criterion) {
    const LIVE: u64 = 2_000;
    let mut group = c.benchmark_group("sweeparea_probe");
    let fill = |sa: &mut dyn SweepArea<i64, i64>| {
        for i in 0..LIVE {
            sa.insert(Element::new(
                (i % 50) as i64,
                TimeInterval::new(Timestamp::new(i), Timestamp::new(i + 10_000)),
            ));
        }
    };
    let probe = Element::new(
        7i64,
        TimeInterval::new(Timestamp::new(500), Timestamp::new(600)),
    );

    let mut list = ListSweepArea::new(|p: &i64, t: &i64| p == t);
    fill(&mut list);
    group.bench_function(BenchmarkId::new("probe", "list"), |b| {
        b.iter(|| {
            let mut hits = 0;
            list.query(&probe, &mut |_| hits += 1);
            hits
        })
    });

    let mut ordered = OrderedSweepArea::new(|p: &i64, t: &i64| p == t);
    fill(&mut ordered);
    group.bench_function(BenchmarkId::new("probe", "ordered"), |b| {
        b.iter(|| {
            let mut hits = 0;
            ordered.query(&probe, &mut |_| hits += 1);
            hits
        })
    });

    let mut hash = HashSweepArea::new(|t: &i64| *t, |p: &i64| *p);
    fill(&mut hash);
    group.bench_function(BenchmarkId::new("probe", "hash"), |b| {
        b.iter(|| {
            let mut hits = 0;
            hash.query(&probe, &mut |_| hits += 1);
            hits
        })
    });
    group.finish();
}

/// Joins end-to-end at bench scale.
fn bench_join(c: &mut Criterion) {
    const N: u64 = 5_000;
    let make = |seed: u64| -> Vec<Element<i64>> {
        (0..N)
            .map(|i| {
                Element::new(
                    ((i.wrapping_mul(seed)) % 64) as i64,
                    TimeInterval::new(Timestamp::new(i), Timestamp::new(i + 100)),
                )
            })
            .collect()
    };
    let mut group = c.benchmark_group("ripple_join");
    group.throughput(Throughput::Elements(2 * N));
    group.bench_function("equi_hash", |b| {
        b.iter(|| {
            run_binary(
                RippleJoin::equi(|x: &i64| *x, |y: &i64| *y, |x, y| (*x, *y)),
                make(2654435761),
                make(40503),
            )
            .len()
        })
    });
    group.finish();
}

/// Temporal aggregation throughput at several window sizes.
/// `count_window` is the operator as shipped (`AggStrategy::Auto`: the
/// partial-aggregate tree once inserts get wide); `count_window_naive`
/// pins the pre-tree boundary scan for the before/after comparison.
fn bench_aggregate(c: &mut Criterion) {
    const N: u64 = 10_000;
    let mut group = c.benchmark_group("temporal_aggregate");
    group.throughput(Throughput::Elements(N));
    for window in [16u64, 128, 1024] {
        let input: Vec<Element<i64>> = (0..N)
            .map(|i| {
                Element::new(
                    i as i64,
                    TimeInterval::new(Timestamp::new(i), Timestamp::new(i + window)),
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("count_window", window),
            &input,
            |b, input| b.iter(|| run_unary(ScalarAggregate::new(CountAgg), input.clone()).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("count_window_naive", window),
            &input,
            |b, input| {
                b.iter(|| {
                    run_unary(
                        ScalarAggregate::with_strategy(CountAgg, AggStrategy::Naive),
                        input.clone(),
                    )
                    .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fusion,
    bench_batching,
    bench_sweeparea,
    bench_join,
    bench_aggregate
);
criterion_main!(benches);
