//! `cargo bench` entry point that regenerates every experiment table
//! (quick workloads). The criterion micro-benchmarks live in the sibling
//! bench targets.

fn main() {
    // Criterion-style benches pass --bench and filter args; we accept and
    // ignore them, always running the quick pass.
    pipes_bench::experiments::run("all", true);
}
