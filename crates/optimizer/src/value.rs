//! Dynamic relational values, tuples and schemas.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically typed relational value.
///
/// `Value` has a *total* order and hash across all variants (variant rank
/// first, then value; floats via `total_cmp`), so tuples can serve as
/// grouping and join keys everywhere in the toolkit.
#[derive(Clone, Debug)]
pub enum Value {
    /// Absence of a value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
}

impl Value {
    /// Convenience string constructor.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Numeric view (ints widen to float); `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view with SQL-ish semantics: only `Bool(true)` is truthy.
    pub fn truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// SQL-style comparison for predicates: numeric types compare by value
    /// across Int/Float; mismatched types (or Null) compare as `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                Some(a.total_cmp(&b))
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Cross-type numeric ordering keeps Int(2) == Float(2.0) OUT of
            // the total order (they are distinct keys); order by rank.
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

/// A row: a vector of values positionally matching a [`Schema`].
pub type Tuple = Vec<Value>;

/// Column names of a tuple stream, fully qualified where applicable
/// (`alias.column`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Creates a schema from column names.
    pub fn new(columns: Vec<String>) -> Self {
        Schema { columns }
    }

    /// Creates a schema from string literals.
    pub fn of(columns: &[&str]) -> Self {
        Schema {
            columns: columns.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Prefixes every column with a qualifier: `col` → `alias.col`
    /// (existing qualifiers are replaced).
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| {
                    let base = c.rsplit('.').next().unwrap_or(c);
                    format!("{alias}.{base}")
                })
                .collect(),
        }
    }

    /// Concatenates two schemas (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Resolves a (possibly unqualified) name to a column index.
    ///
    /// Exact matches win; otherwise an unqualified `name` matches the
    /// unique column whose suffix after the dot equals `name`. Ambiguity or
    /// absence yields an error message.
    pub fn resolve(&self, name: &str) -> Result<usize, String> {
        if let Some(i) = self.columns.iter().position(|c| c == name) {
            return Ok(i);
        }
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.rsplit('.').next() == Some(name))
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(format!(
                "unknown column '{name}' (have: {})",
                self.columns.join(", ")
            )),
            _ => Err(format!("ambiguous column '{name}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_and_hash_consistency() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Int(5),
            Value::Float(2.5),
            Value::str("a"),
        ];
        for a in &vals {
            for b in &vals {
                if a == b {
                    assert_eq!(hash_of(a), hash_of(b));
                    assert_eq!(a.cmp(b), Ordering::Equal);
                }
            }
        }
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert_eq!(
            Value::Float(f64::NAN).cmp(&Value::Float(f64::NAN)),
            Ordering::Equal
        );
    }

    #[test]
    fn sql_cmp_coerces_numerics() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::str("x").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Int(1).truthy());
        assert!(!Value::Null.truthy());
    }

    #[test]
    fn schema_resolution() {
        let s = Schema::of(&["t.a", "t.b", "u.b", "c"]);
        assert_eq!(s.resolve("t.a"), Ok(0));
        assert_eq!(s.resolve("a"), Ok(0));
        assert!(s.resolve("b").is_err()); // ambiguous
        assert_eq!(s.resolve("u.b"), Ok(2));
        assert_eq!(s.resolve("c"), Ok(3));
        assert!(s.resolve("zzz").is_err());
    }

    #[test]
    fn schema_qualify_and_concat() {
        let s = Schema::of(&["a", "x.b"]);
        let q = s.qualified("t");
        assert_eq!(q.columns(), &["t.a".to_string(), "t.b".to_string()]);
        let joined = q.concat(&Schema::of(&["u.c"]));
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.resolve("c"), Ok(2));
    }
}
