//! Snapshot-equivalence-preserving rewrite rules and variant enumeration.
//!
//! The optimizer is rule-based and heuristic, as in the paper: it takes a
//! new query and "heuristically produces a set of snapshot-equivalent query
//! plans as output". The rules here are the classic ones, restricted to
//! cases where the interval semantics provably commutes:
//!
//! * **split** — conjunctive filters split into cascades,
//! * **push-through-window** — filters commute with *time-based* windows
//!   (retiming is payload-independent); they do **not** commute with
//!   count-based windows, which the rule respects,
//! * **push-into-join** — a conjunct referencing only one join input moves
//!   below the join,
//! * **merge** — adjacent filters re-merge (canonicalization),
//! * **commute-join** — joins are symmetric up to column order; the variant
//!   keeps the output schema by re-projecting,
//! * **coalesce-after-aggregate** — inserts the rate-reducing coalesce
//!   operator above aggregates (a PIPES-specific variant).

use crate::catalog::Catalog;
use crate::compile::output_schema;
use crate::expr::Expr;
use crate::plan::LogicalPlan;
use std::collections::HashSet;

/// Splits every conjunctive filter into a cascade of single-conjunct
/// filters (enables finer pushdown).
pub fn split_filters(plan: &LogicalPlan) -> LogicalPlan {
    let plan = map_children(plan, &split_filters);
    if let LogicalPlan::Filter { input, predicate } = &plan {
        let conjuncts = predicate.conjuncts();
        if conjuncts.len() > 1 {
            let mut cur = (**input).clone();
            for c in conjuncts {
                cur = LogicalPlan::Filter {
                    input: Box::new(cur),
                    predicate: c,
                };
            }
            return cur;
        }
    }
    plan
}

/// Merges directly adjacent filters into one conjunction (canonical form).
pub fn merge_filters(plan: &LogicalPlan) -> LogicalPlan {
    let plan = map_children(plan, &merge_filters);
    if let LogicalPlan::Filter { input, predicate } = &plan {
        if let LogicalPlan::Filter {
            input: inner,
            predicate: p2,
        } = &**input
        {
            return merge_filters(&LogicalPlan::Filter {
                input: inner.clone(),
                predicate: p2.clone().and(predicate.clone()),
            });
        }
    }
    plan
}

/// Pushes filters toward the sources: through time/now windows, through
/// projects they don't depend on (not attempted), and into join inputs.
pub fn push_filters(plan: &LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    let plan = map_children(plan, &|p| push_filters(p, catalog));
    let LogicalPlan::Filter { input, predicate } = &plan else {
        return plan;
    };
    match &**input {
        LogicalPlan::Window { input: below, spec } if window_commutes(spec) => {
            let pushed = push_filters(
                &LogicalPlan::Filter {
                    input: below.clone(),
                    predicate: predicate.clone(),
                },
                catalog,
            );
            LogicalPlan::Window {
                input: Box::new(pushed),
                spec: spec.clone(),
            }
        }
        LogicalPlan::Join {
            left,
            right,
            predicate: join_pred,
        } => {
            // A conjunct that binds against exactly one side moves below.
            let ls = output_schema(left, catalog);
            let rs = output_schema(right, catalog);
            let (Ok(ls), Ok(rs)) = (ls, rs) else {
                return plan;
            };
            let mut stay = Vec::new();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            for c in predicate.conjuncts() {
                let on_left = c.bind(&ls).is_ok();
                let on_right = c.bind(&rs).is_ok();
                match (on_left, on_right) {
                    (true, false) => to_left.push(c),
                    (false, true) => to_right.push(c),
                    _ => stay.push(c),
                }
            }
            if to_left.is_empty() && to_right.is_empty() {
                return plan;
            }
            let wrap = |side: &LogicalPlan, preds: Vec<Expr>| -> LogicalPlan {
                if preds.is_empty() {
                    side.clone()
                } else {
                    push_filters(
                        &LogicalPlan::Filter {
                            input: Box::new(side.clone()),
                            predicate: Expr::conjoin(preds),
                        },
                        catalog,
                    )
                }
            };
            let new_join = LogicalPlan::Join {
                left: Box::new(wrap(left, to_left)),
                right: Box::new(wrap(right, to_right)),
                predicate: join_pred.clone(),
            };
            if stay.is_empty() {
                new_join
            } else {
                LogicalPlan::Filter {
                    input: Box::new(new_join),
                    predicate: Expr::conjoin(stay),
                }
            }
        }
        _ => plan,
    }
}

fn window_commutes(spec: &crate::plan::WindowSpec) -> bool {
    matches!(
        spec,
        crate::plan::WindowSpec::Time(_) | crate::plan::WindowSpec::Now
    )
}

/// Swaps the inputs of every join, preserving the output schema by
/// re-projecting columns back into the original order.
pub fn commute_joins(plan: &LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    let plan = map_children(plan, &|p| commute_joins(p, catalog));
    if let LogicalPlan::Join {
        left,
        right,
        predicate,
    } = &plan
    {
        let (Ok(ls), Ok(rs)) = (output_schema(left, catalog), output_schema(right, catalog)) else {
            return plan;
        };
        let mut exprs: Vec<(Expr, String)> = Vec::new();
        for c in ls.columns().iter().chain(rs.columns().iter()) {
            exprs.push((Expr::col(c.clone()), c.clone()));
        }
        return LogicalPlan::Project {
            input: Box::new(LogicalPlan::Join {
                left: right.clone(),
                right: left.clone(),
                predicate: predicate.clone(),
            }),
            exprs,
        };
    }
    plan
}

/// Inserts a coalesce above every aggregate (rate reduction at the cost of
/// latency).
pub fn coalesce_aggregates(plan: &LogicalPlan) -> LogicalPlan {
    let plan = map_children(plan, &coalesce_aggregates);
    if matches!(plan, LogicalPlan::Aggregate { .. }) {
        return LogicalPlan::Coalesce {
            input: Box::new(plan),
        };
    }
    plan
}

/// Rebuilds a node with children mapped through `f`.
fn map_children(plan: &LogicalPlan, f: &impl Fn(&LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    use LogicalPlan::*;
    match plan {
        Stream { .. } => plan.clone(),
        Window { input, spec } => Window {
            input: Box::new(f(input)),
            spec: spec.clone(),
        },
        Filter { input, predicate } => Filter {
            input: Box::new(f(input)),
            predicate: predicate.clone(),
        },
        Project { input, exprs } => Project {
            input: Box::new(f(input)),
            exprs: exprs.clone(),
        },
        Join {
            left,
            right,
            predicate,
        } => Join {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            predicate: predicate.clone(),
        },
        RelationJoin {
            input,
            relation,
            alias,
            stream_key,
        } => RelationJoin {
            input: Box::new(f(input)),
            relation: relation.clone(),
            alias: alias.clone(),
            stream_key: stream_key.clone(),
        },
        Aggregate {
            input,
            group_by,
            aggs,
        } => Aggregate {
            input: Box::new(f(input)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        Distinct { input } => Distinct {
            input: Box::new(f(input)),
        },
        Union { inputs } => Union {
            inputs: inputs.iter().map(f).collect(),
        },
        Difference { left, right } => Difference {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
        },
        Every { input, period } => Every {
            input: Box::new(f(input)),
            period: *period,
        },
        Coalesce { input } => Coalesce {
            input: Box::new(f(input)),
        },
    }
}

/// Heuristically enumerates snapshot-equivalent variants of `plan`
/// (including the plan itself), deduplicated by signature.
pub fn enumerate(plan: &LogicalPlan, catalog: &Catalog) -> Vec<LogicalPlan> {
    let mut variants = Vec::new();
    let mut seen = HashSet::new();
    let mut push = |p: LogicalPlan, variants: &mut Vec<LogicalPlan>| {
        if seen.insert(p.signature()) {
            variants.push(p);
        }
    };

    push(plan.clone(), &mut variants);
    let canonical = merge_filters(&push_filters(&split_filters(plan), catalog));
    push(canonical.clone(), &mut variants);
    push(commute_joins(&canonical, catalog), &mut variants);
    push(coalesce_aggregates(&canonical), &mut variants);
    variants
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::plan::WindowSpec;
    use crate::value::Schema;
    use pipes_time::Duration;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, cols) in [("s", vec!["a", "b"]), ("t", vec!["c", "d"])] {
            cat.add_stream(
                name,
                Schema::new(cols.iter().map(|c| c.to_string()).collect()),
                100.0,
                Box::new(|| unreachable!("rule tests never build sources")),
            );
        }
        cat
    }

    fn stream(name: &str) -> LogicalPlan {
        LogicalPlan::Window {
            input: Box::new(LogicalPlan::Stream {
                name: name.into(),
                alias: None,
            }),
            spec: WindowSpec::Time(Duration::from_ticks(10)),
        }
    }

    #[test]
    fn split_and_merge_are_inverses_up_to_signature() {
        let pred = Expr::col("a").eq(Expr::lit(1i64)).and(Expr::bin(
            Expr::col("b"),
            BinOp::Gt,
            Expr::lit(2i64),
        ));
        let plan = LogicalPlan::Filter {
            input: Box::new(stream("s")),
            predicate: pred,
        };
        let split = split_filters(&plan);
        // Two stacked filters now.
        assert!(matches!(&split, LogicalPlan::Filter { input, .. }
            if matches!(**input, LogicalPlan::Filter { .. })));
        let merged = merge_filters(&split);
        assert!(matches!(&merged, LogicalPlan::Filter { input, .. }
            if !matches!(**input, LogicalPlan::Filter { .. })));
    }

    #[test]
    fn filter_pushes_through_time_window_only() {
        let cat = catalog();
        let plan = LogicalPlan::Filter {
            input: Box::new(stream("s")),
            predicate: Expr::col("a").eq(Expr::lit(1i64)),
        };
        let pushed = push_filters(&plan, &cat);
        assert!(
            matches!(&pushed, LogicalPlan::Window { input, .. }
                if matches!(**input, LogicalPlan::Filter { .. })),
            "expected Window over Filter, got:\n{pushed}"
        );

        // Rows windows must block the pushdown.
        let rows_plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Window {
                input: Box::new(LogicalPlan::Stream {
                    name: "s".into(),
                    alias: None,
                }),
                spec: WindowSpec::Rows(5),
            }),
            predicate: Expr::col("a").eq(Expr::lit(1i64)),
        };
        let unchanged = push_filters(&rows_plan, &cat);
        assert!(matches!(unchanged, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn one_sided_conjuncts_sink_into_join() {
        let cat = catalog();
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(stream("s")),
                right: Box::new(stream("t")),
                predicate: Expr::col("a").eq(Expr::col("c")),
            }),
            predicate: Expr::bin(Expr::col("b"), BinOp::Gt, Expr::lit(7i64)).and(Expr::bin(
                Expr::col("d"),
                BinOp::Lt,
                Expr::lit(3i64),
            )),
        };
        let pushed = push_filters(&split_filters(&plan), &cat);
        // The top node is the join; both filters have sunk.
        let LogicalPlan::Join { left, right, .. } = &pushed else {
            panic!("expected a join at the top, got:\n{pushed}");
        };
        fn contains_filter(p: &LogicalPlan) -> bool {
            matches!(p, LogicalPlan::Filter { .. }) || p.inputs().iter().any(|c| contains_filter(c))
        }
        assert!(contains_filter(left));
        assert!(contains_filter(right));
    }

    #[test]
    fn commuted_join_preserves_schema() {
        let cat = catalog();
        let plan = LogicalPlan::Join {
            left: Box::new(stream("s")),
            right: Box::new(stream("t")),
            predicate: Expr::col("a").eq(Expr::col("c")),
        };
        let orig = output_schema(&plan, &cat).unwrap();
        let commuted = commute_joins(&plan, &cat);
        let new = output_schema(&commuted, &cat).unwrap();
        assert_eq!(orig.columns(), new.columns());
        assert!(matches!(commuted, LogicalPlan::Project { .. }));
    }

    #[test]
    fn enumeration_is_deduplicated_and_contains_original() {
        let cat = catalog();
        let plan = LogicalPlan::Filter {
            input: Box::new(stream("s")),
            predicate: Expr::col("a").eq(Expr::lit(1i64)),
        };
        let variants = enumerate(&plan, &cat);
        assert!(!variants.is_empty());
        let sigs: HashSet<String> = variants.iter().map(|v| v.signature()).collect();
        assert_eq!(sigs.len(), variants.len(), "variants must be distinct");
        assert!(sigs.contains(&plan.signature()));
    }

    #[test]
    fn coalesce_inserted_above_aggregates() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(stream("s")),
            group_by: vec![],
            aggs: vec![(
                crate::plan::AggSpec {
                    func: crate::plan::AggFunc::Count,
                    arg: Expr::lit(0i64),
                },
                "cnt".into(),
            )],
        };
        let with = coalesce_aggregates(&plan);
        assert!(matches!(with, LogicalPlan::Coalesce { .. }));
    }
}
