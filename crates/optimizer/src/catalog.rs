//! The catalog: registered streams and relations.

use crate::value::{Schema, Tuple, Value};
use pipes_graph::SourceOp;
use pipes_rel::SharedRelation;
use std::collections::HashMap;

/// Builds a fresh physical source for a registered stream. Factories are
/// invoked once per query installation that cannot share an existing scan.
pub type TupleSourceFactory = Box<dyn Fn() -> Box<dyn SourceOp<Out = Tuple>> + Send + Sync>;

/// A registered stream.
pub struct StreamDef {
    /// Base (unqualified) column names.
    pub schema: Schema,
    /// Expected element rate (elements per time unit), used by the cost
    /// model before observed metadata exists.
    pub rate_hint: f64,
    /// Physical source factory.
    pub factory: TupleSourceFactory,
}

/// A registered relation: tuple rows keyed by one column.
pub struct RelationDef {
    /// Base column names.
    pub schema: Schema,
    /// Index of the primary-key column.
    pub key_col: usize,
    /// The shared table.
    pub relation: SharedRelation<Value, Tuple>,
}

/// Name → definition maps consulted by the CQL front end, the cost model
/// and the physical compiler.
#[derive(Default)]
pub struct Catalog {
    streams: HashMap<String, StreamDef>,
    relations: HashMap<String, RelationDef>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a stream.
    pub fn add_stream(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        rate_hint: f64,
        factory: TupleSourceFactory,
    ) {
        self.streams.insert(
            name.into(),
            StreamDef {
                schema,
                rate_hint,
                factory,
            },
        );
    }

    /// Registers a relation keyed by `key_col`.
    ///
    /// # Panics
    ///
    /// Panics if `key_col` is out of range for the schema.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        key_col: usize,
        relation: SharedRelation<Value, Tuple>,
    ) {
        assert!(key_col < schema.len(), "key column out of range");
        self.relations.insert(
            name.into(),
            RelationDef {
                schema,
                key_col,
                relation,
            },
        );
    }

    /// Looks up a stream.
    pub fn stream(&self, name: &str) -> Option<&StreamDef> {
        self.streams.get(name)
    }

    /// Looks up a relation.
    pub fn relation(&self, name: &str) -> Option<&RelationDef> {
        self.relations.get(name)
    }

    /// Whether `name` is a registered stream.
    pub fn has_stream(&self, name: &str) -> bool {
        self.streams.contains_key(name)
    }

    /// Whether `name` is a registered relation.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all registered streams.
    pub fn stream_names(&self) -> Vec<&str> {
        self.streams.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipes_graph::io::VecSource;
    use pipes_rel::Relation;

    pub(crate) fn test_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_stream(
            "nums",
            Schema::of(&["k", "v"]),
            100.0,
            Box::new(|| {
                let elems = (0..10i64)
                    .map(|i| {
                        pipes_time::Element::at(
                            vec![Value::Int(i % 3), Value::Int(i)],
                            pipes_time::Timestamp::new(i as u64),
                        )
                    })
                    .collect();
                Box::new(VecSource::new(elems))
            }),
        );
        let mut rel = Relation::new("dim", |t: &Tuple| t[0].clone());
        rel.bulk_load((0..3i64).map(|k| vec![Value::Int(k), Value::str(format!("name{k}"))]));
        cat.add_relation(
            "dim",
            Schema::of(&["id", "label"]),
            0,
            SharedRelation::new(rel),
        );
        cat
    }

    #[test]
    fn registration_and_lookup() {
        let cat = test_catalog();
        assert!(cat.has_stream("nums"));
        assert!(!cat.has_stream("dim"));
        assert!(cat.has_relation("dim"));
        assert_eq!(cat.stream("nums").unwrap().schema.len(), 2);
        assert_eq!(cat.relation("dim").unwrap().key_col, 0);
        let mut names = cat.stream_names();
        names.sort();
        assert_eq!(names, vec!["nums"]);
    }

    #[test]
    fn factory_builds_working_sources() {
        let cat = test_catalog();
        let mut src = (cat.stream("nums").unwrap().factory)();
        let mut out: Vec<pipes_time::Message<Tuple>> = Vec::new();
        let status = src.produce(100, &mut out);
        assert_eq!(status, pipes_graph::SourceStatus::Exhausted);
        assert_eq!(out.iter().filter(|m| m.is_element()).count(), 10);
    }
}
