//! Scalar expressions over tuples.

use crate::value::{Schema, Tuple, Value};
use std::fmt;

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
}

impl BinOp {
    /// The CQL surface syntax for this operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// An unbound scalar expression (column references by name).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A column reference, possibly qualified (`alias.col`).
    Column(String),
    /// A literal value.
    Literal(Value),
    /// A binary operation.
    Binary(Box<Expr>, BinOp, Box<Expr>),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Builder for binary expressions.
    pub fn bin(lhs: Expr, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(Box::new(lhs), op, Box::new(rhs))
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::bin(self, BinOp::And, rhs)
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::bin(self, BinOp::Eq, rhs)
    }

    /// All column names referenced by the expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Column(c) = e {
                out.push(c.as_str());
            }
        });
        out
    }

    fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary(l, _, r) => {
                l.visit(f);
                r.visit(f);
            }
            Expr::Unary(_, e) => e.visit(f),
            _ => {}
        }
    }

    /// Splits a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<Expr> {
        match self {
            Expr::Binary(l, BinOp::And, r) => {
                let mut out = l.conjuncts();
                out.extend(r.conjuncts());
                out
            }
            other => vec![other.clone()],
        }
    }

    /// Re-joins conjuncts into one predicate (`true` literal when empty).
    pub fn conjoin(conjuncts: Vec<Expr>) -> Expr {
        conjuncts
            .into_iter()
            .reduce(|a, b| a.and(b))
            .unwrap_or(Expr::Literal(Value::Bool(true)))
    }

    /// Binds column names to indices against `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr, String> {
        Ok(match self {
            Expr::Column(name) => BoundExpr::Col(schema.resolve(name)?),
            Expr::Literal(v) => BoundExpr::Lit(v.clone()),
            Expr::Binary(l, op, r) => {
                BoundExpr::Binary(Box::new(l.bind(schema)?), *op, Box::new(r.bind(schema)?))
            }
            Expr::Unary(op, e) => BoundExpr::Unary(*op, Box::new(e.bind(schema)?)),
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary(l, op, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::Unary(UnOp::Not, e) => write!(f, "(NOT {e})"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
        }
    }
}

/// An expression bound to a concrete schema: column references are indices,
/// evaluation needs no name resolution.
#[derive(Clone, Debug)]
pub enum BoundExpr {
    /// Column by index.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Binary(Box<BoundExpr>, BinOp, Box<BoundExpr>),
    /// Unary operation.
    Unary(UnOp, Box<BoundExpr>),
}

impl BoundExpr {
    /// Evaluates against a tuple. Type mismatches yield `Value::Null`
    /// (three-valued logic: predicates treat it as false).
    pub fn eval(&self, t: &Tuple) -> Value {
        match self {
            BoundExpr::Col(i) => t.get(*i).cloned().unwrap_or(Value::Null),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Unary(UnOp::Not, e) => match e.eval(t) {
                Value::Bool(b) => Value::Bool(!b),
                _ => Value::Null,
            },
            BoundExpr::Unary(UnOp::Neg, e) => match e.eval(t) {
                Value::Int(i) => Value::Int(-i),
                Value::Float(f) => Value::Float(-f),
                _ => Value::Null,
            },
            BoundExpr::Binary(l, op, r) => {
                let (lv, rv) = (l.eval(t), r.eval(t));
                match op {
                    BinOp::And => match (&lv, &rv) {
                        (Value::Bool(a), Value::Bool(b)) => Value::Bool(*a && *b),
                        _ => Value::Null,
                    },
                    BinOp::Or => match (&lv, &rv) {
                        (Value::Bool(a), Value::Bool(b)) => Value::Bool(*a || *b),
                        _ => Value::Null,
                    },
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        match lv.sql_cmp(&rv) {
                            None => Value::Null,
                            Some(ord) => Value::Bool(match op {
                                BinOp::Eq => ord.is_eq(),
                                BinOp::Ne => !ord.is_eq(),
                                BinOp::Lt => ord.is_lt(),
                                BinOp::Le => ord.is_le(),
                                BinOp::Gt => ord.is_gt(),
                                BinOp::Ge => ord.is_ge(),
                                _ => unreachable!(),
                            }),
                        }
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        arith(&lv, *op, &rv)
                    }
                }
            }
        }
    }
}

fn arith(l: &Value, op: BinOp, r: &Value) -> Value {
    // Integer arithmetic stays integral; anything involving floats widens.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a / b)
                }
            }
            BinOp::Rem => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a % b)
                }
            }
            _ => Value::Null,
        };
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => match op {
            BinOp::Add => Value::Float(a + b),
            BinOp::Sub => Value::Float(a - b),
            BinOp::Mul => Value::Float(a * b),
            BinOp::Div => Value::Float(a / b),
            BinOp::Rem => Value::Float(a % b),
            _ => Value::Null,
        },
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&["t.a", "t.b", "t.name"])
    }

    fn row() -> Tuple {
        vec![Value::Int(10), Value::Float(2.5), Value::str("x")]
    }

    #[test]
    fn bind_and_eval_arithmetic() {
        let e = Expr::bin(Expr::col("a"), BinOp::Add, Expr::lit(5i64));
        let b = e.bind(&schema()).unwrap();
        assert_eq!(b.eval(&row()), Value::Int(15));

        let e = Expr::bin(Expr::col("a"), BinOp::Mul, Expr::col("b"));
        assert_eq!(e.bind(&schema()).unwrap().eval(&row()), Value::Float(25.0));
    }

    #[test]
    fn comparisons_and_logic() {
        let e = Expr::bin(Expr::col("a"), BinOp::Gt, Expr::lit(3i64)).and(Expr::bin(
            Expr::col("name"),
            BinOp::Eq,
            Expr::lit("x"),
        ));
        assert_eq!(e.bind(&schema()).unwrap().eval(&row()), Value::Bool(true));

        let e = Expr::Unary(
            UnOp::Not,
            Box::new(Expr::bin(Expr::col("a"), BinOp::Lt, Expr::lit(3i64))),
        );
        assert_eq!(e.bind(&schema()).unwrap().eval(&row()), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Expr::bin(Expr::lit(1i64), BinOp::Div, Expr::lit(0i64));
        assert_eq!(e.bind(&schema()).unwrap().eval(&row()), Value::Null);
        // And null is not truthy, so such predicates drop rows.
        assert!(!Value::Null.truthy());
    }

    #[test]
    fn type_mismatch_is_null() {
        let e = Expr::bin(Expr::col("name"), BinOp::Add, Expr::lit(1i64));
        assert_eq!(e.bind(&schema()).unwrap().eval(&row()), Value::Null);
    }

    #[test]
    fn conjunct_split_and_join() {
        let e = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::lit(2i64)))
            .and(Expr::col("name").eq(Expr::lit("x")));
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        let rejoined = Expr::conjoin(parts);
        assert_eq!(rejoined.conjuncts().len(), 3);
    }

    #[test]
    fn unknown_column_fails_binding() {
        assert!(Expr::col("nope").bind(&schema()).is_err());
    }

    #[test]
    fn columns_listed() {
        let e = Expr::col("a").and(Expr::col("t.b").eq(Expr::lit(1i64)));
        assert_eq!(e.columns(), vec!["a", "t.b"]);
    }
}
