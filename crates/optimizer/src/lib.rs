//! # pipes-optimizer
//!
//! The relational layer and rule-based multi-query optimizer of PIPES.
//!
//! While the physical algebra of `pipes-ops` handles arbitrary objects, CQL
//! queries speak about tuples and schemas. This crate provides:
//!
//! * [`Value`] / [`Tuple`] / [`Schema`] — the dynamic relational payloads,
//! * [`Expr`] — scalar expressions over tuples (bound against a schema at
//!   compile time),
//! * [`LogicalPlan`] — the logical algebra produced by the CQL front end,
//!   with pretty-printing, Graphviz rendering and a textual serialization
//!   (the plan-persistence feature of the paper's plan GUI),
//! * [`rules`] — snapshot-equivalence-preserving rewrite rules that
//!   heuristically enumerate plan variants,
//! * [`cost`] — a rate/selectivity cost model fed by catalog defaults and,
//!   when available, observed secondary metadata,
//! * [`Catalog`] — registered streams and relations,
//! * [`compile()`] — translation of a logical plan into physical operators in
//!   a [`pipes_graph::QueryGraph`],
//! * [`Optimizer`] — the multi-query optimizer: it enumerates
//!   snapshot-equivalent variants of a new query, probes each against the
//!   *running* query graph, picks the best by cost (counting shared
//!   subplans as free), and splices only the missing nodes into the graph
//!   via publish–subscribe — extending multi-query optimization to streams
//!   exactly as the paper describes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
pub mod compile;
pub mod cost;
mod expr;
mod mqo;
mod plan;
pub mod rules;
pub mod sexpr;
mod value;

pub use catalog::{Catalog, RelationDef, StreamDef, TupleSourceFactory};
pub use compile::{compile, CompileContext};
pub use expr::{BinOp, BoundExpr, Expr, UnOp};
pub use mqo::{InstallReport, Optimizer};
pub use plan::{AggFunc, AggSpec, LogicalPlan, WindowSpec};
pub use value::{Schema, Tuple, Value};
