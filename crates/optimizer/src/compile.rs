//! Physical compilation: logical plans → operators in a query graph.

use crate::catalog::Catalog;
use crate::expr::{BinOp, BoundExpr, Expr};
use crate::plan::{AggFunc, LogicalPlan, WindowSpec};
use crate::value::{Schema, Tuple, Value};
use pipes_graph::{QueryGraph, StreamHandle};
use pipes_ops::aggregate::AggregateFn;
use pipes_ops::{
    Coalesce, CountWindow, Difference, Distinct, Filter, Granularity, GroupedAggregate, Map,
    NowWindow, PartitionedCountWindow, RippleJoin, ScalarAggregate, TimeWindow, Union,
};
use pipes_rel::RelationLookup;
use std::collections::HashMap;

/// Computes the output schema of a logical plan.
pub fn output_schema(plan: &LogicalPlan, catalog: &Catalog) -> Result<Schema, String> {
    match plan {
        LogicalPlan::Stream { name, alias } => {
            let def = catalog
                .stream(name)
                .ok_or_else(|| format!("unknown stream '{name}'"))?;
            Ok(def.schema.qualified(alias.as_deref().unwrap_or(name)))
        }
        LogicalPlan::Window { input, .. }
        | LogicalPlan::Filter { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Every { input, .. }
        | LogicalPlan::Coalesce { input } => output_schema(input, catalog),
        LogicalPlan::Project { input, exprs } => {
            // Validate input columns resolve.
            let in_schema = output_schema(input, catalog)?;
            for (e, _) in exprs {
                e.bind(&in_schema)?;
            }
            Ok(Schema::new(exprs.iter().map(|(_, n)| n.clone()).collect()))
        }
        LogicalPlan::Join { left, right, .. } => {
            Ok(output_schema(left, catalog)?.concat(&output_schema(right, catalog)?))
        }
        LogicalPlan::RelationJoin {
            input,
            relation,
            alias,
            ..
        } => {
            let def = catalog
                .relation(relation)
                .ok_or_else(|| format!("unknown relation '{relation}'"))?;
            let rel_schema = def.schema.qualified(alias.as_deref().unwrap_or(relation));
            Ok(output_schema(input, catalog)?.concat(&rel_schema))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_schema = output_schema(input, catalog)?;
            for (e, _) in group_by {
                e.bind(&in_schema)?;
            }
            for (a, _) in aggs {
                if a.func != AggFunc::Count {
                    a.arg.bind(&in_schema)?;
                }
            }
            let mut cols: Vec<String> = group_by.iter().map(|(_, n)| n.clone()).collect();
            cols.extend(aggs.iter().map(|(_, n)| n.clone()));
            Ok(Schema::new(cols))
        }
        LogicalPlan::Union { inputs } => {
            let first = output_schema(
                inputs.first().ok_or_else(|| "empty union".to_string())?,
                catalog,
            )?;
            for other in &inputs[1..] {
                let s = output_schema(other, catalog)?;
                if s.len() != first.len() {
                    return Err(format!(
                        "union arity mismatch: {} vs {}",
                        first.len(),
                        s.len()
                    ));
                }
            }
            Ok(first)
        }
        LogicalPlan::Difference { left, right } => {
            let l = output_schema(left, catalog)?;
            let r = output_schema(right, catalog)?;
            if l.len() != r.len() {
                return Err("difference arity mismatch".into());
            }
            Ok(l)
        }
    }
}

// ---------------------------------------------------------------------------
// Tuple aggregation
// ---------------------------------------------------------------------------

/// Accumulator of one aggregate call.
#[derive(Clone, Debug)]
pub enum AggAcc {
    /// Running row count.
    Count(u64),
    /// Running sum.
    Sum(f64),
    /// Running sum and count.
    Avg(f64, u64),
    /// Running minimum.
    Min(Value),
    /// Running maximum.
    Max(Value),
}

/// The combined aggregate over tuples: evaluates each call's argument and
/// folds all accumulators side by side; output is one value per call.
pub struct TupleAggs {
    specs: Vec<(AggFunc, Option<BoundExpr>)>,
}

impl TupleAggs {
    fn value(&self, i: usize, t: &Tuple) -> Value {
        match &self.specs[i].1 {
            Some(e) => e.eval(t),
            None => Value::Null,
        }
    }
}

impl AggregateFn<Tuple> for TupleAggs {
    type Acc = Vec<AggAcc>;
    type Out = Tuple;

    fn init(&self, v: &Tuple) -> Vec<AggAcc> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, (f, _))| match f {
                AggFunc::Count => AggAcc::Count(1),
                AggFunc::Sum => AggAcc::Sum(self.value(i, v).as_f64().unwrap_or(0.0)),
                AggFunc::Avg => AggAcc::Avg(self.value(i, v).as_f64().unwrap_or(0.0), 1),
                AggFunc::Min => AggAcc::Min(self.value(i, v)),
                AggFunc::Max => AggAcc::Max(self.value(i, v)),
            })
            .collect()
    }

    fn add(&self, acc: &mut Vec<AggAcc>, v: &Tuple) {
        for (i, a) in acc.iter_mut().enumerate() {
            match a {
                AggAcc::Count(c) => *c += 1,
                AggAcc::Sum(s) => *s += self.value(i, v).as_f64().unwrap_or(0.0),
                AggAcc::Avg(s, c) => {
                    *s += self.value(i, v).as_f64().unwrap_or(0.0);
                    *c += 1;
                }
                AggAcc::Min(m) => {
                    let x = self.value(i, v);
                    if x.sql_cmp(m).is_some_and(|o| o.is_lt()) {
                        *m = x;
                    }
                }
                AggAcc::Max(m) => {
                    let x = self.value(i, v);
                    if x.sql_cmp(m).is_some_and(|o| o.is_gt()) {
                        *m = x;
                    }
                }
            }
        }
    }

    fn finalize(&self, acc: &Vec<AggAcc>) -> Tuple {
        acc.iter()
            .map(|a| match a {
                AggAcc::Count(c) => Value::Int(*c as i64),
                AggAcc::Sum(s) => Value::Float(*s),
                AggAcc::Avg(s, c) => Value::Float(*s / *c as f64),
                AggAcc::Min(v) | AggAcc::Max(v) => v.clone(),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Mutable compilation state: the target graph, the catalog, and the map of
/// already-installed subplans (signature → publication point) that enables
/// multi-query sharing.
pub struct CompileContext<'a> {
    /// The running query graph being extended.
    pub graph: &'a QueryGraph,
    /// Stream and relation definitions.
    pub catalog: &'a Catalog,
    /// Already-running subplans by signature.
    pub installed: &'a mut HashMap<String, StreamHandle<Tuple>>,
    /// Nodes newly created by this compilation.
    pub created: usize,
    /// Subplans reused from the running graph.
    pub reused: usize,
}

impl<'a> CompileContext<'a> {
    /// Creates a context.
    pub fn new(
        graph: &'a QueryGraph,
        catalog: &'a Catalog,
        installed: &'a mut HashMap<String, StreamHandle<Tuple>>,
    ) -> Self {
        CompileContext {
            graph,
            catalog,
            installed,
            created: 0,
            reused: 0,
        }
    }
}

/// Compiles `plan` into physical operators, reusing installed subplans;
/// returns the output publication point.
pub fn compile(
    plan: &LogicalPlan,
    ctx: &mut CompileContext<'_>,
) -> Result<StreamHandle<Tuple>, String> {
    let sig = plan.signature();
    if let Some(handle) = ctx.installed.get(&sig) {
        ctx.reused += 1;
        return Ok(handle.clone());
    }
    let handle = compile_new(plan, ctx)?;
    ctx.created += 1;
    ctx.installed.insert(sig, handle.clone());
    Ok(handle)
}

fn compile_new(
    plan: &LogicalPlan,
    ctx: &mut CompileContext<'_>,
) -> Result<StreamHandle<Tuple>, String> {
    match plan {
        LogicalPlan::Stream { name, .. } => {
            let def = ctx
                .catalog
                .stream(name)
                .ok_or_else(|| format!("unknown stream '{name}'"))?;
            let source = (def.factory)();
            Ok(ctx.graph.add_source(name, source))
        }
        LogicalPlan::Window { input, spec } => {
            let in_schema = output_schema(input, ctx.catalog)?;
            let up = compile(input, ctx)?;
            Ok(match spec {
                WindowSpec::Time(d) => {
                    ctx.graph
                        .add_unary(&format!("window[{d}]"), TimeWindow::new(*d), &up)
                }
                WindowSpec::Now => ctx.graph.add_unary("window[now]", NowWindow::new(), &up),
                WindowSpec::Rows(n) => {
                    ctx.graph
                        .add_unary(&format!("window[rows {n}]"), CountWindow::new(*n), &up)
                }
                WindowSpec::PartitionRows(cols, n) => {
                    let idx: Vec<usize> = cols
                        .iter()
                        .map(|c| in_schema.resolve(c))
                        .collect::<Result<_, _>>()?;
                    let key = move |t: &Tuple| -> Vec<Value> {
                        idx.iter().map(|&i| t[i].clone()).collect()
                    };
                    ctx.graph.add_unary(
                        &format!("window[partition rows {n}]"),
                        PartitionedCountWindow::new(*n, key),
                        &up,
                    )
                }
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let in_schema = output_schema(input, ctx.catalog)?;
            let bound = predicate.bind(&in_schema)?;
            let up = compile(input, ctx)?;
            Ok(ctx.graph.add_unary(
                &format!("filter[{predicate}]"),
                Filter::new(move |t: &Tuple| bound.eval(t).truthy()),
                &up,
            ))
        }
        LogicalPlan::Project { input, exprs } => {
            let in_schema = output_schema(input, ctx.catalog)?;
            let bound: Vec<BoundExpr> = exprs
                .iter()
                .map(|(e, _)| e.bind(&in_schema))
                .collect::<Result<_, _>>()?;
            let up = compile(input, ctx)?;
            Ok(ctx.graph.add_unary(
                "project",
                Map::new(move |t: Tuple| bound.iter().map(|b| b.eval(&t)).collect::<Tuple>()),
                &up,
            ))
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => compile_join(left, right, predicate, ctx),
        LogicalPlan::RelationJoin {
            input,
            relation,
            stream_key,
            ..
        } => {
            let in_schema = output_schema(input, ctx.catalog)?;
            let key = stream_key.bind(&in_schema)?;
            let def = ctx
                .catalog
                .relation(relation)
                .ok_or_else(|| format!("unknown relation '{relation}'"))?;
            let shared = def.relation.clone();
            let up = compile(input, ctx)?;
            Ok(ctx.graph.add_unary(
                &format!("reljoin[{relation}]"),
                RelationLookup::new(
                    shared,
                    move |t: &Tuple| key.eval(t),
                    |t: &Tuple, row: &Tuple| {
                        let mut out = t.clone();
                        out.extend(row.iter().cloned());
                        out
                    },
                ),
                &up,
            ))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_schema = output_schema(input, ctx.catalog)?;
            let specs: Vec<(AggFunc, Option<BoundExpr>)> = aggs
                .iter()
                .map(|(a, _)| {
                    Ok((
                        a.func,
                        if a.func == AggFunc::Count {
                            None
                        } else {
                            Some(a.arg.bind(&in_schema)?)
                        },
                    ))
                })
                .collect::<Result<_, String>>()?;
            let tuple_aggs = TupleAggs { specs };
            let up = compile(input, ctx)?;
            if group_by.is_empty() {
                Ok(ctx
                    .graph
                    .add_unary("aggregate", ScalarAggregate::new(tuple_aggs), &up))
            } else {
                let keys: Vec<BoundExpr> = group_by
                    .iter()
                    .map(|(e, _)| e.bind(&in_schema))
                    .collect::<Result<_, _>>()?;
                let key_fn =
                    move |t: &Tuple| -> Vec<Value> { keys.iter().map(|k| k.eval(t)).collect() };
                let grouped = ctx.graph.add_unary(
                    "aggregate[grouped]",
                    GroupedAggregate::new(key_fn, tuple_aggs),
                    &up,
                );
                // Flatten (key, aggs) pairs into plain tuples.
                Ok(ctx.graph.add_unary(
                    "aggregate[flatten]",
                    Map::new(|(k, aggs): (Vec<Value>, Tuple)| {
                        let mut out = k;
                        out.extend(aggs);
                        out
                    }),
                    &grouped,
                ))
            }
        }
        LogicalPlan::Distinct { input } => {
            let up = compile(input, ctx)?;
            Ok(ctx.graph.add_unary("distinct", Distinct::new(), &up))
        }
        LogicalPlan::Union { inputs } => {
            let handles: Vec<StreamHandle<Tuple>> = inputs
                .iter()
                .map(|p| compile(p, ctx))
                .collect::<Result<_, _>>()?;
            Ok(ctx
                .graph
                .add_nary("union", Union::new(handles.len()), &handles))
        }
        LogicalPlan::Difference { left, right } => {
            let l = compile(left, ctx)?;
            let r = compile(right, ctx)?;
            Ok(ctx
                .graph
                .add_binary("difference", Difference::new(), &l, &r))
        }
        LogicalPlan::Every { input, period } => {
            let up = compile(input, ctx)?;
            Ok(ctx
                .graph
                .add_unary(&format!("every[{period}]"), Granularity::new(*period), &up))
        }
        LogicalPlan::Coalesce { input } => {
            let up = compile(input, ctx)?;
            Ok(ctx.graph.add_unary("coalesce", Coalesce::new(), &up))
        }
    }
}

/// Splits a join predicate into equi-key pairs and a residual, then builds
/// a hash ripple join (plus residual filter) or a nested-loop theta join.
fn compile_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    predicate: &Expr,
    ctx: &mut CompileContext<'_>,
) -> Result<StreamHandle<Tuple>, String> {
    let ls = output_schema(left, ctx.catalog)?;
    let rs = output_schema(right, ctx.catalog)?;
    let combined = ls.concat(&rs);

    let mut left_keys: Vec<BoundExpr> = Vec::new();
    let mut right_keys: Vec<BoundExpr> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for conjunct in predicate.conjuncts() {
        if let Expr::Binary(a, BinOp::Eq, b) = &conjunct {
            // `a = b` is an equi-key pair if each side binds against exactly
            // one input schema.
            let (la, ra) = (a.bind(&ls).is_ok(), a.bind(&rs).is_ok());
            let (lb, rb) = (b.bind(&ls).is_ok(), b.bind(&rs).is_ok());
            if la && !ra && rb && !lb {
                left_keys.push(a.bind(&ls)?);
                right_keys.push(b.bind(&rs)?);
                continue;
            }
            if ra && !la && lb && !rb {
                left_keys.push(b.bind(&ls)?);
                right_keys.push(a.bind(&rs)?);
                continue;
            }
        }
        residual.push(conjunct);
    }

    let lh = compile(left, ctx)?;
    let rh = compile(right, ctx)?;

    let combine = |l: &Tuple, r: &Tuple| -> Tuple {
        let mut out = l.clone();
        out.extend(r.iter().cloned());
        out
    };

    let joined = if left_keys.is_empty() {
        // Pure theta join over list sweep areas.
        let pred = Expr::conjoin(std::mem::take(&mut residual)).bind(&combined)?;
        let join: RippleJoin<Tuple, Tuple, Tuple> = RippleJoin::theta(
            move |l: &Tuple, r: &Tuple| {
                let mut t = l.clone();
                t.extend(r.iter().cloned());
                pred.eval(&t).truthy()
            },
            combine,
        );
        ctx.graph.add_binary("join[theta]", join, &lh, &rh)
    } else {
        let lk = left_keys;
        let rk = right_keys;
        let join: RippleJoin<Tuple, Tuple, Tuple> = RippleJoin::equi(
            move |t: &Tuple| lk.iter().map(|k| k.eval(t)).collect::<Vec<Value>>(),
            move |t: &Tuple| rk.iter().map(|k| k.eval(t)).collect::<Vec<Value>>(),
            combine,
        );
        ctx.graph.add_binary("join[hash]", join, &lh, &rh)
    };

    if residual.is_empty() {
        Ok(joined)
    } else {
        let bound = Expr::conjoin(residual).bind(&combined)?;
        Ok(ctx.graph.add_unary(
            "join[residual]",
            Filter::new(move |t: &Tuple| bound.eval(t).truthy()),
            &joined,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggSpec;
    use pipes_graph::io::CollectSink;
    use pipes_graph::io::VecSource;
    use pipes_rel::{Relation, SharedRelation};
    use pipes_time::{Element, Timestamp};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_stream(
            "nums",
            Schema::of(&["k", "v"]),
            100.0,
            Box::new(|| {
                let elems = (0..10i64)
                    .map(|i| {
                        Element::at(
                            vec![Value::Int(i % 3), Value::Int(i)],
                            Timestamp::new(i as u64),
                        )
                    })
                    .collect();
                Box::new(VecSource::new(elems))
            }),
        );
        cat.add_stream(
            "other",
            Schema::of(&["k", "w"]),
            100.0,
            Box::new(|| {
                let elems = (0..6i64)
                    .map(|i| {
                        Element::at(
                            vec![Value::Int(i % 3), Value::Int(i * 100)],
                            Timestamp::new(i as u64),
                        )
                    })
                    .collect();
                Box::new(VecSource::new(elems))
            }),
        );
        let mut rel = Relation::new("dim", |t: &Tuple| t[0].clone());
        rel.bulk_load((0..3i64).map(|k| vec![Value::Int(k), Value::str(format!("name{k}"))]));
        cat.add_relation(
            "dim",
            Schema::of(&["id", "label"]),
            0,
            SharedRelation::new(rel),
        );
        cat
    }

    fn run(plan: &LogicalPlan, cat: &Catalog) -> Vec<Tuple> {
        let graph = QueryGraph::new();
        let mut installed = HashMap::new();
        let mut ctx = CompileContext::new(&graph, cat, &mut installed);
        let handle = compile(plan, &mut ctx).expect("compiles");
        let (sink, buf) = CollectSink::new();
        graph.add_sink("out", sink, &handle);
        graph.run_to_completion(16);
        let res = buf.lock().iter().map(|e| e.payload.clone()).collect();
        res
    }

    fn windowed_stream(name: &str, secs: u64) -> LogicalPlan {
        LogicalPlan::Window {
            input: Box::new(LogicalPlan::Stream {
                name: name.into(),
                alias: None,
            }),
            spec: WindowSpec::Time(pipes_time::Duration::from_ticks(secs)),
        }
    }

    #[test]
    fn schema_computation() {
        let cat = catalog();
        let s = output_schema(
            &LogicalPlan::Stream {
                name: "nums".into(),
                alias: Some("n".into()),
            },
            &cat,
        )
        .unwrap();
        assert_eq!(s.columns(), &["n.k".to_string(), "n.v".to_string()]);
        assert!(output_schema(
            &LogicalPlan::Stream {
                name: "missing".into(),
                alias: None
            },
            &cat
        )
        .is_err());
    }

    #[test]
    fn filter_project_pipeline() {
        let cat = catalog();
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(windowed_stream("nums", 5)),
                predicate: Expr::bin(Expr::col("v"), BinOp::Ge, Expr::lit(8i64)),
            }),
            exprs: vec![(
                Expr::bin(Expr::col("v"), BinOp::Mul, Expr::lit(2i64)),
                "doubled".into(),
            )],
        };
        let out = run(&plan, &cat);
        assert_eq!(out, vec![vec![Value::Int(16)], vec![Value::Int(18)]]);
    }

    #[test]
    fn equi_join_compiles_to_hash_join() {
        let cat = catalog();
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Window {
                input: Box::new(LogicalPlan::Stream {
                    name: "nums".into(),
                    alias: Some("n".into()),
                }),
                spec: WindowSpec::Time(pipes_time::Duration::from_ticks(100)),
            }),
            right: Box::new(LogicalPlan::Window {
                input: Box::new(LogicalPlan::Stream {
                    name: "other".into(),
                    alias: Some("o".into()),
                }),
                spec: WindowSpec::Time(pipes_time::Duration::from_ticks(100)),
            }),
            predicate: Expr::col("n.k").eq(Expr::col("o.k")),
        };
        let out = run(&plan, &cat);
        // 10 nums × 6 others matching on k%3: |pairs| = Σ matches.
        assert!(!out.is_empty());
        for t in &out {
            assert_eq!(t.len(), 4);
            assert_eq!(t[0], t[2], "join keys must match");
        }
        // The physical node is a hash join (named so in the graph).
        let graph = QueryGraph::new();
        let mut installed = HashMap::new();
        let mut ctx = CompileContext::new(&graph, &cat, &mut installed);
        compile(&plan, &mut ctx).unwrap();
        let names: Vec<String> = graph.infos().iter().map(|i| i.name.clone()).collect();
        assert!(names.iter().any(|n| n == "join[hash]"), "{names:?}");
    }

    #[test]
    fn theta_join_with_residual() {
        let cat = catalog();
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Window {
                input: Box::new(LogicalPlan::Stream {
                    name: "nums".into(),
                    alias: Some("n".into()),
                }),
                spec: WindowSpec::Time(pipes_time::Duration::from_ticks(100)),
            }),
            right: Box::new(LogicalPlan::Window {
                input: Box::new(LogicalPlan::Stream {
                    name: "other".into(),
                    alias: Some("o".into()),
                }),
                spec: WindowSpec::Time(pipes_time::Duration::from_ticks(100)),
            }),
            predicate: Expr::bin(Expr::col("n.v"), BinOp::Lt, Expr::col("o.w")),
        };
        let out = run(&plan, &cat);
        for t in &out {
            let v = t[1].as_i64().unwrap();
            let w = t[3].as_i64().unwrap();
            assert!(v < w);
        }
        assert!(!out.is_empty());
    }

    #[test]
    fn grouped_aggregate_flattens() {
        let cat = catalog();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(windowed_stream("nums", 1000)),
            group_by: vec![(Expr::col("k"), "k".into())],
            aggs: vec![
                (
                    AggSpec {
                        func: AggFunc::Count,
                        arg: Expr::lit(0i64),
                    },
                    "cnt".into(),
                ),
                (
                    AggSpec {
                        func: AggFunc::Max,
                        arg: Expr::col("v"),
                    },
                    "maxv".into(),
                ),
            ],
        };
        let schema = output_schema(&plan, &cat).unwrap();
        assert_eq!(schema.columns(), &["k", "cnt", "maxv"]);
        let out = run(&plan, &cat);
        // Final snapshot (everything valid forever after windows of 1000):
        // group 0: {0,3,6,9} → cnt 4, max 9.
        let g0 = out
            .iter()
            .filter(|t| t[0] == Value::Int(0))
            .max_by_key(|t| t[1].clone())
            .unwrap();
        assert_eq!(g0[1], Value::Int(4));
        assert_eq!(g0[2], Value::Int(9));
    }

    #[test]
    fn relation_join_lookup() {
        let cat = catalog();
        let plan = LogicalPlan::RelationJoin {
            input: Box::new(windowed_stream("nums", 5)),
            relation: "dim".into(),
            alias: None,
            stream_key: Expr::col("k"),
        };
        let schema = output_schema(&plan, &cat).unwrap();
        assert_eq!(schema.len(), 4);
        let out = run(&plan, &cat);
        assert_eq!(out.len(), 10); // every event has a dimension row
        for t in &out {
            let k = t[0].as_i64().unwrap();
            assert_eq!(t[3], Value::str(format!("name{k}")));
        }
    }

    #[test]
    fn sharing_reuses_subplans() {
        let cat = catalog();
        let graph = QueryGraph::new();
        let mut installed = HashMap::new();
        let base = windowed_stream("nums", 5);
        let q1 = LogicalPlan::Filter {
            input: Box::new(base.clone()),
            predicate: Expr::bin(Expr::col("v"), BinOp::Gt, Expr::lit(5i64)),
        };
        let q2 = LogicalPlan::Filter {
            input: Box::new(base),
            predicate: Expr::bin(Expr::col("v"), BinOp::Lt, Expr::lit(3i64)),
        };
        let mut ctx = CompileContext::new(&graph, &cat, &mut installed);
        compile(&q1, &mut ctx).unwrap();
        let first_created = ctx.created;
        assert_eq!(first_created, 3); // source, window, filter
        compile(&q2, &mut ctx).unwrap();
        assert_eq!(ctx.created, first_created + 1); // only the new filter
        assert_eq!(ctx.reused, 1); // the shared window subplan
        assert_eq!(graph.len(), 4);
    }
}
