//! Plan persistence: a textual s-expression format for logical plans.
//!
//! The PIPES demo stores query plans built in its GUI as XML files and
//! re-instantiates them later. This module provides the equivalent
//! round-trippable persistence for [`LogicalPlan`]s:
//!
//! ```text
//! (filter (bin Ge (col v) (lit int 15))
//!   (window (time 8000)
//!     (stream s)))
//! ```

use crate::expr::{BinOp, Expr, UnOp};
use crate::plan::{AggFunc, AggSpec, LogicalPlan, WindowSpec};
use crate::value::Value;
use pipes_time::Duration;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Serializes a plan to the textual format.
pub fn to_string(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    write_plan(plan, &mut out);
    out
}

fn write_plan(plan: &LogicalPlan, out: &mut String) {
    match plan {
        LogicalPlan::Stream { name, alias } => match alias {
            Some(a) => {
                let _ = write!(out, "(stream {} {})", atom(name), atom(a));
            }
            None => {
                let _ = write!(out, "(stream {})", atom(name));
            }
        },
        LogicalPlan::Window { input, spec } => {
            out.push_str("(window ");
            match spec {
                WindowSpec::Time(d) => {
                    let _ = write!(out, "(time {})", d.ticks());
                }
                WindowSpec::Rows(n) => {
                    let _ = write!(out, "(rows {n})");
                }
                WindowSpec::PartitionRows(cols, n) => {
                    let _ = write!(out, "(partition-rows {n}");
                    for c in cols {
                        let _ = write!(out, " {}", atom(c));
                    }
                    out.push(')');
                }
                WindowSpec::Now => out.push_str("(now)"),
            }
            out.push(' ');
            write_plan(input, out);
            out.push(')');
        }
        LogicalPlan::Filter { input, predicate } => {
            out.push_str("(filter ");
            write_expr(predicate, out);
            out.push(' ');
            write_plan(input, out);
            out.push(')');
        }
        LogicalPlan::Project { input, exprs } => {
            out.push_str("(project (");
            for (e, n) in exprs {
                out.push_str("(as ");
                write_expr(e, out);
                let _ = write!(out, " {})", atom(n));
            }
            out.push_str(") ");
            write_plan(input, out);
            out.push(')');
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            out.push_str("(join ");
            write_expr(predicate, out);
            out.push(' ');
            write_plan(left, out);
            out.push(' ');
            write_plan(right, out);
            out.push(')');
        }
        LogicalPlan::RelationJoin {
            input,
            relation,
            alias,
            stream_key,
        } => {
            let _ = write!(out, "(rel-join {} ", atom(relation));
            match alias {
                Some(a) => {
                    let _ = write!(out, "{} ", atom(a));
                }
                None => out.push_str("_ "),
            }
            write_expr(stream_key, out);
            out.push(' ');
            write_plan(input, out);
            out.push(')');
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            out.push_str("(aggregate (");
            for (e, n) in group_by {
                out.push_str("(as ");
                write_expr(e, out);
                let _ = write!(out, " {})", atom(n));
            }
            out.push_str(") (");
            for (a, n) in aggs {
                let _ = write!(out, "({} ", a.func.name().to_lowercase());
                write_expr(&a.arg, out);
                let _ = write!(out, " {})", atom(n));
            }
            out.push_str(") ");
            write_plan(input, out);
            out.push(')');
        }
        LogicalPlan::Distinct { input } => {
            out.push_str("(distinct ");
            write_plan(input, out);
            out.push(')');
        }
        LogicalPlan::Union { inputs } => {
            out.push_str("(union");
            for i in inputs {
                out.push(' ');
                write_plan(i, out);
            }
            out.push(')');
        }
        LogicalPlan::Difference { left, right } => {
            out.push_str("(difference ");
            write_plan(left, out);
            out.push(' ');
            write_plan(right, out);
            out.push(')');
        }
        LogicalPlan::Every { input, period } => {
            let _ = write!(out, "(every {} ", period.ticks());
            write_plan(input, out);
            out.push(')');
        }
        LogicalPlan::Coalesce { input } => {
            out.push_str("(coalesce ");
            write_plan(input, out);
            out.push(')');
        }
    }
}

fn write_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Column(c) => {
            let _ = write!(out, "(col {})", atom(c));
        }
        Expr::Literal(v) => match v {
            Value::Null => out.push_str("(lit null)"),
            Value::Bool(b) => {
                let _ = write!(out, "(lit bool {b})");
            }
            Value::Int(i) => {
                let _ = write!(out, "(lit int {i})");
            }
            Value::Float(f) => {
                let _ = write!(out, "(lit float {f})");
            }
            Value::Str(s) => {
                let _ = write!(
                    out,
                    "(lit str \"{}\")",
                    s.replace('\\', "\\\\").replace('"', "\\\"")
                );
            }
        },
        Expr::Binary(l, op, r) => {
            let _ = write!(out, "(bin {:?} ", op);
            write_expr(l, out);
            out.push(' ');
            write_expr(r, out);
            out.push(')');
        }
        Expr::Unary(op, x) => {
            let _ = write!(out, "(un {:?} ", op);
            write_expr(x, out);
            out.push(')');
        }
    }
}

fn atom(s: &str) -> String {
    if !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "._-[]".contains(c))
    {
        s.to_string()
    } else {
        format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum SExp {
    Atom(String),
    Str(String),
    List(Vec<SExp>),
}

struct Reader<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl Reader<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn read(&mut self) -> Result<SExp, String> {
        self.skip_ws();
        match self.chars.peek() {
            None => Err("unexpected end of input".into()),
            Some('(') => {
                self.chars.next();
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.chars.peek() {
                        Some(')') => {
                            self.chars.next();
                            return Ok(SExp::List(items));
                        }
                        None => return Err("unterminated list".into()),
                        _ => items.push(self.read()?),
                    }
                }
            }
            Some(')') => Err("unexpected ')'".into()),
            Some('"') => {
                self.chars.next();
                let mut s = String::new();
                loop {
                    match self.chars.next() {
                        None => return Err("unterminated string".into()),
                        Some('"') => return Ok(SExp::Str(s)),
                        Some('\\') => match self.chars.next() {
                            Some(c) => s.push(c),
                            None => return Err("dangling escape".into()),
                        },
                        Some(c) => s.push(c),
                    }
                }
            }
            Some(_) => {
                let mut s = String::new();
                while let Some(&c) = self.chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' {
                        break;
                    }
                    s.push(c);
                    self.chars.next();
                }
                Ok(SExp::Atom(s))
            }
        }
    }
}

impl SExp {
    fn text(&self) -> Result<&str, String> {
        match self {
            SExp::Atom(s) | SExp::Str(s) => Ok(s),
            SExp::List(_) => Err("expected atom, found list".into()),
        }
    }

    fn list(&self) -> Result<&[SExp], String> {
        match self {
            SExp::List(items) => Ok(items),
            _ => Err(format!("expected list, found {self:?}")),
        }
    }
}

/// Parses a plan from the textual format.
pub fn from_str(input: &str) -> Result<LogicalPlan, String> {
    let sexp = Reader {
        chars: input.chars().peekable(),
    }
    .read()?;
    parse_plan(&sexp)
}

fn parse_plan(s: &SExp) -> Result<LogicalPlan, String> {
    let items = s.list()?;
    let head = items
        .first()
        .ok_or_else(|| "empty plan form".to_string())?
        .text()?;
    match head {
        "stream" => match items.len() {
            2 => Ok(LogicalPlan::Stream {
                name: items[1].text()?.to_string(),
                alias: None,
            }),
            3 => Ok(LogicalPlan::Stream {
                name: items[1].text()?.to_string(),
                alias: Some(items[2].text()?.to_string()),
            }),
            _ => Err("stream takes 1-2 arguments".into()),
        },
        "window" => {
            let spec_items = items[1].list()?;
            let kind = spec_items[0].text()?;
            let spec = match kind {
                "time" => WindowSpec::Time(Duration::from_ticks(parse_u64(&spec_items[1])?)),
                "rows" => WindowSpec::Rows(parse_u64(&spec_items[1])? as usize),
                "now" => WindowSpec::Now,
                "partition-rows" => {
                    let n = parse_u64(&spec_items[1])? as usize;
                    let cols = spec_items[2..]
                        .iter()
                        .map(|c| c.text().map(str::to_string))
                        .collect::<Result<_, _>>()?;
                    WindowSpec::PartitionRows(cols, n)
                }
                other => return Err(format!("unknown window kind '{other}'")),
            };
            Ok(LogicalPlan::Window {
                input: Box::new(parse_plan(&items[2])?),
                spec,
            })
        }
        "filter" => Ok(LogicalPlan::Filter {
            predicate: parse_expr(&items[1])?,
            input: Box::new(parse_plan(&items[2])?),
        }),
        "project" => {
            let exprs = items[1]
                .list()?
                .iter()
                .map(parse_named_expr)
                .collect::<Result<_, _>>()?;
            Ok(LogicalPlan::Project {
                exprs,
                input: Box::new(parse_plan(&items[2])?),
            })
        }
        "join" => Ok(LogicalPlan::Join {
            predicate: parse_expr(&items[1])?,
            left: Box::new(parse_plan(&items[2])?),
            right: Box::new(parse_plan(&items[3])?),
        }),
        "rel-join" => {
            let alias = match items[2].text()? {
                "_" => None,
                a => Some(a.to_string()),
            };
            Ok(LogicalPlan::RelationJoin {
                relation: items[1].text()?.to_string(),
                alias,
                stream_key: parse_expr(&items[3])?,
                input: Box::new(parse_plan(&items[4])?),
            })
        }
        "aggregate" => {
            let group_by = items[1]
                .list()?
                .iter()
                .map(parse_named_expr)
                .collect::<Result<_, _>>()?;
            let aggs = items[2]
                .list()?
                .iter()
                .map(|a| {
                    let parts = a.list()?;
                    let func = match parts[0].text()? {
                        "count" => AggFunc::Count,
                        "sum" => AggFunc::Sum,
                        "avg" => AggFunc::Avg,
                        "min" => AggFunc::Min,
                        "max" => AggFunc::Max,
                        other => return Err(format!("unknown aggregate '{other}'")),
                    };
                    Ok((
                        AggSpec {
                            func,
                            arg: parse_expr(&parts[1])?,
                        },
                        parts[2].text()?.to_string(),
                    ))
                })
                .collect::<Result<_, String>>()?;
            Ok(LogicalPlan::Aggregate {
                group_by,
                aggs,
                input: Box::new(parse_plan(&items[3])?),
            })
        }
        "distinct" => Ok(LogicalPlan::Distinct {
            input: Box::new(parse_plan(&items[1])?),
        }),
        "union" => Ok(LogicalPlan::Union {
            inputs: items[1..]
                .iter()
                .map(parse_plan)
                .collect::<Result<_, _>>()?,
        }),
        "difference" => Ok(LogicalPlan::Difference {
            left: Box::new(parse_plan(&items[1])?),
            right: Box::new(parse_plan(&items[2])?),
        }),
        "every" => Ok(LogicalPlan::Every {
            period: Duration::from_ticks(parse_u64(&items[1])?),
            input: Box::new(parse_plan(&items[2])?),
        }),
        "coalesce" => Ok(LogicalPlan::Coalesce {
            input: Box::new(parse_plan(&items[1])?),
        }),
        other => Err(format!("unknown plan form '{other}'")),
    }
}

fn parse_named_expr(s: &SExp) -> Result<(Expr, String), String> {
    let items = s.list()?;
    if items.len() != 3 || items[0].text()? != "as" {
        return Err("expected (as <expr> <name>)".into());
    }
    Ok((parse_expr(&items[1])?, items[2].text()?.to_string()))
}

fn parse_expr(s: &SExp) -> Result<Expr, String> {
    let items = s.list()?;
    match items[0].text()? {
        "col" => Ok(Expr::Column(items[1].text()?.to_string())),
        "lit" => {
            let v = match items[1].text()? {
                "null" => Value::Null,
                "bool" => Value::Bool(items[2].text()? == "true"),
                "int" => Value::Int(
                    items[2]
                        .text()?
                        .parse()
                        .map_err(|e| format!("bad int: {e}"))?,
                ),
                "float" => Value::Float(
                    items[2]
                        .text()?
                        .parse()
                        .map_err(|e| format!("bad float: {e}"))?,
                ),
                "str" => Value::str(items[2].text()?),
                other => return Err(format!("unknown literal kind '{other}'")),
            };
            Ok(Expr::Literal(v))
        }
        "bin" => {
            let op = match items[1].text()? {
                "And" => BinOp::And,
                "Or" => BinOp::Or,
                "Eq" => BinOp::Eq,
                "Ne" => BinOp::Ne,
                "Lt" => BinOp::Lt,
                "Le" => BinOp::Le,
                "Gt" => BinOp::Gt,
                "Ge" => BinOp::Ge,
                "Add" => BinOp::Add,
                "Sub" => BinOp::Sub,
                "Mul" => BinOp::Mul,
                "Div" => BinOp::Div,
                "Rem" => BinOp::Rem,
                other => return Err(format!("unknown operator '{other}'")),
            };
            Ok(Expr::Binary(
                Box::new(parse_expr(&items[2])?),
                op,
                Box::new(parse_expr(&items[3])?),
            ))
        }
        "un" => {
            let op = match items[1].text()? {
                "Not" => UnOp::Not,
                "Neg" => UnOp::Neg,
                other => return Err(format!("unknown unary operator '{other}'")),
            };
            Ok(Expr::Unary(op, Box::new(parse_expr(&items[2])?)))
        }
        other => Err(format!("unknown expression form '{other}'")),
    }
}

fn parse_u64(s: &SExp) -> Result<u64, String> {
    s.text()?.parse().map_err(|e| format!("bad number: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(plan: &LogicalPlan) {
        let text = to_string(plan);
        let back = from_str(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(&back, plan, "round-trip changed plan:\n{text}");
    }

    #[test]
    fn roundtrip_simple_chain() {
        roundtrip(&LogicalPlan::Filter {
            predicate: Expr::bin(Expr::col("v"), BinOp::Ge, Expr::lit(15i64)),
            input: Box::new(LogicalPlan::Window {
                input: Box::new(LogicalPlan::Stream {
                    name: "s".into(),
                    alias: Some("x".into()),
                }),
                spec: WindowSpec::Time(Duration::from_ticks(8000)),
            }),
        });
    }

    #[test]
    fn roundtrip_all_node_kinds() {
        let base = LogicalPlan::Window {
            input: Box::new(LogicalPlan::Stream {
                name: "s".into(),
                alias: None,
            }),
            spec: WindowSpec::PartitionRows(vec!["k".into()], 7),
        };
        roundtrip(&LogicalPlan::Every {
            period: Duration::from_ticks(100),
            input: Box::new(LogicalPlan::Coalesce {
                input: Box::new(LogicalPlan::Aggregate {
                    group_by: vec![(Expr::col("k"), "k".into())],
                    aggs: vec![
                        (
                            AggSpec {
                                func: AggFunc::Max,
                                arg: Expr::col("v"),
                            },
                            "m".into(),
                        ),
                        (
                            AggSpec {
                                func: AggFunc::Count,
                                arg: Expr::lit(0i64),
                            },
                            "c".into(),
                        ),
                    ],
                    input: Box::new(LogicalPlan::Distinct {
                        input: Box::new(base.clone()),
                    }),
                }),
            }),
        });
        roundtrip(&LogicalPlan::Union {
            inputs: vec![base.clone(), base.clone()],
        });
        roundtrip(&LogicalPlan::Difference {
            left: Box::new(base.clone()),
            right: Box::new(base.clone()),
        });
        roundtrip(&LogicalPlan::Join {
            predicate: Expr::col("a").eq(Expr::col("b")),
            left: Box::new(base.clone()),
            right: Box::new(base.clone()),
        });
        roundtrip(&LogicalPlan::RelationJoin {
            relation: "dim".into(),
            alias: None,
            stream_key: Expr::col("k"),
            input: Box::new(base.clone()),
        });
        roundtrip(&LogicalPlan::Project {
            exprs: vec![(
                Expr::Unary(UnOp::Neg, Box::new(Expr::col("v"))),
                "neg".into(),
            )],
            input: Box::new(base),
        });
    }

    #[test]
    fn roundtrip_literals_and_strings() {
        roundtrip(&LogicalPlan::Filter {
            predicate: Expr::col("name")
                .eq(Expr::lit("weird \"quoted\" na\\me"))
                .and(Expr::bin(Expr::col("f"), BinOp::Lt, Expr::lit(2.5f64)))
                .and(Expr::col("b").eq(Expr::Literal(Value::Bool(true))))
                .and(Expr::col("n").eq(Expr::Literal(Value::Null))),
            input: Box::new(LogicalPlan::Stream {
                name: "s".into(),
                alias: None,
            }),
        });
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str("(unknown-node)").is_err());
        assert!(from_str("(stream").is_err());
        assert!(from_str("").is_err());
        assert!(from_str("(filter (bogus) (stream s))").is_err());
    }
}
