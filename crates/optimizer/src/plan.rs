//! The logical plan algebra.

use crate::expr::Expr;
use pipes_time::Duration;
use std::fmt;
use std::fmt::Write as _;

/// Window specification attached to a stream (CQL bracket syntax).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum WindowSpec {
    /// `[RANGE d]` — time-based sliding window.
    Time(Duration),
    /// `[ROWS n]` — count-based sliding window.
    Rows(usize),
    /// `[PARTITION BY cols ROWS n]` — per-partition count window.
    PartitionRows(Vec<String>, usize),
    /// `[NOW]` — instantaneous validity.
    Now,
}

/// Aggregate functions of the CQL subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Sum of a numeric expression.
    Sum,
    /// Mean of a numeric expression.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFunc {
    /// Surface syntax.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate call: function + argument expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Its argument (ignored by `COUNT`).
    pub arg: Expr,
}

/// A logical query plan over streams and relations.
///
/// The algebra is deliberately the paper's: windows assign validity
/// intervals, everything above them is the extended relational algebra with
/// snapshot semantics, plus the granularity operator (`Every`) for periodic
/// result reporting.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LogicalPlan {
    /// A registered stream, optionally aliased.
    Stream {
        /// Catalog name.
        name: String,
        /// Alias for column qualification.
        alias: Option<String>,
    },
    /// Window assignment over a stream input.
    Window {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The window.
        spec: WindowSpec,
    },
    /// Selection.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row predicate.
        predicate: Expr,
    },
    /// Projection: output columns `(expr AS name)`.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions and names.
        exprs: Vec<(Expr, String)>,
    },
    /// Binary join with an arbitrary predicate.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join predicate over the concatenated schema.
        predicate: Expr,
    },
    /// Stream–relation join: point lookups into a catalog relation.
    RelationJoin {
        /// Stream input.
        input: Box<LogicalPlan>,
        /// Catalog relation name.
        relation: String,
        /// Alias for the relation's columns.
        alias: Option<String>,
        /// Stream-side key expression matched against the relation's
        /// primary key.
        stream_key: Expr,
    },
    /// Grouped or scalar aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping expressions with output names (empty = scalar).
        group_by: Vec<(Expr, String)>,
        /// Aggregate calls with output names.
        aggs: Vec<(AggSpec, String)>,
    },
    /// Snapshot duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Additive bag union.
    Union {
        /// Input plans (same schema).
        inputs: Vec<LogicalPlan>,
    },
    /// Snapshot bag difference (monus).
    Difference {
        /// Minuend.
        left: Box<LogicalPlan>,
        /// Subtrahend.
        right: Box<LogicalPlan>,
    },
    /// Granularity: sample results every `period` (CQL `EVERY`/`SLIDE`).
    Every {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sampling period.
        period: Duration,
    },
    /// Interval coalescing (rate reduction; inserted by the optimizer).
    Coalesce {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Children of this node.
    pub fn inputs(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Stream { .. } => vec![],
            LogicalPlan::Window { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::RelationJoin { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Every { input, .. }
            | LogicalPlan::Coalesce { input } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::Difference { left, right } => {
                vec![left, right]
            }
            LogicalPlan::Union { inputs } => inputs.iter().collect(),
        }
    }

    /// A canonical, deterministic signature of the (sub)plan — the key the
    /// multi-query optimizer uses to detect shareable subplans in the
    /// running graph.
    pub fn signature(&self) -> String {
        let mut s = String::new();
        self.write_sig(&mut s);
        s
    }

    fn write_sig(&self, s: &mut String) {
        match self {
            LogicalPlan::Stream { name, alias } => {
                let _ = write!(s, "stream({name}");
                if let Some(a) = alias {
                    let _ = write!(s, " as {a}");
                }
                s.push(')');
            }
            LogicalPlan::Window { input, spec } => {
                let _ = write!(s, "window({spec:?} over ");
                input.write_sig(s);
                s.push(')');
            }
            LogicalPlan::Filter { input, predicate } => {
                let _ = write!(s, "filter({predicate} over ");
                input.write_sig(s);
                s.push(')');
            }
            LogicalPlan::Project { input, exprs } => {
                s.push_str("project(");
                for (e, n) in exprs {
                    let _ = write!(s, "{e} as {n},");
                }
                s.push_str(" over ");
                input.write_sig(s);
                s.push(')');
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
            } => {
                let _ = write!(s, "join({predicate} over ");
                left.write_sig(s);
                s.push(',');
                right.write_sig(s);
                s.push(')');
            }
            LogicalPlan::RelationJoin {
                input,
                relation,
                alias,
                stream_key,
            } => {
                let _ = write!(s, "reljoin({relation} as {alias:?} on {stream_key} over ");
                input.write_sig(s);
                s.push(')');
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                s.push_str("agg(");
                for (e, n) in group_by {
                    let _ = write!(s, "by {e} as {n},");
                }
                for (a, n) in aggs {
                    let _ = write!(s, "{}({}) as {n},", a.func.name(), a.arg);
                }
                s.push_str(" over ");
                input.write_sig(s);
                s.push(')');
            }
            LogicalPlan::Distinct { input } => {
                s.push_str("distinct(");
                input.write_sig(s);
                s.push(')');
            }
            LogicalPlan::Union { inputs } => {
                s.push_str("union(");
                for i in inputs {
                    i.write_sig(s);
                    s.push(',');
                }
                s.push(')');
            }
            LogicalPlan::Difference { left, right } => {
                s.push_str("difference(");
                left.write_sig(s);
                s.push(',');
                right.write_sig(s);
                s.push(')');
            }
            LogicalPlan::Every { input, period } => {
                let _ = write!(s, "every({period} over ");
                input.write_sig(s);
                s.push(')');
            }
            LogicalPlan::Coalesce { input } => {
                s.push_str("coalesce(");
                input.write_sig(s);
                s.push(')');
            }
        }
    }

    /// One-line node label (for pretty-printing and Graphviz).
    pub fn label(&self) -> String {
        match self {
            LogicalPlan::Stream { name, alias } => match alias {
                Some(a) => format!("Stream {name} AS {a}"),
                None => format!("Stream {name}"),
            },
            LogicalPlan::Window { spec, .. } => format!("Window {spec:?}"),
            LogicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            LogicalPlan::Project { exprs, .. } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                format!("Project {}", cols.join(", "))
            }
            LogicalPlan::Join { predicate, .. } => format!("Join on {predicate}"),
            LogicalPlan::RelationJoin {
                relation,
                stream_key,
                ..
            } => format!("RelJoin {relation} on {stream_key}"),
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let g: Vec<String> = group_by.iter().map(|(e, _)| e.to_string()).collect();
                let a: Vec<String> = aggs
                    .iter()
                    .map(|(s, n)| format!("{}({}) AS {n}", s.func.name(), s.arg))
                    .collect();
                if g.is_empty() {
                    format!("Aggregate {}", a.join(", "))
                } else {
                    format!("Aggregate [{}] {}", g.join(", "), a.join(", "))
                }
            }
            LogicalPlan::Distinct { .. } => "Distinct".into(),
            LogicalPlan::Union { inputs } => format!("Union x{}", inputs.len()),
            LogicalPlan::Difference { .. } => "Difference".into(),
            LogicalPlan::Every { period, .. } => format!("Every {period}"),
            LogicalPlan::Coalesce { .. } => "Coalesce".into(),
        }
    }

    /// Indented multi-line rendering.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out
    }

    fn pretty_into(&self, out: &mut String, depth: usize) {
        let _ = writeln!(out, "{}{}", "  ".repeat(depth), self.label());
        for child in self.inputs() {
            child.pretty_into(out, depth + 1);
        }
    }

    /// Graphviz rendering of the plan DAG (the paper's visual plan GUI,
    /// reproduced as `dot` output).
    pub fn render_dot(&self) -> String {
        let mut out = String::from(
            "digraph plan {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n",
        );
        let mut counter = 0usize;
        self.dot_into(&mut out, &mut counter);
        out.push_str("}\n");
        out
    }

    fn dot_into(&self, out: &mut String, counter: &mut usize) -> usize {
        let me = *counter;
        *counter += 1;
        let label = self.label().replace('"', "'");
        let _ = writeln!(out, "  n{me} [label=\"{label}\"];");
        for child in self.inputs() {
            let c = child.dot_into(out, counter);
            let _ = writeln!(out, "  n{c} -> n{me};");
        }
        me
    }

    /// Number of nodes in the plan.
    pub fn node_count(&self) -> usize {
        1 + self.inputs().iter().map(|c| c.node_count()).sum::<usize>()
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_plan() -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Window {
                input: Box::new(LogicalPlan::Stream {
                    name: "traffic".into(),
                    alias: None,
                }),
                spec: WindowSpec::Time(Duration::from_secs(60)),
            }),
            predicate: Expr::bin(Expr::col("speed"), crate::BinOp::Gt, Expr::lit(50i64)),
        }
    }

    #[test]
    fn signatures_are_stable_and_distinguishing() {
        let a = demo_plan();
        let b = demo_plan();
        assert_eq!(a.signature(), b.signature());
        let c = LogicalPlan::Distinct {
            input: Box::new(demo_plan()),
        };
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn pretty_shows_structure() {
        let p = demo_plan().pretty();
        let lines: Vec<&str> = p.lines().collect();
        assert!(lines[0].starts_with("Filter"));
        assert!(lines[1].trim_start().starts_with("Window"));
        assert!(lines[2].trim_start().starts_with("Stream traffic"));
    }

    #[test]
    fn dot_renders_every_node_and_edge() {
        let dot = demo_plan().render_dot();
        assert_eq!(dot.matches("label=").count(), 3);
        assert_eq!(dot.matches("->").count(), 2);
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn node_count() {
        assert_eq!(demo_plan().node_count(), 3);
    }
}
