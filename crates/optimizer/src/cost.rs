//! The rate/selectivity cost model.
//!
//! Stream plans run forever, so cost is *rate-based*: each operator's cost
//! is the work it performs per unit of time, driven by its input rates.
//! Rates start from catalog hints and shrink through selectivity estimates;
//! a multi-query installation additionally discounts subplans that already
//! run in the graph (their cost is sunk).
//!
//! When a [`LiveCostSource`] is supplied ([`estimate_live`]), rates come
//! from the running graph's metadata plane instead of static hints: a
//! bound stream or installed subplan whose [`MetaSnapshot`] estimate is
//! measured or topology-derived overrides the structural rate at that
//! plan node, and everything above it is costed from the observed value.
//! Prior-confidence estimates are ignored — a prior is the same static
//! guess the structural model already makes, so falling back keeps the
//! two models consistent.

use crate::catalog::Catalog;
use crate::expr::{BinOp, Expr};
use crate::plan::LogicalPlan;
use pipes_graph::{Confidence, MetaSnapshot, NodeId};
use std::collections::{HashMap, HashSet};

/// Estimated steady-state behaviour of a (sub)plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanEstimate {
    /// Output elements per time unit.
    pub rate: f64,
    /// Total processing cost per time unit (including children).
    pub cost: f64,
}

/// Heuristic selectivity of a predicate.
pub fn selectivity(pred: &Expr) -> f64 {
    match pred {
        Expr::Binary(l, BinOp::And, r) => selectivity(l) * selectivity(r),
        Expr::Binary(l, BinOp::Or, r) => (selectivity(l) + selectivity(r)).min(1.0),
        Expr::Binary(_, BinOp::Eq, _) => 0.1,
        Expr::Binary(_, BinOp::Ne, _) => 0.9,
        Expr::Binary(_, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, _) => 0.4,
        Expr::Unary(crate::expr::UnOp::Not, e) => 1.0 - selectivity(e),
        _ => 0.5,
    }
}

/// Binds plan fragments to nodes of a running graph so the cost model can
/// read their observed rates from a [`MetaSnapshot`] instead of static
/// hints. Build one per costing round (snapshots are point-in-time).
pub struct LiveCostSource<'a> {
    snap: &'a MetaSnapshot,
    streams: HashMap<String, NodeId>,
    subplans: HashMap<String, NodeId>,
}

impl<'a> LiveCostSource<'a> {
    /// Creates a source over `snap` with no bindings.
    pub fn new(snap: &'a MetaSnapshot) -> Self {
        LiveCostSource {
            snap,
            streams: HashMap::new(),
            subplans: HashMap::new(),
        }
    }

    /// Binds catalog stream `name` to graph node `node` (its source node).
    pub fn bind_stream(&mut self, name: &str, node: NodeId) {
        self.streams.insert(name.to_string(), node);
    }

    /// Binds an installed subplan (by [`LogicalPlan::signature`]) to the
    /// graph node publishing its result.
    pub fn bind_subplan(&mut self, signature: &str, node: NodeId) {
        self.subplans.insert(signature.to_string(), node);
    }

    /// Observed output rate of a bound node, if its estimate carries any
    /// measurement (priors fall back to the structural model).
    fn observed_rate(&self, node: NodeId) -> Option<f64> {
        self.snap
            .get(node)
            .filter(|e| e.confidence != Confidence::Prior)
            .map(|e| e.out_rate)
    }

    /// Live output rate of catalog stream `name`, when bound and warm.
    pub fn stream_rate(&self, name: &str) -> Option<f64> {
        self.streams.get(name).and_then(|n| self.observed_rate(*n))
    }

    /// Live output rate of an installed subplan, when bound and warm.
    pub fn subplan_rate(&self, signature: &str) -> Option<f64> {
        self.subplans
            .get(signature)
            .and_then(|n| self.observed_rate(*n))
    }
}

/// Estimates rate and cost of `plan`, treating subplans whose signature is
/// in `sunk` as already running (zero cost, but their output rate still
/// feeds parents).
pub fn estimate_with_sunk(
    plan: &LogicalPlan,
    catalog: &Catalog,
    sunk: &HashSet<String>,
) -> PlanEstimate {
    estimate_node(plan, catalog, sunk, None)
}

/// Estimates rate and cost of `plan` against the running graph: fragments
/// bound in `live` with warm estimates are costed at their observed output
/// rates; everything else falls back to the structural model.
pub fn estimate_live(
    plan: &LogicalPlan,
    catalog: &Catalog,
    sunk: &HashSet<String>,
    live: &LiveCostSource<'_>,
) -> PlanEstimate {
    estimate_node(plan, catalog, sunk, Some(live))
}

fn estimate_node(
    plan: &LogicalPlan,
    catalog: &Catalog,
    sunk: &HashSet<String>,
    live: Option<&LiveCostSource<'_>>,
) -> PlanEstimate {
    let mut est = estimate_structural(plan, catalog, sunk, live);
    if let Some(live) = live {
        // An installed fragment's observed rate beats every structural
        // guess below it; the cost of reaching that rate stays structural
        // (and is zeroed just below when the fragment is sunk).
        if let Some(rate) = live.subplan_rate(&plan.signature()) {
            est.rate = rate;
        }
    }
    if sunk.contains(&plan.signature()) {
        est.cost = 0.0;
    }
    est
}

fn estimate_structural(
    plan: &LogicalPlan,
    catalog: &Catalog,
    sunk: &HashSet<String>,
    live: Option<&LiveCostSource<'_>>,
) -> PlanEstimate {
    let child = |p: &LogicalPlan| estimate_node(p, catalog, sunk, live);
    match plan {
        LogicalPlan::Stream { name, .. } => PlanEstimate {
            rate: live
                .and_then(|l| l.stream_rate(name))
                .unwrap_or_else(|| catalog.stream(name).map_or(1000.0, |s| s.rate_hint)),
            cost: 0.0,
        },
        LogicalPlan::Window { input, .. } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate,
                cost: i.cost + i.rate * 0.5,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate * selectivity(predicate),
                cost: i.cost + i.rate,
            }
        }
        LogicalPlan::Project { input, exprs } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate,
                cost: i.cost + i.rate * 0.2 * exprs.len() as f64,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            let (l, r) = (child(left), child(right));
            let out = (l.rate * r.rate * selectivity(predicate) * 0.01).max(0.0);
            PlanEstimate {
                rate: out,
                cost: l.cost + r.cost + (l.rate + r.rate) * 2.0 + out,
            }
        }
        LogicalPlan::RelationJoin { input, .. } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate,
                cost: i.cost + i.rate * 1.5,
            }
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let i = child(input);
            let factor = if group_by.is_empty() { 0.5 } else { 0.8 };
            PlanEstimate {
                rate: i.rate * factor,
                cost: i.cost + i.rate * 2.0,
            }
        }
        LogicalPlan::Distinct { input } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate * 0.5,
                cost: i.cost + i.rate,
            }
        }
        LogicalPlan::Union { inputs } => {
            let ests: Vec<PlanEstimate> = inputs.iter().map(child).collect();
            PlanEstimate {
                rate: ests.iter().map(|e| e.rate).sum(),
                cost: ests.iter().map(|e| e.cost + e.rate * 0.2).sum(),
            }
        }
        LogicalPlan::Difference { left, right } => {
            let (l, r) = (child(left), child(right));
            PlanEstimate {
                rate: l.rate,
                cost: l.cost + r.cost + (l.rate + r.rate) * 1.5,
            }
        }
        LogicalPlan::Every { input, .. } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate * 0.1,
                cost: i.cost + i.rate * 0.5,
            }
        }
        LogicalPlan::Coalesce { input } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate * 0.3,
                cost: i.cost + i.rate * 0.5,
            }
        }
    }
}

/// Estimates a plan with nothing sunk.
pub fn estimate(plan: &LogicalPlan, catalog: &Catalog) -> PlanEstimate {
    estimate_with_sunk(plan, catalog, &HashSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::WindowSpec;
    use crate::value::Schema;
    use pipes_time::Duration;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_stream(
            "s",
            Schema::of(&["a"]),
            1000.0,
            Box::new(|| unreachable!("cost tests never build sources")),
        );
        cat
    }

    fn stream() -> LogicalPlan {
        LogicalPlan::Stream {
            name: "s".into(),
            alias: None,
        }
    }

    #[test]
    fn selectivity_heuristics() {
        let eq = Expr::col("a").eq(Expr::lit(1i64));
        assert!((selectivity(&eq) - 0.1).abs() < 1e-12);
        let both = eq.clone().and(eq.clone());
        assert!((selectivity(&both) - 0.01).abs() < 1e-12);
        let cmp = Expr::bin(Expr::col("a"), BinOp::Gt, Expr::lit(1i64));
        assert!((selectivity(&cmp) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn filter_early_is_cheaper_than_filter_late() {
        let cat = catalog();
        let pred = Expr::col("a").eq(Expr::lit(1i64));
        // filter below the window...
        let early = LogicalPlan::Window {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(stream()),
                predicate: pred.clone(),
            }),
            spec: WindowSpec::Time(Duration::from_secs(1)),
        };
        // ...vs above it.
        let late = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Window {
                input: Box::new(stream()),
                spec: WindowSpec::Time(Duration::from_secs(1)),
            }),
            predicate: pred,
        };
        let (e, l) = (estimate(&early, &cat), estimate(&late, &cat));
        assert!(e.cost < l.cost, "early {} !< late {}", e.cost, l.cost);
        assert!((e.rate - l.rate).abs() < 1e-9, "same output rate");
    }

    #[test]
    fn sunk_subplans_cost_nothing() {
        let cat = catalog();
        let plan = LogicalPlan::Filter {
            input: Box::new(stream()),
            predicate: Expr::col("a").eq(Expr::lit(1i64)),
        };
        let full = estimate(&plan, &cat);
        let mut sunk = HashSet::new();
        sunk.insert(plan.signature());
        let discounted = estimate_with_sunk(&plan, &cat, &sunk);
        assert_eq!(discounted.cost, 0.0);
        assert_eq!(discounted.rate, full.rate);
    }

    #[test]
    fn unknown_stream_gets_default_rate() {
        let cat = Catalog::new();
        let e = estimate(&stream(), &cat);
        assert_eq!(e.rate, 1000.0);
    }
}
