//! The rate/selectivity cost model.
//!
//! Stream plans run forever, so cost is *rate-based*: each operator's cost
//! is the work it performs per unit of time, driven by its input rates.
//! Rates start from catalog hints and shrink through selectivity estimates;
//! a multi-query installation additionally discounts subplans that already
//! run in the graph (their cost is sunk).

use crate::catalog::Catalog;
use crate::expr::{BinOp, Expr};
use crate::plan::LogicalPlan;
use std::collections::HashSet;

/// Estimated steady-state behaviour of a (sub)plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanEstimate {
    /// Output elements per time unit.
    pub rate: f64,
    /// Total processing cost per time unit (including children).
    pub cost: f64,
}

/// Heuristic selectivity of a predicate.
pub fn selectivity(pred: &Expr) -> f64 {
    match pred {
        Expr::Binary(l, BinOp::And, r) => selectivity(l) * selectivity(r),
        Expr::Binary(l, BinOp::Or, r) => (selectivity(l) + selectivity(r)).min(1.0),
        Expr::Binary(_, BinOp::Eq, _) => 0.1,
        Expr::Binary(_, BinOp::Ne, _) => 0.9,
        Expr::Binary(_, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, _) => 0.4,
        Expr::Unary(crate::expr::UnOp::Not, e) => 1.0 - selectivity(e),
        _ => 0.5,
    }
}

/// Estimates rate and cost of `plan`, treating subplans whose signature is
/// in `sunk` as already running (zero cost, but their output rate still
/// feeds parents).
pub fn estimate_with_sunk(
    plan: &LogicalPlan,
    catalog: &Catalog,
    sunk: &HashSet<String>,
) -> PlanEstimate {
    if sunk.contains(&plan.signature()) {
        let mut free = estimate_with_sunk_inner(plan, catalog, sunk);
        free.cost = 0.0;
        return free;
    }
    estimate_with_sunk_inner(plan, catalog, sunk)
}

fn estimate_with_sunk_inner(
    plan: &LogicalPlan,
    catalog: &Catalog,
    sunk: &HashSet<String>,
) -> PlanEstimate {
    let child = |p: &LogicalPlan| estimate_with_sunk(p, catalog, sunk);
    match plan {
        LogicalPlan::Stream { name, .. } => PlanEstimate {
            rate: catalog.stream(name).map_or(1000.0, |s| s.rate_hint),
            cost: 0.0,
        },
        LogicalPlan::Window { input, .. } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate,
                cost: i.cost + i.rate * 0.5,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate * selectivity(predicate),
                cost: i.cost + i.rate,
            }
        }
        LogicalPlan::Project { input, exprs } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate,
                cost: i.cost + i.rate * 0.2 * exprs.len() as f64,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
        } => {
            let (l, r) = (child(left), child(right));
            let out = (l.rate * r.rate * selectivity(predicate) * 0.01).max(0.0);
            PlanEstimate {
                rate: out,
                cost: l.cost + r.cost + (l.rate + r.rate) * 2.0 + out,
            }
        }
        LogicalPlan::RelationJoin { input, .. } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate,
                cost: i.cost + i.rate * 1.5,
            }
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let i = child(input);
            let factor = if group_by.is_empty() { 0.5 } else { 0.8 };
            PlanEstimate {
                rate: i.rate * factor,
                cost: i.cost + i.rate * 2.0,
            }
        }
        LogicalPlan::Distinct { input } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate * 0.5,
                cost: i.cost + i.rate,
            }
        }
        LogicalPlan::Union { inputs } => {
            let ests: Vec<PlanEstimate> = inputs.iter().map(child).collect();
            PlanEstimate {
                rate: ests.iter().map(|e| e.rate).sum(),
                cost: ests.iter().map(|e| e.cost + e.rate * 0.2).sum(),
            }
        }
        LogicalPlan::Difference { left, right } => {
            let (l, r) = (child(left), child(right));
            PlanEstimate {
                rate: l.rate,
                cost: l.cost + r.cost + (l.rate + r.rate) * 1.5,
            }
        }
        LogicalPlan::Every { input, .. } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate * 0.1,
                cost: i.cost + i.rate * 0.5,
            }
        }
        LogicalPlan::Coalesce { input } => {
            let i = child(input);
            PlanEstimate {
                rate: i.rate * 0.3,
                cost: i.cost + i.rate * 0.5,
            }
        }
    }
}

/// Estimates a plan with nothing sunk.
pub fn estimate(plan: &LogicalPlan, catalog: &Catalog) -> PlanEstimate {
    estimate_with_sunk(plan, catalog, &HashSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::WindowSpec;
    use crate::value::Schema;
    use pipes_time::Duration;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_stream(
            "s",
            Schema::of(&["a"]),
            1000.0,
            Box::new(|| unreachable!("cost tests never build sources")),
        );
        cat
    }

    fn stream() -> LogicalPlan {
        LogicalPlan::Stream {
            name: "s".into(),
            alias: None,
        }
    }

    #[test]
    fn selectivity_heuristics() {
        let eq = Expr::col("a").eq(Expr::lit(1i64));
        assert!((selectivity(&eq) - 0.1).abs() < 1e-12);
        let both = eq.clone().and(eq.clone());
        assert!((selectivity(&both) - 0.01).abs() < 1e-12);
        let cmp = Expr::bin(Expr::col("a"), BinOp::Gt, Expr::lit(1i64));
        assert!((selectivity(&cmp) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn filter_early_is_cheaper_than_filter_late() {
        let cat = catalog();
        let pred = Expr::col("a").eq(Expr::lit(1i64));
        // filter below the window...
        let early = LogicalPlan::Window {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(stream()),
                predicate: pred.clone(),
            }),
            spec: WindowSpec::Time(Duration::from_secs(1)),
        };
        // ...vs above it.
        let late = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Window {
                input: Box::new(stream()),
                spec: WindowSpec::Time(Duration::from_secs(1)),
            }),
            predicate: pred,
        };
        let (e, l) = (estimate(&early, &cat), estimate(&late, &cat));
        assert!(e.cost < l.cost, "early {} !< late {}", e.cost, l.cost);
        assert!((e.rate - l.rate).abs() < 1e-9, "same output rate");
    }

    #[test]
    fn sunk_subplans_cost_nothing() {
        let cat = catalog();
        let plan = LogicalPlan::Filter {
            input: Box::new(stream()),
            predicate: Expr::col("a").eq(Expr::lit(1i64)),
        };
        let full = estimate(&plan, &cat);
        let mut sunk = HashSet::new();
        sunk.insert(plan.signature());
        let discounted = estimate_with_sunk(&plan, &cat, &sunk);
        assert_eq!(discounted.cost, 0.0);
        assert_eq!(discounted.rate, full.rate);
    }

    #[test]
    fn unknown_stream_gets_default_rate() {
        let cat = Catalog::new();
        let e = estimate(&stream(), &cat);
        assert_eq!(e.rate, 1000.0);
    }
}
