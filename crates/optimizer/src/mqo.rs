//! The multi-query optimizer.

use crate::catalog::Catalog;
use crate::compile::{compile, output_schema, CompileContext};
use crate::cost::{estimate_live, estimate_with_sunk, LiveCostSource, PlanEstimate};
use crate::plan::LogicalPlan;
use crate::rules;
use crate::value::{Schema, Tuple};
use pipes_graph::{MetaSnapshot, NodeId, QueryGraph, StreamHandle};
use std::collections::{HashMap, HashSet};

/// Outcome of installing one query into the running graph.
#[derive(Debug)]
pub struct InstallReport {
    /// Publication point of the query's result stream.
    pub handle: StreamHandle<Tuple>,
    /// Output schema.
    pub schema: Schema,
    /// The plan variant that was chosen.
    pub chosen: LogicalPlan,
    /// Its estimated marginal cost (shared subplans are free).
    pub estimate: PlanEstimate,
    /// Snapshot-equivalent variants that were considered.
    pub variants_considered: usize,
    /// Physical nodes newly created.
    pub created: usize,
    /// Existing subplans reused via publish–subscribe.
    pub reused: usize,
}

/// The rule-based multi-query optimizer of PIPES.
///
/// For every new query it heuristically enumerates snapshot-equivalent plan
/// variants, probes each against the currently running query graph (whose
/// installed subplans are tracked by signature), picks the best-matching
/// plan by marginal cost, and splices only the missing operators into the
/// graph via the publish–subscribe architecture.
pub struct Optimizer {
    installed: HashMap<String, StreamHandle<Tuple>>,
}

impl Default for Optimizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer {
    /// Creates an optimizer with an empty running-plan index.
    pub fn new() -> Self {
        Optimizer {
            installed: HashMap::new(),
        }
    }

    /// Number of installed (shareable) subplans.
    pub fn installed_count(&self) -> usize {
        self.installed.len()
    }

    /// Which subplans of `plan` already run (by signature).
    fn sunk_signatures(&self, plan: &LogicalPlan, out: &mut HashSet<String>) {
        let sig = plan.signature();
        if self.installed.contains_key(&sig) {
            out.insert(sig);
            // Children are covered by the shared node transitively.
            return;
        }
        for child in plan.inputs() {
            self.sunk_signatures(child, out);
        }
    }

    /// Dynamic re-optimization (the paper's "dynamic case"): retires a
    /// query's plan from the running graph. Walks the plan bottom-up and
    /// removes every installed subplan node that no consumer subscribes to
    /// anymore — shared subplans survive as long as any other query uses
    /// them. Call after unsubscribing the query's sinks (e.g. having
    /// installed a replacement plan and re-pointed the application).
    /// Returns the number of nodes removed.
    pub fn retire(&mut self, plan: &LogicalPlan, graph: &QueryGraph) -> usize {
        // Top-down over the installed signatures: removing a parent
        // unsubscribes it from its children, which may free them in turn.
        let mut removed = 0;
        self.retire_walk(plan, graph, &mut removed);
        // Sweep physical helper nodes (e.g. the grouped stage below an
        // aggregate's flatten map) that are not tracked by signature.
        removed += graph.collect_unconsumed();
        // Drop index entries whose nodes the sweep removed.
        self.installed
            .retain(|_, handle| !graph.is_removed(handle.node()));
        removed
    }

    /// Uninstalls a query live: removes its application sink (which
    /// unsubscribes the query from its result stream) and then
    /// [`Optimizer::retire`]s every subplan no other query consumes. The
    /// whole path is safe to call while executors are running — each
    /// removal bumps the graph's topology epoch, and workers pick the
    /// shrunken topology up at their next re-plan; shared prefixes keep
    /// flowing (and keep their warm [`pipes_graph::NodeEstimate`]s)
    /// because the other subscribers hold them live. Returns the number
    /// of nodes removed, the sink included.
    pub fn uninstall(&mut self, plan: &LogicalPlan, sink: NodeId, graph: &QueryGraph) -> usize {
        graph.remove_node(sink);
        1 + self.retire(plan, graph)
    }

    fn retire_walk(&mut self, plan: &LogicalPlan, graph: &QueryGraph, removed: &mut usize) {
        let sig = plan.signature();
        if let Some(handle) = self.installed.get(&sig) {
            let node = handle.node();
            if graph.subscriber_count(node) == 0 && !graph.is_removed(node) {
                graph.remove_node(node);
                self.installed.remove(&sig);
                *removed += 1;
            }
        }
        for child in plan.inputs() {
            self.retire_walk(child, graph, removed);
        }
    }

    /// A [`LiveCostSource`] over `snap` with every installed subplan bound
    /// to its publishing node, so live costing sees the running graph's
    /// observed rates wherever a candidate plan overlaps installed work.
    pub fn live_cost_source<'a>(&self, snap: &'a MetaSnapshot) -> LiveCostSource<'a> {
        let mut live = LiveCostSource::new(snap);
        for (sig, handle) in &self.installed {
            live.bind_subplan(sig, handle.node());
        }
        live
    }

    /// Installs a query into the running `graph`: enumerate variants, pick
    /// the cheapest under sharing, compile, and register new subplans.
    pub fn install(
        &mut self,
        plan: &LogicalPlan,
        graph: &QueryGraph,
        catalog: &Catalog,
    ) -> Result<InstallReport, String> {
        self.install_inner(plan, graph, catalog, None)
    }

    /// Like [`Optimizer::install`], but costs every candidate variant
    /// against the running graph's live metadata snapshot (installed
    /// subplans costed at observed rates) instead of static catalog hints.
    pub fn install_with_meta(
        &mut self,
        plan: &LogicalPlan,
        graph: &QueryGraph,
        catalog: &Catalog,
        snap: &MetaSnapshot,
    ) -> Result<InstallReport, String> {
        self.install_inner(plan, graph, catalog, Some(snap))
    }

    fn install_inner(
        &mut self,
        plan: &LogicalPlan,
        graph: &QueryGraph,
        catalog: &Catalog,
        snap: Option<&MetaSnapshot>,
    ) -> Result<InstallReport, String> {
        // Validate eagerly so errors carry the user's plan, not a variant.
        let schema = output_schema(plan, catalog)?;

        let variants = rules::enumerate(plan, catalog);
        let variants_considered = variants.len();
        let mut best: Option<(LogicalPlan, PlanEstimate)> = None;
        for v in variants {
            // A variant must still be valid (rules preserve this; verify).
            if output_schema(&v, catalog).is_err() {
                continue;
            }
            let mut sunk = HashSet::new();
            self.sunk_signatures(&v, &mut sunk);
            let est = match snap {
                Some(snap) => {
                    let live = self.live_cost_source(snap);
                    estimate_live(&v, catalog, &sunk, &live)
                }
                None => estimate_with_sunk(&v, catalog, &sunk),
            };
            let better = match &best {
                None => true,
                Some((_, b)) => est.cost < b.cost,
            };
            if better {
                best = Some((v, est));
            }
        }
        let (chosen, estimate) = best.ok_or_else(|| "no valid plan variant".to_string())?;

        let mut ctx = CompileContext::new(graph, catalog, &mut self.installed);
        let handle = compile(&chosen, &mut ctx)?;
        let (created, reused) = (ctx.created, ctx.reused);
        Ok(InstallReport {
            handle,
            schema,
            chosen,
            estimate,
            variants_considered,
            created,
            reused,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::plan::WindowSpec;
    use crate::value::{Schema, Value};
    use pipes_graph::io::{CollectSink, VecSource};
    use pipes_time::{Duration, Element, Timestamp};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_stream(
            "s",
            Schema::of(&["k", "v"]),
            500.0,
            Box::new(|| {
                let elems = (0..20i64)
                    .map(|i| {
                        Element::at(
                            vec![Value::Int(i % 4), Value::Int(i)],
                            Timestamp::new(i as u64),
                        )
                    })
                    .collect();
                Box::new(VecSource::new(elems))
            }),
        );
        cat
    }

    fn windowed() -> LogicalPlan {
        LogicalPlan::Window {
            input: Box::new(LogicalPlan::Stream {
                name: "s".into(),
                alias: None,
            }),
            spec: WindowSpec::Time(Duration::from_ticks(8)),
        }
    }

    fn filter(plan: LogicalPlan, lo: i64) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: Expr::bin(Expr::col("v"), BinOp::Ge, Expr::lit(lo)),
        }
    }

    #[test]
    fn install_runs_and_produces_results() {
        let cat = catalog();
        let graph = QueryGraph::new();
        let mut opt = Optimizer::new();
        let report = opt.install(&filter(windowed(), 15), &graph, &cat).unwrap();
        assert!(report.variants_considered >= 1);
        assert_eq!(report.schema.len(), 2);

        let (sink, buf) = CollectSink::new();
        graph.add_sink("out", sink, &report.handle);
        graph.run_to_completion(16);
        let vals: Vec<i64> = buf
            .lock()
            .iter()
            .map(|e| e.payload[1].as_i64().unwrap())
            .collect();
        assert_eq!(vals, vec![15, 16, 17, 18, 19]);
    }

    #[test]
    fn overlapping_queries_share_subplans() {
        let cat = catalog();
        let graph = QueryGraph::new();
        let mut opt = Optimizer::new();

        let r1 = opt.install(&filter(windowed(), 10), &graph, &cat).unwrap();
        let nodes_after_first = graph.len();
        assert_eq!(r1.reused, 0);

        let r2 = opt.install(&filter(windowed(), 18), &graph, &cat).unwrap();
        // The second query shares at least the source scan; strictly fewer
        // nodes are created than a standalone install would need.
        assert!(r2.reused >= 1, "expected sharing, report: {r2:?}");
        assert!(r2.created < r1.created + r1.reused);
        assert!(graph.len() < 2 * nodes_after_first);
    }

    #[test]
    fn identical_query_is_fully_shared() {
        let cat = catalog();
        let graph = QueryGraph::new();
        let mut opt = Optimizer::new();
        let q = filter(windowed(), 5);
        opt.install(&q, &graph, &cat).unwrap();
        let before = graph.len();
        let r = opt.install(&q, &graph, &cat).unwrap();
        assert_eq!(graph.len(), before, "no new nodes for identical query");
        assert_eq!(r.created, 0);
        assert!(r.estimate.cost == 0.0, "fully sunk: {:?}", r.estimate);
    }

    #[test]
    fn splicing_into_running_graph_yields_partial_results() {
        let cat = catalog();
        let graph = QueryGraph::new();
        let mut opt = Optimizer::new();
        let r1 = opt.install(&filter(windowed(), 0), &graph, &cat).unwrap();
        let (s1, b1) = CollectSink::new();
        graph.add_sink("q1", s1, &r1.handle);

        // Let the graph run half-way, then splice in a second query.
        for _ in 0..6 {
            for id in graph.node_ids() {
                graph.step_node(id, 1);
            }
        }
        let r2 = opt.install(&filter(windowed(), 0), &graph, &cat).unwrap();
        let (s2, b2) = CollectSink::new();
        graph.add_sink("q2", s2, &r2.handle);
        graph.run_to_completion(16);

        assert_eq!(b1.lock().len(), 20);
        // The late query sees only the suffix produced after splicing.
        let late = b2.lock().len();
        assert!(late < 20, "late subscriber got {late}");
    }

    #[test]
    fn uninstall_retires_only_unshared_suffix_and_keeps_prefix_warm() {
        use pipes_graph::{Confidence, MetaConfig};

        let cat = catalog();
        let graph = QueryGraph::new();
        let mut opt = Optimizer::new();
        let q1 = filter(windowed(), 10);
        let q2 = filter(windowed(), 18);

        let r1 = opt.install(&q1, &graph, &cat).unwrap();
        let (s1, _b1) = CollectSink::new();
        let k1 = graph.add_sink("q1", s1, &r1.handle);
        let r2 = opt.install(&q2, &graph, &cat).unwrap();
        assert!(r2.reused >= 1, "queries must share a prefix: {r2:?}");
        let (s2, _b2) = CollectSink::new();
        let k2 = graph.add_sink("q2", s2, &r2.handle);

        // Warm the metadata plane: run a few quanta over every node.
        for _ in 0..6 {
            for id in graph.node_ids() {
                graph.step_node(id, 4);
            }
        }
        let installed_before = opt.installed_count();
        let live_before: Vec<_> = graph.node_ids().collect();

        // Uninstall q2 while q1 still subscribes to the shared prefix:
        // only q2's sink and its unshared suffix go away.
        let removed = opt.uninstall(&q2, k2, &graph);
        assert!(removed >= 2, "sink + at least the unshared filter");
        assert!(graph.is_removed(k2));
        assert!(graph.is_removed(r2.handle.node()));
        assert!(!graph.is_removed(k1));
        assert!(!graph.is_removed(r1.handle.node()));
        assert!(
            opt.installed_count() < installed_before,
            "q2's suffix left the sharing index"
        );
        assert!(
            graph.node_ids().count() < live_before.len(),
            "the graph shrank"
        );

        // The surviving prefix keeps its warm estimates: whatever was
        // Measured before the uninstall is still Measured after it.
        let snap = graph.meta_snapshot(&MetaConfig::default());
        for id in graph.node_ids() {
            if id == k1 {
                continue; // the sink consumes; it never measures output
            }
            let e = snap.get(id).expect("live node has an estimate");
            assert_eq!(
                e.confidence,
                Confidence::Measured,
                "node {id} ({}) went cold across the uninstall",
                e.name
            );
        }

        // Uninstalling the last query drains the whole graph.
        opt.uninstall(&q1, k1, &graph);
        assert_eq!(opt.installed_count(), 0);
        assert_eq!(graph.node_ids().count(), 0, "no orphans survive");
    }

    #[test]
    fn spliced_nodes_enter_snapshot_derived_from_warm_upstream() {
        use pipes_graph::{Confidence, MetaConfig};

        let cat = catalog();
        let graph = QueryGraph::new();
        let mut opt = Optimizer::new();
        let r1 = opt.install(&filter(windowed(), 10), &graph, &cat).unwrap();
        let (s1, _b1) = CollectSink::new();
        graph.add_sink("q1", s1, &r1.handle);

        // Warm the running prefix.
        for _ in 0..6 {
            for id in graph.node_ids() {
                graph.step_node(id, 4);
            }
        }

        // Splice a prefix-sharing query in: its new filter node has never
        // executed a quantum, but its upstream is warm, so the very first
        // snapshot already carries a Derived estimate (not a bare Prior).
        let r2 = opt.install(&filter(windowed(), 18), &graph, &cat).unwrap();
        assert!(r2.created >= 1);
        let snap = graph.meta_snapshot(&MetaConfig::default());
        let e = snap.get(r2.handle.node()).expect("spliced node visible");
        assert_eq!(
            e.confidence,
            Confidence::Derived,
            "fresh node below a warm upstream must enter Derived: {e:?}"
        );
        assert!(e.in_rate > 0.0, "derived in-rate follows the upstream");
    }

    #[test]
    fn unknown_stream_is_reported() {
        let cat = catalog();
        let graph = QueryGraph::new();
        let mut opt = Optimizer::new();
        let bad = LogicalPlan::Stream {
            name: "missing".into(),
            alias: None,
        };
        let err = opt.install(&bad, &graph, &cat).unwrap_err();
        assert!(err.contains("missing"));
    }
}
