//! Property tests for the optimizer:
//!
//! 1. every plan variant the rewrite rules enumerate is snapshot-equivalent
//!    to the original when compiled and executed end-to-end,
//! 2. plan serialization round-trips for arbitrary generated plans.

use pipes_graph::io::{CollectSink, VecSource};
use pipes_graph::QueryGraph;
use pipes_optimizer::{
    compile, rules, sexpr, AggFunc, AggSpec, BinOp, Catalog, CompileContext, Expr, LogicalPlan,
    Schema, Tuple, Value, WindowSpec,
};
use pipes_time::{Duration, Element, Timestamp};
use proptest::prelude::*;
use std::collections::HashMap;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    for (name, seed) in [("s", 7u64), ("t", 13u64)] {
        cat.add_stream(
            name,
            Schema::of(&["k", "v"]),
            100.0,
            Box::new(move || {
                let elems: Vec<Element<Tuple>> = (0..24i64)
                    .map(|i| {
                        Element::at(
                            vec![
                                Value::Int((i * seed as i64) % 4),
                                Value::Int((i * 3 + seed as i64) % 17),
                            ],
                            Timestamp::new(i as u64 * 2),
                        )
                    })
                    .collect();
                Box::new(VecSource::new(elems))
            }),
        );
    }
    cat
}

// ---------------------------------------------------------------------------
// Plan generators
// ---------------------------------------------------------------------------

fn arb_predicate(alias: &'static str) -> impl Strategy<Value = Expr> {
    let col = prop_oneof![Just(format!("{alias}.k")), Just(format!("{alias}.v")),];
    let cmp = prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Ge),
    ];
    (col, cmp, 0i64..17).prop_map(|(c, op, lit)| Expr::bin(Expr::col(c), op, Expr::lit(lit)))
}

fn windowed(name: &'static str, alias: &'static str, w: u64) -> LogicalPlan {
    LogicalPlan::Window {
        input: Box::new(LogicalPlan::Stream {
            name: name.into(),
            alias: Some(alias.into()),
        }),
        spec: WindowSpec::Time(Duration::from_ticks(w)),
    }
}

/// Random single-stream plans: window → stacked filters → optional
/// aggregate/distinct.
fn arb_unary_plan() -> impl Strategy<Value = LogicalPlan> {
    (
        1u64..30,
        prop::collection::vec(arb_predicate("s"), 0..3),
        0u8..4,
    )
        .prop_map(|(w, preds, topper)| {
            let mut plan = windowed("s", "s", w);
            for p in preds {
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: p,
                };
            }
            match topper {
                0 => plan,
                1 => LogicalPlan::Distinct {
                    input: Box::new(plan),
                },
                2 => LogicalPlan::Aggregate {
                    input: Box::new(plan),
                    group_by: vec![],
                    aggs: vec![(
                        AggSpec {
                            func: AggFunc::Count,
                            arg: Expr::lit(0i64),
                        },
                        "n".into(),
                    )],
                },
                _ => LogicalPlan::Aggregate {
                    input: Box::new(plan),
                    group_by: vec![(Expr::col("s.k"), "k".into())],
                    aggs: vec![(
                        AggSpec {
                            func: AggFunc::Max,
                            arg: Expr::col("s.v"),
                        },
                        "m".into(),
                    )],
                },
            }
        })
}

/// Random join plans: filters above a two-stream equi join.
fn arb_join_plan() -> impl Strategy<Value = LogicalPlan> {
    (
        1u64..25,
        1u64..25,
        prop::collection::vec(prop_oneof![arb_predicate("s"), arb_predicate("t")], 0..3),
    )
        .prop_map(|(wl, wr, preds)| {
            let mut plan = LogicalPlan::Join {
                left: Box::new(windowed("s", "s", wl)),
                right: Box::new(windowed("t", "t", wr)),
                predicate: Expr::col("s.k").eq(Expr::col("t.k")),
            };
            for p in preds {
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: p,
                };
            }
            plan
        })
}

// ---------------------------------------------------------------------------
// End-to-end execution + snapshot comparison
// ---------------------------------------------------------------------------

fn run(plan: &LogicalPlan, cat: &Catalog) -> Result<Vec<Element<Tuple>>, String> {
    let graph = QueryGraph::new();
    let mut installed = HashMap::new();
    let mut ctx = CompileContext::new(&graph, cat, &mut installed);
    let handle = compile(plan, &mut ctx)?;
    let (sink, buf) = CollectSink::new();
    graph.add_sink("out", sink, &handle);
    graph.run_to_completion(64);
    let out = buf.lock().clone();
    Ok(out)
}

/// Snapshot comparison: at every event point, both outputs must hold the
/// same multiset of tuples.
fn snapshot_equal(a: &[Element<Tuple>], b: &[Element<Tuple>]) -> Result<(), String> {
    use pipes_time::snapshot;
    let points = snapshot::merge_points([snapshot::event_points(a), snapshot::event_points(b)]);
    for t in points {
        let (sa, sb) = (snapshot::snapshot(a, t), snapshot::snapshot(b, t));
        if !snapshot::multiset_eq(sa.clone(), sb.clone()) {
            return Err(format!("snapshots differ at {t:?}: {sa:?} vs {sb:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unary_variants_are_snapshot_equivalent(plan in arb_unary_plan()) {
        let cat = catalog();
        let baseline = run(&plan, &cat).map_err(TestCaseError::fail)?;
        for variant in rules::enumerate(&plan, &cat) {
            let out = run(&variant, &cat).map_err(TestCaseError::fail)?;
            snapshot_equal(&baseline, &out).map_err(|e| {
                TestCaseError::fail(format!("{e}\noriginal:\n{plan}\nvariant:\n{variant}"))
            })?;
        }
    }

    #[test]
    fn join_variants_are_snapshot_equivalent(plan in arb_join_plan()) {
        let cat = catalog();
        let baseline = run(&plan, &cat).map_err(TestCaseError::fail)?;
        for variant in rules::enumerate(&plan, &cat) {
            let out = run(&variant, &cat).map_err(TestCaseError::fail)?;
            snapshot_equal(&baseline, &out).map_err(|e| {
                TestCaseError::fail(format!("{e}\noriginal:\n{plan}\nvariant:\n{variant}"))
            })?;
        }
    }

    #[test]
    fn plans_roundtrip_through_persistence(plan in prop_oneof![arb_unary_plan(), arb_join_plan()]) {
        let text = sexpr::to_string(&plan);
        let back = sexpr::from_str(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(&back, &plan, "round-trip changed the plan:\n{}", text);
    }

    #[test]
    fn variants_preserve_output_schema(plan in prop_oneof![arb_unary_plan(), arb_join_plan()]) {
        let cat = catalog();
        let schema = compile::output_schema(&plan, &cat)
            .map_err(TestCaseError::fail)?;
        for variant in rules::enumerate(&plan, &cat) {
            let vs = compile::output_schema(&variant, &cat)
                .map_err(|e| TestCaseError::fail(format!("{e}\n{variant}")))?;
            prop_assert_eq!(schema.columns(), vs.columns(), "variant:\n{}", variant);
        }
    }
}
