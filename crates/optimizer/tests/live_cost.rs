//! Live-snapshot costing end to end: warm up a real graph, take a
//! `MetaSnapshot`, and verify the cost model prices plan fragments at the
//! rates the graph actually observed — not at the catalog's (deliberately
//! wrong) static hints.

use pipes_graph::io::{CollectSink, VecSource};
use pipes_graph::{Collector, Confidence, MetaConfig, Operator, QueryGraph};
use pipes_optimizer::cost::{estimate, estimate_live, estimate_with_sunk, LiveCostSource};
use pipes_optimizer::{Catalog, Expr, LogicalPlan, Schema};
use pipes_time::{Element, Timestamp};
use std::collections::HashSet;

/// Drops odd payloads: element-level selectivity 0.5, the live counterpart
/// of the logical `Filter` fragment costed below.
struct DropOdd;

impl Operator for DropOdd {
    type In = i64;
    type Out = i64;
    fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
        if e.payload % 2 == 0 {
            out.element(e);
        }
    }
}

fn catalog_with_wrong_hint() -> Catalog {
    let mut cat = Catalog::new();
    // The static hint is off by orders of magnitude on purpose: any
    // estimate matching observation must have come through the snapshot.
    cat.add_stream(
        "s",
        Schema::of(&["v"]),
        7.0,
        Box::new(|| unreachable!("live-cost tests drive the graph directly")),
    );
    cat
}

fn stream() -> LogicalPlan {
    LogicalPlan::Stream {
        name: "s".into(),
        alias: None,
    }
}

fn filtered() -> LogicalPlan {
    LogicalPlan::Filter {
        input: Box::new(stream()),
        predicate: Expr::col("v").eq(Expr::lit(0i64)),
    }
}

#[test]
fn warm_graph_estimates_match_observed_rates() {
    if pipes_graph::meta::META_COMPILED_OUT {
        return;
    }
    // Physical twin of `filtered()`: source → drop-half filter → sink.
    let n: i64 = 40_000;
    let g = QueryGraph::new();
    let elems = (0..n)
        .map(|v| Element::at(v, Timestamp::new(v as u64)))
        .collect();
    let src = g.add_source("s", VecSource::new(elems));
    let filter = g.add_unary("filter", DropOdd, &src);
    let (sink, buf) = CollectSink::new();
    g.add_sink("sink", sink, &filter);
    g.run_to_completion(256);
    assert_eq!(buf.lock().len() as i64, n / 2);

    let snap = g.meta_snapshot(&MetaConfig::default());
    let src_est = snap.get(src.node()).unwrap();
    let filter_est = snap.get(filter.node()).unwrap();
    assert_eq!(src_est.confidence, Confidence::Measured);
    assert_eq!(filter_est.confidence, Confidence::Measured);
    assert!(
        (filter_est.selectivity - 0.5).abs() < 0.05,
        "observed selectivity {}",
        filter_est.selectivity
    );

    let cat = catalog_with_wrong_hint();
    let mut live = LiveCostSource::new(&snap);
    live.bind_stream("s", src.node());
    live.bind_subplan(&filtered().signature(), filter.node());

    // 1. A bound stream is costed at its observed rate, not the hint.
    let sunk = HashSet::new();
    let live_stream = estimate_live(&stream(), &cat, &sunk, &live);
    assert!(
        (live_stream.rate - src_est.out_rate).abs() < 1e-9,
        "stream rate {} must be the observed {}",
        live_stream.rate,
        src_est.out_rate
    );
    assert_ne!(estimate(&stream(), &cat).rate, live_stream.rate);

    // 2. A bound installed fragment reports the rate the graph measured —
    //    the filter's real output rate, not hint × heuristic selectivity.
    let live_filter = estimate_live(&filtered(), &cat, &sunk, &live);
    assert!(
        (live_filter.rate - filter_est.out_rate).abs() < 1e-9,
        "filter rate {} must be the observed {}",
        live_filter.rate,
        filter_est.out_rate
    );
    // ...and observation ties the fragment's rate to its input within
    // tolerance: out ≈ in × observed selectivity.
    assert!(
        (live_filter.rate / live_stream.rate - filter_est.selectivity).abs() < 0.05,
        "costed rates {} / {} drifted from observed selectivity {}",
        live_filter.rate,
        live_stream.rate,
        filter_est.selectivity
    );

    // 3. A candidate plan *on top of* the installed fragment is costed
    //    from the live rate: a projection over the filter pays for the
    //    filter's observed output stream, and sinking the fragment zeroes
    //    exactly the structural cost below the splice point.
    let project = LogicalPlan::Project {
        input: Box::new(filtered()),
        exprs: vec![(Expr::col("v"), "v".to_string())],
    };
    let mut sunk_filter = HashSet::new();
    sunk_filter.insert(filtered().signature());
    let marginal = estimate_live(&project, &cat, &sunk_filter, &live);
    assert!(
        (marginal.rate - filter_est.out_rate).abs() < 1e-9,
        "projection preserves the observed fragment rate"
    );
    let expected_marginal_cost = filter_est.out_rate * 0.2;
    assert!(
        (marginal.cost - expected_marginal_cost).abs() < 1e-6,
        "marginal cost {} must be the projection over the live rate {}",
        marginal.cost,
        expected_marginal_cost
    );
    let full = estimate_live(&project, &cat, &sunk, &live);
    assert!(
        marginal.cost < full.cost,
        "sunk fragment must discount: {} !< {}",
        marginal.cost,
        full.cost
    );
}

#[test]
fn cold_snapshot_falls_back_to_static_hints() {
    // An all-cold graph yields Prior-confidence estimates, which the live
    // model must refuse — static and live costing then agree exactly.
    let g = QueryGraph::new();
    let src = g.add_source("s", VecSource::new(Vec::<Element<i64>>::new()));
    let cat = catalog_with_wrong_hint();
    let snap = g.meta_snapshot(&MetaConfig::default());
    assert_eq!(snap.get(src.node()).unwrap().confidence, Confidence::Prior);

    let mut live = LiveCostSource::new(&snap);
    live.bind_stream("s", src.node());
    let sunk = HashSet::new();
    let live_est = estimate_live(&stream(), &cat, &sunk, &live);
    let static_est = estimate_with_sunk(&stream(), &cat, &sunk);
    assert_eq!(live_est, static_est, "priors must not override the catalog");
    assert_eq!(live_est.rate, 7.0);
}

#[test]
fn unbound_fragments_ignore_the_snapshot() {
    let g = QueryGraph::new();
    let cat = catalog_with_wrong_hint();
    let snap = g.meta_snapshot(&MetaConfig::default());
    let live = LiveCostSource::new(&snap); // no bindings at all
    let sunk = HashSet::new();
    assert_eq!(
        estimate_live(&filtered(), &cat, &sunk, &live),
        estimate_with_sunk(&filtered(), &cat, &sunk),
    );
}
