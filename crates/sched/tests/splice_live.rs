//! Real-time (non-model-checked) version of the mid-run instance splice:
//! `QueryGraph::parallelize` against a live work-stealing executor must
//! terminate and keep the stream byte-identical.

use pipes_graph::io::{CollectSink, VecSource};
use pipes_graph::QueryGraph;
use pipes_sched::{FifoStrategy, WorkStealingExecutor};
use pipes_sync::Arc;
use pipes_time::{Element, Timestamp};

struct Relay;
impl pipes_graph::Operator for Relay {
    type In = i64;
    type Out = i64;
    fn on_element(
        &mut self,
        _p: usize,
        e: Element<i64>,
        out: &mut dyn pipes_graph::Collector<i64>,
    ) {
        out.element(e);
    }
}
impl pipes_graph::Rekey for Relay {
    fn export_keyed(&mut self) -> pipes_graph::KeyedState {
        Vec::new()
    }
    fn import_keyed(&mut self, _entries: pipes_graph::KeyedState) {}
}

#[test]
fn parallelize_against_live_work_stealing_executor() {
    for round in 0..20 {
        let g = QueryGraph::new();
        let n = 64i64;
        let elems: Vec<Element<i64>> = (0..n)
            .map(|i| Element::at(i, Timestamp::new(i as u64)))
            .collect();
        let src = g.add_source("src", VecSource::new(elems));
        let h = g.add_keyed_unary(
            "par",
            || Relay,
            Arc::new(|v: &i64| v.rem_euclid(2) as u64),
            1,
            None,
            &src,
        );
        let (sink, out) = CollectSink::new();
        g.add_sink("sink", sink, &h);
        let graph = Arc::new(g);
        let group = graph.shuffle_groups().pop().expect("one shuffle group");

        let splicer = {
            let graph = Arc::clone(&graph);
            pipes_sync::thread::spawn(move || {
                let fresh = graph.parallelize(group.handle, 2);
                assert_eq!(fresh.len(), 2);
            })
        };
        let reports = WorkStealingExecutor::new(2)
            .with_quantum(4)
            .run(&graph, || Box::new(FifoStrategy));
        splicer.join().unwrap();
        assert_eq!(reports.len(), 2);
        // A splice landing after the executor's stop leaves the fresh
        // instances holding a queued Close for the next run — drain it
        // single-threaded before requiring completion.
        let mut spins = 0;
        while !graph.all_finished() {
            for id in 0..graph.len() {
                graph.step_node(id, 64);
            }
            spins += 1;
            assert!(spins < 64, "round {round}: splice wedged the graph");
        }
        let got: Vec<i64> = out.lock().iter().map(|e| e.payload).collect();
        let want: Vec<i64> = (0..n).collect();
        assert_eq!(got, want, "round {round}: stream lost or reordered");
    }
}

#[test]
fn work_stealing_executor_finishes_plain_shuffle_graph() {
    let g = QueryGraph::new();
    let elems: Vec<Element<i64>> = (0..4i64)
        .map(|i| Element::at(i, Timestamp::new(i as u64)))
        .collect();
    let src = g.add_source("src", VecSource::new(elems));
    let h = g.add_keyed_unary(
        "par",
        || Relay,
        Arc::new(|v: &i64| v.rem_euclid(2) as u64),
        2,
        None,
        &src,
    );
    let (sink, out) = CollectSink::new();
    g.add_sink("sink", sink, &h);
    let graph = Arc::new(g);
    let reports = WorkStealingExecutor::new(1)
        .with_quantum(1)
        .with_rebalance_every(0)
        .run(&graph, || Box::new(FifoStrategy));
    assert_eq!(reports.len(), 1);
    assert!(graph.all_finished());
    let got: Vec<i64> = out.lock().iter().map(|e| e.payload).collect();
    assert_eq!(got, vec![0, 1, 2, 3]);
}
