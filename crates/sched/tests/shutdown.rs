//! Wall-clock bound on executor shutdown latency.
//!
//! The stop flag is checked with `Ordering::Acquire` at the top of every
//! scheduling quantum (see `run_nodes`), so a worker drowning in work from
//! an infinite source must still observe an externally raised flag within
//! a few quanta plus at most one maximum backoff park. The bound asserted
//! here is deliberately generous (hundreds of quanta) — the point is to
//! catch a regression to an unbounded or seconds-long shutdown, e.g. a
//! stop check hoisted out of the loop or starved behind source work.

use pipes_graph::io::{CountSink, GenSource};
use pipes_graph::QueryGraph;
use pipes_sched::{FifoStrategy, SingleThreadExecutor};
use pipes_sync::atomic::{AtomicBool, Ordering};
use pipes_sync::Arc;
use pipes_time::{Element, Timestamp};
use std::time::{Duration, Instant};

#[test]
fn raised_stop_flag_bounds_shutdown_latency() {
    let g = QueryGraph::new();
    // An inexhaustible source: the executor never halts on its own.
    let mut t = 0u64;
    let src = g.add_source(
        "firehose",
        GenSource::new(move || {
            t += 1;
            Some(Element::at(t as i64, Timestamp::new(t)))
        }),
    );
    let (sink, count) = CountSink::new();
    g.add_sink("sink", sink, &src);
    let graph = Arc::new(g);
    let stop = Arc::new(AtomicBool::new(false));

    let worker = {
        let graph = Arc::clone(&graph);
        let stop = Arc::clone(&stop);
        pipes_sync::thread::spawn(move || {
            let exec = SingleThreadExecutor::new().with_quantum(64);
            let mut strategy = FifoStrategy;
            exec.run_nodes(&graph, &mut strategy, &[0, 1], Some(&stop))
        })
    };

    // Let the worker get properly busy first.
    while count.lock().0 < 1_000 {
        pipes_sync::thread::yield_now();
    }

    let raised = Instant::now();
    stop.store(true, Ordering::Release);
    let report = worker.join().expect("worker panicked");
    let latency = raised.elapsed();

    assert!(report.quanta > 0, "worker never ran");
    assert!(
        latency < Duration::from_millis(500),
        "shutdown took {latency:?}; the stop flag must halt the executor \
         within a bounded number of quanta"
    );
}
