//! Property tests: every scheduling strategy drains every randomly shaped
//! finite graph, and all strategies agree on the results.

use pipes_graph::io::{CollectSink, VecSource};
use pipes_graph::{Collector, Operator, QueryGraph};
use pipes_ops::aggregate::{CountAgg, ScalarAggregate};
use pipes_ops::{Filter, TimeWindow, Union};
use pipes_sched::{
    ChainStrategy, FifoStrategy, GreedyStrategy, RandomStrategy, RateBasedStrategy,
    RoundRobinStrategy, SingleThreadExecutor, Strategy as SchedStrategy,
};
use pipes_time::{Duration, Element, Timestamp};
use proptest::prelude::*;

struct Mul(i64);
impl Operator for Mul {
    type In = i64;
    type Out = i64;
    fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
        let k = self.0;
        out.element(e.map(|v| v.wrapping_mul(k)));
    }
}

/// A randomly shaped graph: two sources, a random chain on each, optionally
/// merged by a union, ending in window+count and a collecting sink.
#[derive(Clone, Debug)]
struct Shape {
    n: u64,
    chain_a: Vec<i64>,
    chain_b: Vec<i64>,
    merge: bool,
    window: u64,
    modulus: i64,
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (
        50u64..400,
        prop::collection::vec(1i64..5, 0..3),
        prop::collection::vec(1i64..5, 0..3),
        any::<bool>(),
        1u64..50,
        1i64..4,
    )
        .prop_map(|(n, chain_a, chain_b, merge, window, modulus)| Shape {
            n,
            chain_a,
            chain_b,
            merge,
            window,
            modulus,
        })
}

fn build(shape: &Shape) -> (QueryGraph, pipes_graph::io::Collected<u64>) {
    let g = QueryGraph::new();
    let mk_elems = |offset: u64| -> Vec<Element<i64>> {
        (0..shape.n)
            .map(|i| Element::at((i + offset) as i64, Timestamp::new(i * 2 + offset)))
            .collect()
    };
    let mut a = g.add_source("a", VecSource::new(mk_elems(0)));
    for (i, k) in shape.chain_a.iter().enumerate() {
        a = g.add_unary(&format!("a{i}"), Mul(*k), &a);
    }
    let mut b = g.add_source("b", VecSource::new(mk_elems(1)));
    for (i, k) in shape.chain_b.iter().enumerate() {
        b = g.add_unary(&format!("b{i}"), Mul(*k), &b);
    }
    let m = shape.modulus;
    let merged = if shape.merge {
        g.add_nary("union", Union::new(2), &[a, b])
    } else {
        let fa = g.add_unary("fa", Filter::new(move |v: &i64| v % m == 0), &a);
        let (sb, _) = CollectSink::new();
        g.add_sink("side", sb, &b);
        fa
    };
    let w = g.add_unary(
        "window",
        TimeWindow::new(Duration::from_ticks(shape.window)),
        &merged,
    );
    let agg = g.add_unary("count", ScalarAggregate::new(CountAgg), &w);
    let (sink, buf) = CollectSink::new();
    g.add_sink("out", sink, &agg);
    (g, buf)
}

fn run_with(shape: &Shape, strategy: &mut dyn SchedStrategy) -> Vec<Element<u64>> {
    let (g, buf) = build(shape);
    let report = SingleThreadExecutor::new()
        .with_quantum(16)
        .run(&g, strategy);
    assert!(g.all_finished(), "{} stalled on {shape:?}", report.strategy);
    let out = buf.lock().clone();
    out
}

/// Different strategies interleave heartbeats differently, so output
/// *intervals* may be split differently — but the snapshots (the semantics)
/// must be identical at every instant.
fn snapshot_equal(a: &[Element<u64>], b: &[Element<u64>]) -> Result<(), String> {
    use pipes_time::snapshot;
    let points = snapshot::merge_points([snapshot::event_points(a), snapshot::event_points(b)]);
    for t in points {
        let (sa, sb) = (snapshot::snapshot(a, t), snapshot::snapshot(b, t));
        if !snapshot::multiset_eq(sa.clone(), sb.clone()) {
            return Err(format!("snapshots differ at {t:?}: {sa:?} vs {sb:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_strategies_drain_and_agree(shape in arb_shape()) {
        let reference = run_with(&shape, &mut FifoStrategy);
        let mut strategies: Vec<Box<dyn SchedStrategy>> = vec![
            Box::new(RoundRobinStrategy::new()),
            Box::new(GreedyStrategy),
            Box::new(ChainStrategy::new(8)),
            Box::new(RateBasedStrategy),
            Box::new(RandomStrategy::new(9)),
        ];
        for s in &mut strategies {
            let out = run_with(&shape, s.as_mut());
            snapshot_equal(&out, &reference).map_err(|e| {
                TestCaseError::fail(format!("{} diverged on {:?}: {e}", s.name(), shape))
            })?;
        }
    }
}
