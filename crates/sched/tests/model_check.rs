//! Model-checked tests for the executor's completion and shutdown
//! protocols.
//!
//! Compiled only under `RUSTFLAGS="--cfg pipes_model_check"` (see
//! `scripts/ci.sh`). These drive the *real* executor code paths — the
//! decentralized stop flag of `run_partitions` and the shared-flag early
//! exit of `run_nodes` — on deliberately tiny graphs, so the instrumented
//! schedule space stays tractable (a preemption bound of 1 already covers
//! every single-switch interleaving of the protocol).

#![cfg(pipes_model_check)]

use pipes_graph::io::{CountSink, VecSource};
use pipes_graph::QueryGraph;
use pipes_sched::{
    FifoStrategy, GroupTable, MultiThreadExecutor, SingleThreadExecutor, WorkStealingExecutor,
};
use pipes_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use pipes_sync::Arc;
use pipes_time::{Element, Timestamp};

fn tiny_graph(n: i64) -> (Arc<QueryGraph>, Arc<pipes_sync::Mutex<(u64, Timestamp)>>) {
    let g = QueryGraph::new();
    let elems: Vec<Element<i64>> = (0..n)
        .map(|i| Element::at(i, Timestamp::new(i as u64)))
        .collect();
    let src = g.add_source("src", VecSource::new(elems));
    let (sink, count) = CountSink::new();
    g.add_sink("sink", sink, &src);
    (Arc::new(g), count)
}

/// The decentralized completion protocol of `run_partitions`: whichever
/// worker goes idle first detects `all_finished` from its backoff loop and
/// flips the shared stop flag itself; every interleaving must terminate
/// with both workers joined and the full stream delivered.
#[test]
fn completion_protocol_terminates_and_delivers_everything() {
    let report = pipes_sync::Builder::new().preemption_bound(1).check(|| {
        let (graph, count) = tiny_graph(2);
        let exec = MultiThreadExecutor::new(2).with_quantum(4);
        let reports =
            exec.run_partitions(&graph, || Box::new(FifoStrategy), vec![vec![0], vec![1]]);
        assert_eq!(reports.len(), 2, "a worker was lost");
        assert_eq!(count.lock().0, 2, "stream not fully delivered");
        assert!(graph.all_finished());
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}

/// An externally raised stop flag halts `run_nodes` at the next quantum
/// boundary in every interleaving — the worker never runs past its
/// `max_quanta` valve waiting for the store to become visible.
#[test]
fn raised_stop_flag_halts_worker_in_every_interleaving() {
    let report = pipes_sync::Builder::new().preemption_bound(1).check(|| {
        let (graph, _count) = tiny_graph(64);
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let graph = Arc::clone(&graph);
            let stop = Arc::clone(&stop);
            pipes_sync::thread::spawn(move || {
                let exec = SingleThreadExecutor::new()
                    .with_quantum(1)
                    .with_max_quanta(3);
                let mut strategy = FifoStrategy;
                exec.run_nodes(&graph, &mut strategy, &[0, 1], Some(&stop))
            })
        };
        stop.store(true, Ordering::Release);
        let report = worker.join().unwrap();
        // Raced stop: the worker ran somewhere between zero quanta (flag
        // observed before any work) and its own valve, never beyond it.
        assert!(
            report.quanta <= 3,
            "stop flag ignored: {} quanta",
            report.quanta
        );
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}

/// Two workers race to be the one that detects completion and flips the
/// stop flag; the flag must end up set exactly because the graph finished,
/// never before the sink saw the close.
#[test]
fn stop_flag_is_raised_only_after_completion() {
    let report = pipes_sync::Builder::new().preemption_bound(1).check(|| {
        let (graph, count) = tiny_graph(1);
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let graph = Arc::clone(&graph);
            let stop = Arc::clone(&stop);
            pipes_sync::thread::spawn(move || {
                let exec = SingleThreadExecutor::new().with_quantum(4);
                let mut strategy = FifoStrategy;
                exec.run_nodes(&graph, &mut strategy, &[0, 1], Some(&stop));
                // Mirror run_partitions: the finishing worker raises stop.
                stop.store(true, Ordering::Release);
            })
        };
        let exec = SingleThreadExecutor::new().with_quantum(4);
        let mut strategy = FifoStrategy;
        exec.run_nodes(&graph, &mut strategy, &[0, 1], Some(&stop));
        worker.join().unwrap();
        // ordering: Relaxed — single-threaded readback after join.
        if stop.load(Ordering::Relaxed) {
            assert!(graph.all_finished(), "stop raised before completion");
        }
        assert_eq!(count.lock().0, 1);
    });
    assert!(report.complete);
}

/// Two workers race claim-or-steal over one group, then try to execute it.
/// In every interleaving: ownership transfers atomically (the group always
/// ends up owned, never lost), at least one worker executes, and the
/// begin/end active bit rules out any overlap of the two critical sections
/// (no double execution).
#[test]
fn claim_steal_protocol_never_loses_or_double_executes_a_group() {
    let report = pipes_sync::Builder::new().preemption_bound(1).check(|| {
        let table = Arc::new(GroupTable::new(1));
        let in_section = Arc::new(AtomicUsize::new(0));
        let executed = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2usize)
            .map(|me| {
                let table = Arc::clone(&table);
                let in_section = Arc::clone(&in_section);
                let executed = Arc::clone(&executed);
                pipes_sync::thread::spawn(move || {
                    let victim = 1 - me;
                    let got = table.try_claim(0, me) || table.try_steal(0, victim, me);
                    if got && table.begin(0, me) {
                        let overlap = in_section.fetch_add(1, Ordering::AcqRel);
                        assert_eq!(overlap, 0, "double execution of a group");
                        executed.fetch_add(1, Ordering::AcqRel);
                        in_section.fetch_sub(1, Ordering::AcqRel);
                        table.end(0, me);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(table.owner(0).is_some(), "group lost in the hand-off");
        assert!(
            executed.load(Ordering::Acquire) >= 1,
            "nobody executed the group"
        );
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}

/// A rebalance hand-off (owner releases, target claims) racing a third
/// idle scavenger: at most one of the claimants wins, and the group is
/// either owned by the winner or still free for later adoption — never
/// duplicated, never lost.
#[test]
fn release_claim_handoff_keeps_exactly_one_owner() {
    let report = pipes_sync::Builder::new().preemption_bound(1).check(|| {
        let table = Arc::new(GroupTable::new(1));
        assert!(table.try_claim(0, 0));
        let releaser = {
            let table = Arc::clone(&table);
            pipes_sync::thread::spawn(move || {
                assert!(table.release(0, 0), "inactive owner release must win")
            })
        };
        let claimants: Vec<_> = (1..3usize)
            .map(|me| {
                let table = Arc::clone(&table);
                pipes_sync::thread::spawn(move || table.try_claim(0, me))
            })
            .collect();
        releaser.join().unwrap();
        let wins: Vec<bool> = claimants.into_iter().map(|h| h.join().unwrap()).collect();
        let winners = wins.iter().filter(|&&w| w).count();
        assert!(winners <= 1, "two claimants both won the group");
        match table.owner(0) {
            Some(w) => {
                assert_eq!(winners, 1);
                assert!(wins[w - 1], "owner {w} is not the recorded winner");
            }
            None => assert_eq!(winners, 0, "a winner's group vanished"),
        }
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}

/// Splice-vs-steal at the table level: the leader grows the table for a
/// spliced group and claims the fresh slot while a thief concurrently
/// steals the pre-existing group from its idle owner. In every
/// interleaving both transitions land, no slot is lost, and the grown
/// slot starts free (grow never disturbs in-flight CAS traffic on the
/// old slots).
#[test]
fn table_grow_racing_steal_keeps_every_slot_consistent() {
    let report = pipes_sync::Builder::new().preemption_bound(1).check(|| {
        let table = Arc::new(GroupTable::new(1));
        assert!(table.try_claim(0, 0));
        let leader = {
            let table = Arc::clone(&table);
            pipes_sync::thread::spawn(move || {
                table.grow(2);
                assert!(table.try_claim(1, 0), "fresh slot must start free");
            })
        };
        let thief = {
            let table = Arc::clone(&table);
            pipes_sync::thread::spawn(move || table.try_steal(0, 0, 1))
        };
        let stolen = thief.join().unwrap();
        leader.join().unwrap();
        assert!(stolen, "idle owner cannot resist the steal");
        assert_eq!(table.len(), 2);
        assert_eq!(table.owner(0), Some(1), "stolen group lost in the grow");
        assert_eq!(table.owner(1), Some(0), "fresh group lost");
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}

/// Retire-vs-claim: a replan retires group 0 — its owner finishes the
/// in-flight quantum and releases at the epoch hand-off, and per the
/// NO_TARGET rule nobody ever re-claims it — while an idle worker races
/// to adopt the freshly spliced group the same replan added. In every
/// interleaving the retired slot drains to free and stays free, and the
/// fresh group ends with exactly one owner.
#[test]
fn retire_drain_racing_idle_adoption_frees_retired_and_owns_fresh() {
    let report = pipes_sync::Builder::new().preemption_bound(1).check(|| {
        let table = Arc::new(GroupTable::new(1));
        assert!(table.try_claim(0, 0));
        // Grow-before-publish: the table is extended before any worker can
        // see (and claim from) the new plan, exactly as `replan` orders it.
        table.grow(2);
        let owner = {
            let table = Arc::clone(&table);
            pipes_sync::thread::spawn(move || {
                assert!(table.begin(0, 0), "owner finishes its last quantum");
                table.end(0, 0);
                assert!(table.release(0, 0), "retired drain release must win");
            })
        };
        let idle = {
            let table = Arc::clone(&table);
            pipes_sync::thread::spawn(move || table.try_claim(1, 1))
        };
        owner.join().unwrap();
        assert!(idle.join().unwrap(), "fresh free group must be adoptable");
        assert_eq!(table.owner(0), None, "retired group must drain to free");
        assert_eq!(table.owner(1), Some(1));
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}

/// Bounded shutdown mid-splice: a sink is spliced onto the live source
/// while the work-stealing executor runs — possibly before the first
/// quantum, possibly mid-drain, possibly after the source already closed
/// (subscribe-after-close delivers an immediate `Close`, so no
/// interleaving can wedge the data path). Every schedule must terminate
/// with the worker joined and the original stream fully delivered. One
/// worker keeps the schedule space tractable — the claim/steal races the
/// splice induces are covered by the two table-level tests above; this
/// one pins the leader's replan/shutdown protocol itself.
#[test]
fn shutdown_stays_bounded_when_a_sink_splices_mid_run() {
    let report = pipes_sync::Builder::new().preemption_bound(1).check(|| {
        let g = QueryGraph::new();
        let elems = vec![Element::at(0i64, Timestamp::new(0))];
        let src = g.add_source("src", VecSource::new(elems));
        let (sink, count) = CountSink::new();
        g.add_sink("sink", sink, &src);
        let graph = Arc::new(g);
        let (late_sink, late_count) = CountSink::new();
        let splicer = {
            let graph = Arc::clone(&graph);
            pipes_sync::thread::spawn(move || {
                graph.add_sink("late", late_sink, &src);
            })
        };
        let reports = WorkStealingExecutor::new(1)
            .with_quantum(1)
            .with_rebalance_every(0)
            .run(&graph, || Box::new(FifoStrategy));
        splicer.join().unwrap();
        assert_eq!(reports.len(), 1, "the worker was lost");
        assert_eq!(count.lock().0, 1, "original stream not fully delivered");
        assert!(late_count.lock().0 <= 1, "late sink over-delivered");
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}

/// Stateless pass-through with an empty keyed-state hand-off, so a shuffle
/// group over it can be resized mid-run without any state to relocate.
struct Relay;
impl pipes_graph::Operator for Relay {
    type In = i64;
    type Out = i64;
    fn on_element(
        &mut self,
        _p: usize,
        e: Element<i64>,
        out: &mut dyn pipes_graph::Collector<i64>,
    ) {
        out.element(e);
    }
}
impl pipes_graph::Rekey for Relay {
    fn export_keyed(&mut self) -> pipes_graph::KeyedState {
        Vec::new()
    }
    fn import_keyed(&mut self, _entries: pipes_graph::KeyedState) {}
}

fn keyed_graph(n: i64, instances: usize) -> (Arc<QueryGraph>, pipes_graph::io::Collected<i64>) {
    let g = QueryGraph::new();
    let elems: Vec<Element<i64>> = (0..n)
        .map(|i| Element::at(i, Timestamp::new(i as u64)))
        .collect();
    let src = g.add_source("src", VecSource::new(elems));
    let h = g.add_keyed_unary(
        "par",
        || Relay,
        Arc::new(|v: &i64| v.rem_euclid(2) as u64),
        instances,
        None,
        &src,
    );
    let (sink, out) = pipes_graph::io::CollectSink::new();
    g.add_sink("sink", sink, &h);
    (Arc::new(g), out)
}

/// Partition-push racing merge-drain: one thread steps the source and the
/// partitioner (pushing keyed runs onto the instance edges) while the other
/// steps the instances and the order-restoring merge. In every
/// interleaving the sink must see the full stream in exact arrival order —
/// no run lost on a partially flushed partition buffer, no per-key
/// reordering past the merge's strict frontier rule.
#[test]
fn partition_push_racing_merge_drain_keeps_global_order() {
    let report = pipes_sync::Builder::new().preemption_bound(1).check(|| {
        let (graph, out) = keyed_graph(3, 2);
        let group = graph.shuffle_groups().pop().expect("one shuffle group");
        let upstream: Vec<usize> = vec![0, group.partition_ids[0]];
        let downstream: Vec<usize> = group
            .instance_ids
            .iter()
            .copied()
            .chain([group.handle, graph.len() - 1])
            .collect();
        let pusher = {
            let graph = Arc::clone(&graph);
            pipes_sync::thread::spawn(move || {
                for _ in 0..4 {
                    for &id in &upstream {
                        graph.step_node(id, 2);
                    }
                }
            })
        };
        for _ in 0..4 {
            for &id in &downstream {
                graph.step_node(id, 2);
            }
        }
        pusher.join().unwrap();
        // Drain whatever the race left queued; progress must always exist.
        let mut spins = 0;
        while !graph.all_finished() {
            for id in 0..graph.len() {
                graph.step_node(id, 64);
            }
            spins += 1;
            assert!(spins < 64, "shuffle group wedged");
        }
        let got: Vec<i64> = out.lock().iter().map(|e| e.payload).collect();
        assert_eq!(
            got,
            vec![0, 1, 2],
            "stream lost or reordered in the shuffle"
        );
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}

/// `parallelize` splicing new keyed instances while the work-stealing
/// executor is mid-run: the expander freezes routing under the partition
/// runnable lock, drains and retires the old instances, and splices the
/// new generation behind the executor's back (topology-epoch replan). In
/// every interleaving the executor must terminate (no lost wakeup on the
/// fresh nodes, no quantum against a retired instance wedging) and the
/// sink must see the full stream in exact arrival order.
#[test]
fn instance_splice_mid_run_under_work_stealing_preserves_stream() {
    let mut builder = pipes_sync::Builder::new().preemption_bound(1);
    // A splice against the live executor is the deepest schedule in this
    // suite (drain + export + re-plan per interleaving); give it headroom
    // over the default per-execution step budget.
    builder.max_steps = 400_000;
    let report = builder.check(|| {
        let (graph, out) = keyed_graph(1, 1);
        let group = graph.shuffle_groups().pop().expect("one shuffle group");
        let splicer = {
            let graph = Arc::clone(&graph);
            pipes_sync::thread::spawn(move || {
                let fresh = graph.parallelize(group.handle, 2);
                assert_eq!(fresh.len(), 2);
            })
        };
        let reports = WorkStealingExecutor::new(1)
            .with_quantum(1)
            .with_rebalance_every(0)
            .run(&graph, || Box::new(FifoStrategy));
        splicer.join().unwrap();
        assert_eq!(reports.len(), 1, "the worker was lost");
        // The executor may legitimately observe completion and stop while
        // the splice is still in flight; the fresh instances then hold a
        // queued Close for the next run to drive. Drain single-threaded
        // and require the graph to finish — anything short of that is a
        // wedge (lost run or stuck merge port).
        let mut spins = 0;
        while !graph.all_finished() {
            for id in 0..graph.len() {
                graph.step_node(id, 64);
            }
            spins += 1;
            assert!(spins < 64, "splice wedged the graph");
        }
        let got: Vec<i64> = out.lock().iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![0], "stream lost or reordered across the splice");
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}

/// The full dynamic layer 3 under the model checker: plan, claim, targeted
/// wakeups, idle adoption and the decentralized stop protocol. Every
/// interleaving must terminate (bounded shutdown — no lost wakeup can park
/// a worker forever), deliver the whole stream, and join both workers.
#[test]
fn work_stealing_executor_terminates_and_delivers_in_every_schedule() {
    let report = pipes_sync::Builder::new().preemption_bound(1).check(|| {
        let (graph, count) = tiny_graph(2);
        let reports = WorkStealingExecutor::new(2)
            .with_quantum(4)
            .with_rebalance_every(0)
            .run(&graph, || Box::new(FifoStrategy));
        assert_eq!(reports.len(), 2, "a worker was lost");
        assert_eq!(count.lock().0, 2, "stream not fully delivered");
        assert!(graph.all_finished());
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}
