//! Layer 3 proper: a dynamic thread layer over the execution plan.
//!
//! [`WorkStealingExecutor`] runs the layer-1 plan with true dynamic
//! placement: each worker *owns* a set of virtual-node groups through the
//! [`GroupTable`] claim protocol, runs its layer-2 [`Strategy`] over the
//! nodes of the groups it owns, and when it runs dry it first adopts free
//! runnable groups, then **steals** a runnable group from the most loaded
//! peer. A leader worker periodically re-places all groups from runtime
//! queue-depth statistics (`pipes-meta`) when the load spread grows too
//! wide, and every productive quantum wakes the specific workers owning the
//! producer's downstream groups through per-worker [`Parker`]s — a targeted
//! unpark instead of the bounded-staleness park timeouts the static
//! executor relies on.
//!
//! Topology is *hot*: the leader also polls
//! [`QueryGraph::topology_epoch`] every iteration, and when a query is
//! spliced into (or retired from) the running graph it extends the plan
//! incrementally ([`ExecutionPlan::refreshed`] — existing groups keep
//! their ids and in-flight state), grows the [`GroupTable`], and hands
//! the new groups out through the same rebalance-epoch release→claim
//! protocol used for load rebalancing. Retired groups drain: their owner
//! releases them at the next epoch hand-off and nobody re-adopts.

use crate::executor::ExecutionReport;
use crate::plan::{ExecutionPlan, GroupId};
use crate::steal::{GroupTable, Parker};
use crate::strategy::{SchedView, Strategy};
use pipes_graph::{NodeId, NodeKind, QueryGraph};
use pipes_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use pipes_sync::{hint, thread, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Placement target meaning "no worker": published for retired groups so
/// their owners release them at the next epoch hand-off and nobody
/// re-claims — the group drains and leaves the active schedule.
const NO_TARGET: usize = usize::MAX;

/// Shared coordination state for one run.
struct Shared {
    /// The current execution plan. Swapped (never mutated in place) by the
    /// leader when it observes a newer topology epoch; workers snapshot
    /// the `Arc` and run against an immutable plan between rebalance
    /// epochs.
    plan: RwLock<Arc<ExecutionPlan>>,
    table: GroupTable,
    parkers: Vec<Parker>,
    stop: AtomicBool,
    /// Bumped when a new placement is published in `targets`.
    epoch: AtomicU64,
    /// Target worker per group for the current epoch.
    targets: Mutex<Vec<usize>>,
}

impl Shared {
    fn plan(&self) -> Arc<ExecutionPlan> {
        Arc::clone(&self.plan.read())
    }

    fn wake_all(&self) {
        for p in &self.parkers {
            p.unpark();
        }
    }
}

/// Read-only view of the live group placement of a running
/// [`WorkStealingExecutor`] — e.g. for a memory manager whose budget split
/// should follow placement (`pipes_mem::MemoryManager::set_placement`).
#[derive(Clone)]
pub struct OwnershipView {
    shared: Arc<Shared>,
}

impl OwnershipView {
    /// The group containing `node` in the run's *current* execution plan
    /// (the view tracks re-plans after topology splices).
    ///
    /// # Panics
    ///
    /// Panics if `node` was spliced in after the last re-plan.
    pub fn group_of(&self, node: NodeId) -> GroupId {
        self.shared.plan().group_of(node)
    }

    /// The worker currently owning `node`'s group; `None` when the group
    /// is free or the node is not covered by the current plan yet.
    pub fn worker_of(&self, node: NodeId) -> Option<usize> {
        let plan = self.shared.plan();
        let group = plan.try_group_of(node)?;
        self.shared.table.owner(group)
    }

    /// Number of worker threads in the run.
    pub fn workers(&self) -> usize {
        self.shared.parkers.len()
    }
}

/// Adaptive idle waiting against a targeted [`Parker`]: spin, then yield,
/// then park with growing timeouts — but an `unpark` aimed at this worker
/// ends the park immediately (and is never lost if it races ahead).
struct IdleWait {
    rounds: u32,
}

impl IdleWait {
    const SPIN_ROUNDS: u32 = 6;
    const YIELD_ROUNDS: u32 = 4;
    const FIRST_PARK: Duration = Duration::from_micros(50);
    /// Bounds how stale a parked worker's view of the stop flag can get
    /// should a wakeup be missed for a reason outside the protocol.
    const MAX_PARK: Duration = Duration::from_micros(1600);

    fn new() -> Self {
        IdleWait { rounds: 0 }
    }

    fn wait(&mut self, parker: &Parker) {
        if self.rounds < Self::SPIN_ROUNDS {
            for _ in 0..(1u32 << self.rounds) {
                hint::spin_loop();
            }
        } else if self.rounds < Self::SPIN_ROUNDS + Self::YIELD_ROUNDS {
            thread::yield_now();
        } else {
            let doublings = (self.rounds - Self::SPIN_ROUNDS - Self::YIELD_ROUNDS).min(5);
            let timeout = Self::FIRST_PARK
                .saturating_mul(1 << doublings)
                .min(Self::MAX_PARK);
            pipes_trace::instant(pipes_trace::names::PARK, [timeout.as_micros() as u64, 0, 0]);
            parker.park(timeout);
            pipes_trace::instant(pipes_trace::names::UNPARK, [0; 3]);
        }
        self.rounds = self.rounds.saturating_add(1);
    }

    fn reset(&mut self) {
        self.rounds = 0;
    }
}

/// Whether any node of `group` can make progress right now. Retired
/// groups are never runnable (every member is removed, and removed nodes
/// count as finished).
fn group_runnable(graph: &QueryGraph, plan: &ExecutionPlan, group: GroupId) -> bool {
    !plan.groups()[group].is_retired()
        && plan.groups()[group].nodes().iter().any(|&n| {
            !graph.is_finished(n) && (graph.queued(n) > 0 || graph.kind(n) == NodeKind::Source)
        })
}

/// The dynamic layer-3 executor: plan-derived initial placement, group
/// ownership with work stealing, periodic stats-driven rebalance, and
/// targeted wakeups.
pub struct WorkStealingExecutor {
    threads: usize,
    quantum: usize,
    sample_every: u64,
    max_quanta_per_thread: Option<u64>,
    batch_limit: Option<usize>,
    rebalance_every: u64,
    initial_groups: Option<Vec<Vec<GroupId>>>,
}

impl WorkStealingExecutor {
    /// Creates an executor with the given number of worker threads, a
    /// quantum of 64 messages, queue sampling every 16 quanta, and a
    /// rebalance check every 256 scheduler iterations.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        WorkStealingExecutor {
            threads,
            quantum: 64,
            sample_every: 16,
            max_quanta_per_thread: None,
            batch_limit: None,
            rebalance_every: 256,
            initial_groups: None,
        }
    }

    /// Sets the per-selection message budget.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Caps quanta per worker (for unbounded sources).
    pub fn with_max_quanta(mut self, max: u64) -> Self {
        self.max_quanta_per_thread = Some(max);
        self
    }

    /// Caps the per-run batch size of every node (see
    /// [`crate::SingleThreadExecutor::with_batch_limit`]).
    pub fn with_batch_limit(mut self, limit: usize) -> Self {
        self.batch_limit = Some(limit.max(1));
        self
    }

    /// Sets how often (in quanta) each worker samples queue totals.
    pub fn with_sample_every(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// Sets how often (in scheduler iterations of the leader worker) the
    /// placement is re-examined against runtime queue depths. `0` disables
    /// rebalancing; stealing still runs.
    pub fn with_rebalance_every(mut self, every: u64) -> Self {
        self.rebalance_every = every;
        self
    }

    /// Overrides the initial group placement (one group-id list per
    /// worker), e.g. to benchmark stealing from a deliberately skewed
    /// start. Defaults to [`ExecutionPlan::partition_groups`].
    pub fn with_initial_groups(mut self, groups: Vec<Vec<GroupId>>) -> Self {
        self.initial_groups = Some(groups);
        self
    }

    /// Plans the graph and runs `make_strategy()` per worker until the
    /// graph finishes. Returns the per-worker reports (merge them with
    /// [`ExecutionReport::merge`]).
    pub fn run(
        &self,
        graph: &Arc<QueryGraph>,
        make_strategy: impl Fn() -> Box<dyn Strategy>,
    ) -> Vec<ExecutionReport> {
        self.run_observed(graph, make_strategy, |_| {})
    }

    /// Like [`WorkStealingExecutor::run`], but hands an [`OwnershipView`]
    /// of the live placement to `observe` after launch (before workers
    /// start), so monitors can follow group ownership while the run is in
    /// flight.
    pub fn run_observed(
        &self,
        graph: &Arc<QueryGraph>,
        make_strategy: impl Fn() -> Box<dyn Strategy>,
        observe: impl FnOnce(OwnershipView),
    ) -> Vec<ExecutionReport> {
        let plan = Arc::new(ExecutionPlan::analyze(graph));
        let n_groups = plan.groups().len();
        let initial = match &self.initial_groups {
            Some(parts) => {
                assert_eq!(parts.len(), self.threads, "one group list per worker");
                parts.clone()
            }
            None => plan.partition_groups(self.threads),
        };
        if let Some(limit) = self.batch_limit {
            graph.set_batch_limit(limit);
        }
        let shared = Arc::new(Shared {
            plan: RwLock::new(plan),
            table: GroupTable::new(n_groups),
            parkers: (0..self.threads).map(|_| Parker::new()).collect(),
            stop: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            targets: Mutex::new(Vec::new()),
        });

        // Targeted wakeups: a productive quantum on `producer` wakes the
        // owners of the foreign groups its output feeds. The plan `Arc` is
        // snapshotted (guard dropped) before touching the table, so the
        // hook never nests the plan lock around table state; a producer
        // spliced in after the current plan wakes nobody until the leader
        // re-plans, which the topology epoch guarantees happens.
        let hook_shared = Arc::clone(&shared);
        graph.set_wake_hook(Arc::new(move |producer| {
            let plan = hook_shared.plan();
            for &g in plan.downstream_groups(producer) {
                if let Some(w) = hook_shared.table.owner(g) {
                    if let Some(p) = hook_shared.parkers.get(w) {
                        pipes_trace::instant(
                            pipes_trace::names::WAKE,
                            [producer as u64, w as u64, 0],
                        );
                        p.unpark();
                    }
                }
            }
        }));

        observe(OwnershipView {
            shared: Arc::clone(&shared),
        });

        let n_workers = self.threads;
        let reports: Vec<ExecutionReport> = thread::scope(|scope| {
            let handles: Vec<_> = initial
                .into_iter()
                .enumerate()
                .map(|(me, my_groups)| {
                    let mut strategy = make_strategy();
                    let graph = Arc::clone(graph);
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        pipes_trace::set_thread_name(&format!("worker-{me}"));
                        self.worker_loop(me, &graph, &shared, strategy.as_mut(), &my_groups)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        graph.clear_wake_hook();
        shared.stop.store(true, Ordering::Release);
        pipes_trace::instant(pipes_trace::names::SHUTDOWN, [n_workers as u64, 0, 0]);
        reports
    }

    fn worker_loop(
        &self,
        me: usize,
        graph: &QueryGraph,
        shared: &Shared,
        strategy: &mut dyn Strategy,
        initial: &[GroupId],
    ) -> ExecutionReport {
        let start = Instant::now();
        for &g in initial {
            if shared.table.try_claim(g, me) {
                pipes_trace::instant(pipes_trace::names::GROUP_CLAIM, [g as u64, me as u64, 0]);
            }
        }
        // Immutable plan snapshot; re-taken whenever the rebalance epoch
        // moves (every plan swap bumps the epoch, so a snapshot is never
        // staler than the placement applied against it).
        let mut plan = shared.plan();
        let mut nodes = plan.nodes_of(&shared.table.owned(me));
        let mut report = ExecutionReport {
            strategy: strategy.name().to_string(),
            ..Default::default()
        };
        let mut queue_samples: u64 = 0;
        let mut queue_sum: f64 = 0.0;
        let mut idle_rounds = 0u32;
        let mut idle = IdleWait::new();
        let mut seen_epoch = 0u64;
        let mut since_rebalance = 0u64;
        loop {
            if shared.stop.load(Ordering::Acquire) {
                break;
            }
            let epoch = shared.epoch.load(Ordering::Acquire);
            if epoch != seen_epoch {
                seen_epoch = epoch;
                plan = shared.plan();
                self.apply_targets(me, &plan, shared, epoch);
                nodes = plan.nodes_of(&shared.table.owned(me));
            }
            if let Some(max) = self.max_quanta_per_thread {
                if report.quanta >= max {
                    report.hit_limit = true;
                    break;
                }
            }
            if me == 0 {
                // Leader duty 1: splice detection. One lock-free epoch
                // poll per iteration; on a move, extend the plan and hand
                // the delta out through the rebalance-epoch protocol.
                if graph.topology_epoch() != plan.planned_epoch() {
                    self.replan(graph, shared);
                    seen_epoch = shared.epoch.load(Ordering::Acquire);
                    plan = shared.plan();
                    self.apply_targets(me, &plan, shared, seen_epoch);
                    nodes = plan.nodes_of(&shared.table.owned(me));
                }
                // Leader duty 2: periodic load rebalance.
                if self.rebalance_every > 0 {
                    since_rebalance += 1;
                    if since_rebalance >= self.rebalance_every {
                        since_rebalance = 0;
                        self.plan_rebalance(graph, &plan, shared);
                    }
                }
            }
            let view = SchedView::new(graph, &nodes);
            let Some(id) = strategy.select(&view) else {
                idle_rounds += 1;
                if idle_rounds > 10_000 {
                    break; // safety valve against a stalled graph
                }
                if self.acquire_work(me, graph, &plan, shared, &mut report.steals) {
                    nodes = plan.nodes_of(&shared.table.owned(me));
                    idle_rounds = 0;
                    idle.reset();
                    continue;
                }
                if graph.all_finished() {
                    shared.stop.store(true, Ordering::Release);
                    pipes_trace::instant(pipes_trace::names::STOP, [0; 3]);
                    shared.wake_all();
                    break;
                }
                idle.wait(&shared.parkers[me]);
                continue;
            };
            let group = plan.group_of(id);
            if !shared.table.begin(group, me) {
                // The group left us (stolen or handed off) since the last
                // ownership refresh — re-derive what we own.
                nodes = plan.nodes_of(&shared.table.owned(me));
                continue;
            }
            let step = {
                let _span = pipes_trace::span_args(
                    pipes_trace::names::QUANTUM,
                    [id as u64, report.quanta, 0],
                );
                graph.step_node(id, self.quantum)
            };
            shared.table.end(group, me);
            report.quanta += 1;
            report.consumed += step.consumed as u64;
            report.produced += step.produced as u64;
            report.batches += step.batches as u64;
            report.peak_run = report.peak_run.max(step.peak_run);
            if step.consumed == 0 && step.produced == 0 {
                idle_rounds += 1;
                if idle_rounds > 10_000 {
                    break;
                }
                if graph.all_finished() {
                    shared.stop.store(true, Ordering::Release);
                    pipes_trace::instant(pipes_trace::names::STOP, [0; 3]);
                    shared.wake_all();
                    break;
                }
            } else {
                idle_rounds = 0;
                idle.reset();
            }
            if report.quanta.is_multiple_of(self.sample_every) {
                let total: usize = nodes.iter().map(|&n| graph.queued(n)).sum();
                let state: usize = nodes.iter().map(|&n| graph.memory(n)).sum();
                report.peak_queue = report.peak_queue.max(total);
                report.peak_state = report.peak_state.max(state);
                queue_sum += total as f64;
                queue_samples += 1;
            }
        }
        report.avg_queue = if queue_samples > 0 {
            queue_sum / queue_samples as f64
        } else {
            0.0
        };
        report.wall = start.elapsed();
        report
    }

    /// Idle-path work acquisition: adopt free runnable groups, else steal
    /// one runnable group from the most loaded peer. A peer keeps its last
    /// runnable group (stealing only targets owners of two or more), so a
    /// worker that simply hasn't been scheduled is not stripped of the work
    /// a wakeup is already heading its way for. Returns whether anything
    /// was acquired.
    fn acquire_work(
        &self,
        me: usize,
        graph: &QueryGraph,
        plan: &ExecutionPlan,
        shared: &Shared,
        steals: &mut u64,
    ) -> bool {
        let table = &shared.table;
        // Bounded by the caller's plan snapshot, not the table: after a
        // splice the leader grows the table *before* publishing the new
        // plan, so the table can be longer than a stale snapshot — those
        // trailing groups are only touched once the worker refreshes.
        let covered = plan.groups().len();
        let mut got = false;
        for g in 0..covered {
            if table.owner(g).is_none() && group_runnable(graph, plan, g) && table.try_claim(g, me)
            {
                pipes_trace::instant(pipes_trace::names::GROUP_CLAIM, [g as u64, me as u64, 0]);
                got = true;
            }
        }
        if got {
            return true;
        }
        let mut runnable_of: Vec<Vec<GroupId>> = vec![Vec::new(); self.threads];
        for g in 0..covered {
            if let Some(w) = table.owner(g) {
                if w != me && w < self.threads && group_runnable(graph, plan, g) {
                    runnable_of[w].push(g);
                }
            }
        }
        let Some((victim, groups)) = runnable_of
            .iter()
            .enumerate()
            .filter(|(_, v)| v.len() >= 2)
            .max_by_key(|(_, v)| v.len())
        else {
            return false;
        };
        // Take from the tail: the victim's strategy reaches those last.
        for &g in groups.iter().rev() {
            if table.try_steal(g, victim, me) {
                pipes_trace::instant(
                    pipes_trace::names::STEAL,
                    [g as u64, victim as u64, me as u64],
                );
                *steals += 1;
                return true;
            }
        }
        false
    }

    /// Applies a published placement: release own groups targeted
    /// elsewhere (waking the target), claim free groups targeted here.
    /// A retired group's target is [`NO_TARGET`], so its owner releases it
    /// and no claim loop anywhere picks it back up — that is the entire
    /// drain protocol. The claim loop is bounded by the caller's plan
    /// snapshot so a placement published for a newer plan can never hand
    /// this worker a group its snapshot cannot resolve to nodes.
    fn apply_targets(&self, me: usize, plan: &ExecutionPlan, shared: &Shared, epoch: u64) {
        let targets = shared.targets.lock().clone();
        for g in shared.table.owned(me) {
            let target = targets.get(g).copied().unwrap_or(me);
            if target != me && shared.table.release(g, me) {
                pipes_trace::instant(
                    pipes_trace::names::GROUP_RELEASE,
                    [g as u64, me as u64, epoch],
                );
                if let Some(p) = shared.parkers.get(target) {
                    p.unpark();
                }
            }
        }
        for (g, &target) in targets.iter().enumerate().take(plan.groups().len()) {
            if target == me && shared.table.owner(g).is_none() && shared.table.try_claim(g, me) {
                pipes_trace::instant(pipes_trace::names::GROUP_CLAIM, [g as u64, me as u64, 0]);
            }
        }
    }

    /// Seconds of projected input arrivals folded into a group's rebalance
    /// cost: queue depth measures backlog *now*, the metadata plane's input
    /// rate projects the immediate future, so a hot group reads as loaded
    /// even at the instant its queues happen to be drained. Half a
    /// millisecond keeps the backlog term dominant.
    const RATE_HORIZON_SECS: f64 = 0.0005;

    /// Leader-only: re-place groups by longest-processing-time over a
    /// metadata-plane snapshot (queue depths plus measured input rates)
    /// when the per-worker load spread has grown past 2× plus slack.
    /// Publishing a new epoch makes every worker hand off / pick up groups
    /// at its next iteration. Retired groups are targeted at [`NO_TARGET`]
    /// so they stay out of every worker's hands.
    fn plan_rebalance(&self, graph: &QueryGraph, plan: &ExecutionPlan, shared: &Shared) {
        let n = plan.groups().len();
        if n < 2 || self.threads < 2 {
            return;
        }
        // One consistent point-in-time view for the whole placement round;
        // per-node seqlock reads never block the stepping workers. Rate
        // terms only count measured/derived estimates — priors (and a
        // meta-off build, where every estimate is a prior) contribute
        // nothing, degrading to pure queue-depth costing.
        let snap = graph.meta_snapshot(&pipes_graph::MetaConfig::default());
        let costs: Vec<u64> = plan
            .groups()
            .iter()
            .map(|grp| {
                if grp.is_retired() {
                    return 0;
                }
                let mut queued = 0u64;
                let mut projected = 0.0f64;
                let mut live_source = false;
                for &m in grp.nodes() {
                    let Some(est) = snap.get(m) else { continue };
                    queued += est.queue_len as u64;
                    if est.confidence != pipes_graph::Confidence::Prior {
                        projected += est.in_rate * Self::RATE_HORIZON_SECS;
                    }
                    if est.kind == NodeKind::Source && !graph.is_finished(m) {
                        live_source = true;
                    }
                }
                queued + projected as u64 + if live_source { self.quantum as u64 } else { 0 }
            })
            .collect();
        let mut load = vec![0u64; self.threads];
        for (g, &cost) in costs.iter().enumerate() {
            if let Some(w) = shared.table.owner(g) {
                if w < self.threads {
                    load[w] += cost;
                }
            }
        }
        let max = load.iter().copied().max().unwrap_or(0);
        let min = load.iter().copied().min().unwrap_or(0);
        if max <= min.saturating_mul(2).saturating_add(self.quantum as u64) {
            return; // balanced enough; avoid churn
        }
        let mut order: Vec<GroupId> = (0..n).filter(|&g| !plan.groups()[g].is_retired()).collect();
        order.sort_by_key(|&g| std::cmp::Reverse(costs[g]));
        let mut targets = vec![NO_TARGET; n];
        let mut target_load = vec![0u64; self.threads];
        for g in order {
            let w = (0..self.threads)
                .min_by_key(|&t| target_load[t])
                .expect("threads > 0");
            targets[g] = w;
            target_load[w] += costs[g].max(1);
        }
        let moved = (0..n)
            .filter(|&g| shared.table.owner(g).is_some_and(|w| w != targets[g]))
            .count();
        if moved == 0 {
            return;
        }
        *shared.targets.lock() = targets;
        let epoch = shared.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        pipes_trace::instant(pipes_trace::names::REBALANCE_PLAN, [epoch, moved as u64, 0]);
        shared.wake_all();
    }

    /// Leader-only: the topology epoch moved — extend the plan over the
    /// spliced/retired nodes ([`ExecutionPlan::refreshed`] keeps existing
    /// group ids and in-flight state), grow the `GroupTable` *before*
    /// publishing the new plan (so no reader ever resolves a group the
    /// table cannot hold), place new groups onto the lightest workers,
    /// and hand the delta out through the existing rebalance-epoch
    /// release→claim protocol.
    fn replan(&self, graph: &QueryGraph, shared: &Shared) {
        let old = shared.plan();
        let new_plan = Arc::new(old.refreshed(graph));
        let old_groups = old.groups().len();
        let total = new_plan.groups().len();
        shared.table.grow(total);

        // Existing groups stay where they are (their current owner is the
        // target; free ones join the LPT pass with the new groups);
        // retired groups go to NO_TARGET and drain out.
        let mut targets = vec![NO_TARGET; total];
        let mut load = vec![0u64; self.threads];
        let mut unplaced: Vec<GroupId> = Vec::new();
        let mut retired_count = 0u64;
        for (g, grp) in new_plan.groups().iter().enumerate() {
            if grp.is_retired() {
                if old.groups().get(g).is_none_or(|o| !o.is_retired()) {
                    retired_count += 1;
                }
                continue;
            }
            match shared.table.owner(g) {
                Some(w) if w < self.threads => {
                    targets[g] = w;
                    load[w] += grp.static_cost().max(1);
                }
                _ => unplaced.push(g),
            }
        }
        unplaced.sort_by_key(|&g| std::cmp::Reverse(new_plan.groups()[g].static_cost()));
        for g in unplaced {
            let w = (0..self.threads)
                .min_by_key(|&t| load[t])
                .expect("threads > 0");
            targets[g] = w;
            load[w] += new_plan.groups()[g].static_cost().max(1);
        }

        *shared.targets.lock() = targets;
        *shared.plan.write() = Arc::clone(&new_plan);
        let new_groups = (total - old_groups) as u64;
        pipes_trace::instant(
            pipes_trace::names::SCHED_REPLAN,
            [new_plan.planned_epoch(), new_groups, retired_count],
        );
        shared.epoch.fetch_add(1, Ordering::AcqRel);
        shared.wake_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{FifoStrategy, RoundRobinStrategy};
    use pipes_graph::io::{CollectSink, VecSource};
    use pipes_graph::{Collector, Operator};
    use pipes_time::{Element, Timestamp};

    struct HalfFilter;
    impl Operator for HalfFilter {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            if e.payload % 2 == 0 {
                out.element(e);
            }
        }
    }

    fn elems(n: i64) -> Vec<Element<i64>> {
        (0..n)
            .map(|i| Element::at(i, Timestamp::new(i as u64)))
            .collect()
    }

    /// `chains` independent source→filter→sink pipelines of `n` elements.
    fn multi_chain(
        chains: usize,
        n: i64,
    ) -> (Arc<QueryGraph>, Vec<pipes_graph::io::Collected<i64>>) {
        let g = QueryGraph::new();
        let mut bufs = Vec::new();
        for c in 0..chains {
            let src = g.add_source(&format!("src{c}"), VecSource::new(elems(n)));
            let f = g.add_unary(&format!("f{c}"), HalfFilter, &src);
            let (sink, buf) = CollectSink::new();
            g.add_sink(&format!("sink{c}"), sink, &f);
            bufs.push(buf);
        }
        (Arc::new(g), bufs)
    }

    #[test]
    fn completes_and_preserves_results() {
        let (g, bufs) = multi_chain(3, 400);
        let reports = WorkStealingExecutor::new(2).run(&g, || Box::new(RoundRobinStrategy::new()));
        assert_eq!(reports.len(), 2);
        assert!(g.all_finished());
        for buf in &bufs {
            assert_eq!(buf.lock().len(), 200);
        }
        let merged = ExecutionReport::merge(&reports);
        assert!(merged.consumed > 0);
        assert!(!merged.hit_limit);
    }

    #[test]
    fn idle_worker_steals_from_a_skewed_start() {
        let (g, bufs) = multi_chain(8, 4000);
        let plan = ExecutionPlan::analyze(&g);
        assert_eq!(plan.groups().len(), 8);
        // Deliberately park every group on worker 0; worker 1 must steal.
        let all: Vec<GroupId> = (0..plan.groups().len()).collect();
        let reports = WorkStealingExecutor::new(2)
            .with_rebalance_every(0)
            .with_initial_groups(vec![all, Vec::new()])
            .run(&g, || Box::new(FifoStrategy));
        assert!(g.all_finished());
        for buf in &bufs {
            assert_eq!(buf.lock().len(), 2000);
        }
        let merged = ExecutionReport::merge(&reports);
        assert!(
            merged.steals >= 1,
            "the empty worker should have stolen at least one of the 8 runnable groups"
        );
        assert!(
            reports[1].quanta > 0,
            "worker 1 did real work after stealing"
        );
    }

    #[test]
    fn rebalance_path_preserves_results() {
        let (g, bufs) = multi_chain(4, 1000);
        // Rebalance aggressively from a skewed start so release/claim
        // hand-offs actually happen mid-run.
        let plan_groups = ExecutionPlan::analyze(&g).groups().len();
        let reports = WorkStealingExecutor::new(2)
            .with_rebalance_every(8)
            .with_initial_groups(vec![(0..plan_groups).collect(), Vec::new()])
            .run(&g, || Box::new(RoundRobinStrategy::new()));
        assert!(g.all_finished());
        for buf in &bufs {
            assert_eq!(buf.lock().len(), 500);
        }
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn ownership_view_tracks_placement() {
        let (g, _bufs) = multi_chain(2, 100);
        let mut seen = None;
        let reports = WorkStealingExecutor::new(2).run_observed(
            &g,
            || Box::new(FifoStrategy),
            |view| seen = Some(view),
        );
        let view = seen.expect("observe callback ran");
        assert_eq!(view.workers(), 2);
        assert_eq!(view.group_of(0), view.group_of(1), "chain fused");
        assert_ne!(view.group_of(0), view.group_of(3));
        // Workers keep their groups on exit, so the final placement is
        // visible after the run.
        assert!(view.worker_of(0).is_some());
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn single_thread_work_stealing_degenerates_gracefully() {
        let (g, bufs) = multi_chain(2, 200);
        let reports = WorkStealingExecutor::new(1).run(&g, || Box::new(FifoStrategy));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].steals, 0);
        assert!(g.all_finished());
        for buf in &bufs {
            assert_eq!(buf.lock().len(), 100);
        }
    }

    #[test]
    fn queries_splice_into_a_running_executor_and_retire_cleanly() {
        use pipes_graph::io::GenSource;

        let g = Arc::new(QueryGraph::new());
        let open = Arc::new(AtomicBool::new(true));
        let gate = Arc::clone(&open);
        let mut t = 0u64;
        let src = g.add_source(
            "live",
            GenSource::new(move || {
                // ordering: Acquire — pairs with the Release close below so
                // the source observes the shutdown promptly.
                if !gate.load(Ordering::Acquire) {
                    return None;
                }
                t += 1;
                Some(Element::at(t as i64, Timestamp::new(t)))
            }),
        );
        let f = g.add_unary("f1", HalfFilter, &src);
        let (sink, buf1) = CollectSink::new();
        g.add_sink("sink1", sink, &f);

        let graph = Arc::clone(&g);
        let handle = thread::spawn(move || {
            WorkStealingExecutor::new(2)
                .with_quantum(16)
                .run(&graph, || Box::new(FifoStrategy))
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        let wait = |cond: &dyn Fn() -> bool| {
            while !cond() {
                assert!(Instant::now() < deadline, "timed out waiting");
                thread::yield_now();
            }
        };
        // The first query is demonstrably flowing...
        wait(&|| buf1.lock().len() >= 100);
        // ...now splice a second query onto the live source, no restart.
        let f2 = g.add_unary("f2", HalfFilter, &src);
        let (sink2, buf2) = CollectSink::new();
        let k2 = g.add_sink("sink2", sink2, &f2);
        wait(&|| buf2.lock().len() >= 100);
        let spliced_results = buf2.lock().len();
        // Retire the spliced query while the executor keeps running.
        g.remove_node(k2);
        g.remove_node(f2.node());
        wait(&|| buf1.lock().len() >= 2 * spliced_results);
        // Close the source; the run drains and joins.
        open.store(false, Ordering::Release);
        let reports = handle.join().expect("executor thread");
        assert!(g.all_finished());
        assert!(buf2.lock().len() >= spliced_results);
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn max_quanta_bounds_unfinished_runs() {
        let (g, _bufs) = multi_chain(2, 100_000);
        let reports = WorkStealingExecutor::new(2)
            .with_quantum(8)
            .with_max_quanta(5)
            .run(&g, || Box::new(FifoStrategy));
        assert!(reports.iter().any(|r| r.hit_limit));
        assert!(reports.iter().all(|r| r.quanta <= 5));
    }
}
