//! # pipes-sched
//!
//! The scheduling framework of PIPES: a 3-layer architecture.
//!
//! 1. **Layer 1 — virtual nodes.** Adjacent operators become one scheduling
//!    unit, two ways: fused *before* graph construction
//!    (`pipes_graph::OperatorExt::then`, no inter-operator queue at all),
//!    or grouped *at launch* by [`ExecutionPlan::analyze`], which walks the
//!    assembled topology and fuses single-producer/single-consumer chains
//!    into [`VirtualGroup`]s that are scheduled and placed together, so
//!    intra-chain edges stay thread-local.
//! 2. **Layer 2 — intra-thread strategies.** Within one thread, an
//!    exchangeable [`Strategy`] decides which node runs its next quantum:
//!    round-robin, FIFO (global arrival order), greedy-by-queue, Chain
//!    (memory-minimizing, after Babcock et al.), rate-based (after
//!    Aurora/Urhan–Franklin), or random. All strategies consume only the
//!    type-erased node view (queue lengths, arrival sequences, observed
//!    selectivity), which is what makes the framework "powerful enough to
//!    compare most of the recent scheduling techniques … within a uniform
//!    framework" (PIPES, SIGMOD 2004).
//! 3. **Layer 3 — threads.** [`MultiThreadExecutor`] statically assigns the
//!    plan's groups to worker threads, each running its own layer-2
//!    strategy. [`WorkStealingExecutor`] makes the placement dynamic:
//!    workers *own* groups through an atomic claim protocol
//!    ([`GroupTable`]), idle workers steal runnable groups from loaded
//!    peers, a periodic rebalance re-places groups from runtime queue
//!    depths, and productive quanta wake the specific owning worker
//!    (targeted unpark) instead of relying on park timeouts.
//!
//! Executors collect an [`ExecutionReport`] (throughput, queue memory peaks
//! and averages) — the measurements behind the scheduler-comparison
//! experiments (E5, E16).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod plan;
mod steal;
mod strategy;
mod worker;

pub use executor::{ExecutionReport, MultiThreadExecutor, SingleThreadExecutor};
pub use plan::{ExecutionPlan, GroupId, VirtualGroup};
pub use steal::{GroupTable, Parker};
pub use strategy::{
    ChainStrategy, FifoStrategy, GreedyStrategy, RandomStrategy, RateBasedStrategy,
    RoundRobinStrategy, SchedView, Strategy,
};
pub use worker::{OwnershipView, WorkStealingExecutor};
