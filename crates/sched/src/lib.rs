//! # pipes-sched
//!
//! The scheduling framework of PIPES: a 3-layer architecture.
//!
//! 1. **Layer 1 — virtual nodes.** Adjacent operators are fused into one
//!    node *before* graph construction (`pipes_graph::OperatorExt::then`),
//!    eliminating inter-operator queues inside the virtual node.
//! 2. **Layer 2 — intra-thread strategies.** Within one thread, an
//!    exchangeable [`Strategy`] decides which node runs its next quantum:
//!    round-robin, FIFO (global arrival order), greedy-by-queue, Chain
//!    (memory-minimizing, after Babcock et al.), rate-based (after
//!    Aurora/Urhan–Franklin), or random. All strategies consume only the
//!    type-erased node view (queue lengths, arrival sequences, observed
//!    selectivity), which is what makes the framework "powerful enough to
//!    compare most of the recent scheduling techniques … within a uniform
//!    framework" (PIPES, SIGMOD 2004).
//! 3. **Layer 3 — threads.** [`MultiThreadExecutor`] partitions the node set
//!    over worker threads, each running its own layer-2 strategy; the OS
//!    schedules the threads.
//!
//! Executors collect an [`ExecutionReport`] (throughput, queue memory peaks
//! and averages) — the measurements behind the scheduler-comparison
//! experiment (E5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod strategy;

pub use executor::{ExecutionReport, MultiThreadExecutor, SingleThreadExecutor};
pub use strategy::{
    ChainStrategy, FifoStrategy, GreedyStrategy, RandomStrategy, RateBasedStrategy,
    RoundRobinStrategy, SchedView, Strategy,
};
