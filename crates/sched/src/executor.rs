//! Layer-2/3 executors: single-thread strategy loops and the multi-thread
//! partitioner.

use crate::strategy::{SchedView, Strategy};
use pipes_graph::{NodeId, QueryGraph};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Measurements from one execution.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Strategy name that produced this report.
    pub strategy: String,
    /// Scheduling quanta executed.
    pub quanta: u64,
    /// Messages consumed across all nodes.
    pub consumed: u64,
    /// Elements produced across all nodes.
    pub produced: u64,
    /// Wall-clock time.
    pub wall: std::time::Duration,
    /// Largest total queued-message count observed (queue memory peak).
    pub peak_queue: usize,
    /// Mean total queued-message count over samples.
    pub avg_queue: f64,
    /// Largest total operator state observed.
    pub peak_state: usize,
    /// Whether execution ended because the quantum limit was hit.
    pub hit_limit: bool,
}

impl ExecutionReport {
    /// Elements produced per second of wall time.
    pub fn throughput(&self) -> f64 {
        self.produced as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Runs one layer-2 strategy over a set of nodes until the graph finishes
/// (or a quantum limit is reached, for unbounded sources).
pub struct SingleThreadExecutor {
    quantum: usize,
    sample_every: u64,
    max_quanta: Option<u64>,
}

impl Default for SingleThreadExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl SingleThreadExecutor {
    /// Creates an executor with a quantum of 64 messages and queue sampling
    /// every 16 quanta.
    pub fn new() -> Self {
        SingleThreadExecutor {
            quantum: 64,
            sample_every: 16,
            max_quanta: None,
        }
    }

    /// Sets the per-selection message budget.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Caps the number of quanta (needed for unbounded sources).
    pub fn with_max_quanta(mut self, max: u64) -> Self {
        self.max_quanta = Some(max);
        self
    }

    /// Sets how often (in quanta) queue totals are sampled.
    pub fn with_sample_every(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// Runs `strategy` over all nodes of `graph` until completion.
    pub fn run(&self, graph: &QueryGraph, strategy: &mut dyn Strategy) -> ExecutionReport {
        let nodes: Vec<NodeId> = (0..graph.len()).collect();
        self.run_nodes(graph, strategy, &nodes, None)
    }

    /// Runs `strategy` over the given node subset; used by the layer-3
    /// executor. An optional shared stop flag ends the loop early.
    pub fn run_nodes(
        &self,
        graph: &QueryGraph,
        strategy: &mut dyn Strategy,
        nodes: &[NodeId],
        stop: Option<&AtomicBool>,
    ) -> ExecutionReport {
        let start = Instant::now();
        let mut report = ExecutionReport {
            strategy: strategy.name().to_string(),
            ..Default::default()
        };
        let mut queue_samples: u64 = 0;
        let mut queue_sum: f64 = 0.0;
        let mut idle_rounds = 0u32;
        loop {
            if let Some(flag) = stop {
                if flag.load(Ordering::Relaxed) {
                    break;
                }
            }
            if nodes.iter().all(|&id| graph.is_finished(id)) {
                break;
            }
            if let Some(max) = self.max_quanta {
                if report.quanta >= max {
                    report.hit_limit = true;
                    break;
                }
            }
            let view = SchedView::new(graph, nodes);
            let Some(id) = strategy.select(&view) else {
                // Nothing runnable here right now (another partition may
                // still feed us): back off briefly.
                idle_rounds += 1;
                if stop.is_none() && idle_rounds > 1000 {
                    // Single-partition execution with no runnable node and
                    // unfinished graph: the graph is stalled.
                    break;
                }
                std::thread::yield_now();
                continue;
            };
            let step = graph.step_node(id, self.quantum);
            report.quanta += 1;
            report.consumed += step.consumed as u64;
            report.produced += step.produced as u64;
            if step.consumed == 0 && step.produced == 0 {
                idle_rounds += 1;
                if idle_rounds > 10_000 {
                    break; // safety valve against stuck strategies
                }
            } else {
                idle_rounds = 0;
            }
            if report.quanta.is_multiple_of(self.sample_every) {
                let total: usize = nodes.iter().map(|&id| graph.queued(id)).sum();
                let state: usize = nodes.iter().map(|&id| graph.memory(id)).sum();
                report.peak_queue = report.peak_queue.max(total);
                report.peak_state = report.peak_state.max(state);
                queue_sum += total as f64;
                queue_samples += 1;
            }
        }
        report.avg_queue = if queue_samples > 0 {
            queue_sum / queue_samples as f64
        } else {
            0.0
        };
        report.wall = start.elapsed();
        report
    }
}

/// Layer 3: partitions the node set over worker threads, each running its
/// own layer-2 strategy instance.
pub struct MultiThreadExecutor {
    threads: usize,
    quantum: usize,
    max_quanta_per_thread: Option<u64>,
}

impl MultiThreadExecutor {
    /// Creates an executor with the given number of worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        MultiThreadExecutor {
            threads,
            quantum: 64,
            max_quanta_per_thread: None,
        }
    }

    /// Sets the per-selection message budget.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Caps quanta per thread (for unbounded sources).
    pub fn with_max_quanta(mut self, max: u64) -> Self {
        self.max_quanta_per_thread = Some(max);
        self
    }

    /// Partitions nodes round-robin and runs `make_strategy()` per thread.
    /// Returns the per-thread reports.
    pub fn run(
        &self,
        graph: &Arc<QueryGraph>,
        make_strategy: impl Fn() -> Box<dyn Strategy>,
    ) -> Vec<ExecutionReport> {
        let all: Vec<NodeId> = (0..graph.len()).collect();
        let partitions: Vec<Vec<NodeId>> = (0..self.threads)
            .map(|t| all.iter().copied().skip(t).step_by(self.threads).collect())
            .collect();
        self.run_partitions(graph, make_strategy, partitions)
    }

    /// Runs with an explicit node partitioning.
    pub fn run_partitions(
        &self,
        graph: &Arc<QueryGraph>,
        make_strategy: impl Fn() -> Box<dyn Strategy>,
        partitions: Vec<Vec<NodeId>>,
    ) -> Vec<ExecutionReport> {
        let stop = Arc::new(AtomicBool::new(false));

        // A watchdog flips the stop flag once the whole graph is finished,
        // releasing threads whose own partition ran dry early.
        let watchdog = {
            let graph = Arc::clone(graph);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if graph.all_finished() {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            })
        };

        let mut exec = SingleThreadExecutor::new().with_quantum(self.quantum);
        if let Some(max) = self.max_quanta_per_thread {
            exec = exec.with_max_quanta(max);
        }

        let reports: Vec<ExecutionReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .into_iter()
                .map(|part| {
                    let mut strategy = make_strategy();
                    let graph = Arc::clone(graph);
                    let stop = Arc::clone(&stop);
                    let exec = &exec;
                    scope.spawn(move || {
                        exec.run_nodes(&graph, strategy.as_mut(), &part, Some(&stop))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        stop.store(true, Ordering::Relaxed);
        let _ = watchdog.join();
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{
        ChainStrategy, FifoStrategy, GreedyStrategy, RandomStrategy, RateBasedStrategy,
        RoundRobinStrategy,
    };
    use pipes_graph::io::{CollectSink, VecSource};
    use pipes_graph::{Collector, Operator};
    use pipes_time::{Element, Timestamp};

    struct HalfFilter;
    impl Operator for HalfFilter {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            if e.payload % 2 == 0 {
                out.element(e);
            }
        }
    }

    fn build(n: i64) -> (QueryGraph, pipes_graph::io::Collected<i64>) {
        let g = QueryGraph::new();
        let elems: Vec<Element<i64>> = (0..n)
            .map(|i| Element::at(i, Timestamp::new(i as u64)))
            .collect();
        let src = g.add_source("src", VecSource::new(elems));
        let f = g.add_unary("filter", HalfFilter, &src);
        let (sink, buf) = CollectSink::new();
        g.add_sink("sink", sink, &f);
        (g, buf)
    }

    #[test]
    fn single_thread_all_strategies_complete_with_same_answer() {
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(RoundRobinStrategy::new()),
            Box::new(FifoStrategy),
            Box::new(GreedyStrategy),
            Box::new(RandomStrategy::new(7)),
            Box::new(ChainStrategy::new(16)),
            Box::new(RateBasedStrategy),
        ];
        for mut s in strategies {
            let (g, buf) = build(200);
            let report = SingleThreadExecutor::new().run(&g, s.as_mut());
            assert!(g.all_finished(), "{} did not finish", report.strategy);
            assert_eq!(buf.lock().len(), 100, "{} lost data", report.strategy);
            assert!(report.consumed > 0);
            assert!(!report.hit_limit);
        }
    }

    #[test]
    fn quantum_limit_reported() {
        let (g, _) = build(10_000);
        let mut s = RoundRobinStrategy::new();
        let report = SingleThreadExecutor::new()
            .with_quantum(8)
            .with_max_quanta(10)
            .run(&g, &mut s);
        assert!(report.hit_limit);
        assert_eq!(report.quanta, 10);
    }

    #[test]
    fn queue_stats_collected() {
        let (g, _) = build(2000);
        let mut s = FifoStrategy;
        let report = SingleThreadExecutor::new()
            .with_quantum(4)
            .with_sample_every(1)
            .run(&g, &mut s);
        assert!(report.peak_queue > 0);
        assert!(report.avg_queue >= 0.0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn multi_thread_completes_and_preserves_results() {
        let (g, buf) = build(500);
        let g = Arc::new(g);
        let reports =
            MultiThreadExecutor::new(3).run(&g, || Box::new(RoundRobinStrategy::new()));
        assert_eq!(reports.len(), 3);
        assert!(g.all_finished());
        assert_eq!(buf.lock().len(), 250);
    }

    #[test]
    fn multi_thread_explicit_partitions() {
        let (g, buf) = build(300);
        let g = Arc::new(g);
        // Source alone on one thread; operator+sink on the other.
        let reports = MultiThreadExecutor::new(2).run_partitions(
            &g,
            || Box::new(FifoStrategy),
            vec![vec![0], vec![1, 2]],
        );
        assert_eq!(reports.len(), 2);
        assert!(g.all_finished());
        assert_eq!(buf.lock().len(), 150);
    }
}
