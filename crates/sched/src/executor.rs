//! Layer-2/3 executors: single-thread strategy loops and the multi-thread
//! partitioner.

use crate::strategy::{SchedView, Strategy};
use pipes_graph::{NodeId, QueryGraph};
use pipes_sync::atomic::{AtomicBool, Ordering};
use pipes_sync::{hint, thread, Arc};
use std::time::{Duration, Instant};

/// Measurements from one execution.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Strategy name that produced this report.
    pub strategy: String,
    /// Scheduling quanta executed.
    pub quanta: u64,
    /// Messages consumed across all nodes.
    pub consumed: u64,
    /// Elements produced across all nodes.
    pub produced: u64,
    /// Batched input-queue drains across all nodes (each moved a run of
    /// messages under one lock acquisition).
    pub batches: u64,
    /// Wall-clock time.
    pub wall: std::time::Duration,
    /// Largest total queued-message count observed (queue memory peak).
    pub peak_queue: usize,
    /// Mean total queued-message count over samples.
    pub avg_queue: f64,
    /// Largest total operator state observed.
    pub peak_state: usize,
    /// Whether execution ended because the quantum limit was hit.
    pub hit_limit: bool,
    /// Virtual-node groups this worker stole from peers (always 0 outside
    /// the [`crate::WorkStealingExecutor`]).
    pub steals: u64,
    /// Largest single input run (in messages) any node drained in one
    /// quantum — how far the run-at-a-time operator path actually batched.
    pub peak_run: usize,
}

impl ExecutionReport {
    /// Elements produced per second of wall time.
    pub fn throughput(&self) -> f64 {
        self.produced as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Mean messages moved per batched queue drain (0 if nothing consumed).
    pub fn avg_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.consumed as f64 / self.batches as f64
        }
    }

    /// Aggregates per-thread reports from a multi-threaded run into one:
    /// quanta, consumed, produced, batches and steals are summed; queue and
    /// state peaks are maxed; wall time is the maximum (the threads ran
    /// concurrently); the average queue is weighted by each thread's
    /// quanta; `hit_limit` is set if any thread hit its limit. The strategy
    /// name is taken from the first report.
    pub fn merge(reports: &[ExecutionReport]) -> ExecutionReport {
        let mut merged = ExecutionReport {
            strategy: reports
                .first()
                .map(|r| r.strategy.clone())
                .unwrap_or_default(),
            ..Default::default()
        };
        let mut weighted_queue = 0.0;
        for r in reports {
            merged.quanta += r.quanta;
            merged.consumed += r.consumed;
            merged.produced += r.produced;
            merged.batches += r.batches;
            merged.steals += r.steals;
            merged.wall = merged.wall.max(r.wall);
            merged.peak_queue = merged.peak_queue.max(r.peak_queue);
            merged.peak_state = merged.peak_state.max(r.peak_state);
            merged.peak_run = merged.peak_run.max(r.peak_run);
            merged.hit_limit |= r.hit_limit;
            weighted_queue += r.avg_queue * r.quanta as f64;
        }
        merged.avg_queue = if merged.quanta > 0 {
            weighted_queue / merged.quanta as f64
        } else {
            0.0
        };
        merged
    }
}

/// Adaptive idle waiting: spin briefly (the common case — another worker is
/// about to publish), then yield the core, then park with growing timeouts.
/// Replaces both the bare `yield_now` idle loop and the former 200µs polling
/// watchdog thread: an idle worker burns almost no CPU, yet still notices
/// new work within a spin or at worst one bounded park timeout.
struct Backoff {
    rounds: u32,
}

impl Backoff {
    /// Rounds spent busy-spinning (with exponentially more `spin_loop`
    /// hints each round) before yielding.
    const SPIN_ROUNDS: u32 = 6;
    /// Additional rounds spent yielding before parking.
    const YIELD_ROUNDS: u32 = 4;
    /// First park timeout; doubles per round up to [`Backoff::MAX_PARK`].
    const FIRST_PARK: Duration = Duration::from_micros(50);
    /// Longest park timeout — bounds how stale an idle worker's view of the
    /// stop flag and of graph completion can get.
    const MAX_PARK: Duration = Duration::from_micros(1600);

    fn new() -> Self {
        Backoff { rounds: 0 }
    }

    /// Waits a little longer than last time.
    fn wait(&mut self) {
        if self.rounds < Self::SPIN_ROUNDS {
            for _ in 0..(1u32 << self.rounds) {
                hint::spin_loop();
            }
        } else if self.rounds < Self::SPIN_ROUNDS + Self::YIELD_ROUNDS {
            thread::yield_now();
        } else {
            let doublings = (self.rounds - Self::SPIN_ROUNDS - Self::YIELD_ROUNDS).min(5);
            let timeout = Self::FIRST_PARK
                .saturating_mul(1 << doublings)
                .min(Self::MAX_PARK);
            pipes_trace::instant(pipes_trace::names::PARK, [timeout.as_micros() as u64, 0, 0]);
            thread::park_timeout(timeout);
            pipes_trace::instant(pipes_trace::names::UNPARK, [0; 3]);
        }
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Progress was made: start the next idle episode from the spin phase.
    fn reset(&mut self) {
        self.rounds = 0;
    }
}

/// Runs one layer-2 strategy over a set of nodes until the graph finishes
/// (or a quantum limit is reached, for unbounded sources).
pub struct SingleThreadExecutor {
    quantum: usize,
    sample_every: u64,
    max_quanta: Option<u64>,
    batch_limit: Option<usize>,
}

impl Default for SingleThreadExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl SingleThreadExecutor {
    /// Creates an executor with a quantum of 64 messages and queue sampling
    /// every 16 quanta.
    pub fn new() -> Self {
        SingleThreadExecutor {
            quantum: 64,
            sample_every: 16,
            max_quanta: None,
            batch_limit: None,
        }
    }

    /// Sets the per-selection message budget.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Caps the per-run batch size of every node this executor drives
    /// (see [`QueryGraph::set_node_batch_limit`]). A limit of 1 reproduces
    /// the per-message data path — useful as a benchmarking baseline.
    pub fn with_batch_limit(mut self, limit: usize) -> Self {
        self.batch_limit = Some(limit.max(1));
        self
    }

    /// Caps the number of quanta (needed for unbounded sources).
    pub fn with_max_quanta(mut self, max: u64) -> Self {
        self.max_quanta = Some(max);
        self
    }

    /// Sets how often (in quanta) queue totals are sampled.
    pub fn with_sample_every(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// Runs `strategy` over all nodes of `graph` until completion.
    pub fn run(&self, graph: &QueryGraph, strategy: &mut dyn Strategy) -> ExecutionReport {
        let nodes: Vec<NodeId> = (0..graph.len()).collect();
        self.run_nodes(graph, strategy, &nodes, None)
    }

    /// Runs `strategy` over the given node subset; used by the layer-3
    /// executor. An optional shared stop flag ends the loop early.
    pub fn run_nodes(
        &self,
        graph: &QueryGraph,
        strategy: &mut dyn Strategy,
        nodes: &[NodeId],
        stop: Option<&AtomicBool>,
    ) -> ExecutionReport {
        let start = Instant::now();
        if let Some(limit) = self.batch_limit {
            for &id in nodes {
                graph.set_node_batch_limit(id, limit);
            }
        }
        let mut report = ExecutionReport {
            strategy: strategy.name().to_string(),
            ..Default::default()
        };
        let mut queue_samples: u64 = 0;
        let mut queue_sum: f64 = 0.0;
        let mut idle_rounds = 0u32;
        let mut backoff = Backoff::new();
        loop {
            if let Some(flag) = stop {
                // Acquire pairs with the Release store below (and the one
                // in run_partitions): a worker that observes the stop flag
                // also observes everything the stopping thread did before
                // raising it, and the compiler cannot hoist the load out
                // of the loop the way a Relaxed read could legally be.
                if flag.load(Ordering::Acquire) {
                    break;
                }
            }
            if nodes.iter().all(|&id| graph.is_finished(id)) {
                break;
            }
            if let Some(max) = self.max_quanta {
                if report.quanta >= max {
                    report.hit_limit = true;
                    break;
                }
            }
            let view = SchedView::new(graph, nodes);
            let Some(id) = strategy.select(&view) else {
                // Nothing runnable here right now.
                idle_rounds += 1;
                match stop {
                    None => {
                        // Single-partition execution with no runnable node
                        // and unfinished graph: the graph is stalled. Stay
                        // on cheap yields so the stall is detected quickly.
                        if idle_rounds > 1000 {
                            break;
                        }
                        thread::yield_now();
                    }
                    Some(flag) => {
                        // Another partition may still feed us. Each idle
                        // worker also checks global completion itself and
                        // releases the others — this replaces the polling
                        // watchdog thread the multi-thread executor used
                        // to spawn.
                        if graph.all_finished() {
                            flag.store(true, Ordering::Release);
                            pipes_trace::instant(pipes_trace::names::STOP, [0; 3]);
                            break;
                        }
                        backoff.wait();
                    }
                }
                continue;
            };
            let step = {
                // One span per strategy decision: nested NODE_STEP spans
                // (recorded by the graph layer) reconstruct which node the
                // quantum ran.
                let _span = pipes_trace::span_args(
                    pipes_trace::names::QUANTUM,
                    [id as u64, report.quanta, 0],
                );
                graph.step_node(id, self.quantum)
            };
            report.quanta += 1;
            report.consumed += step.consumed as u64;
            report.produced += step.produced as u64;
            report.batches += step.batches as u64;
            report.peak_run = report.peak_run.max(step.peak_run);
            if step.consumed == 0 && step.produced == 0 {
                idle_rounds += 1;
                if idle_rounds > 10_000 {
                    break; // safety valve against stuck strategies
                }
                if let Some(flag) = stop {
                    if graph.all_finished() {
                        flag.store(true, Ordering::Release);
                        pipes_trace::instant(pipes_trace::names::STOP, [0; 3]);
                        break;
                    }
                    backoff.wait();
                }
            } else {
                idle_rounds = 0;
                backoff.reset();
            }
            if report.quanta.is_multiple_of(self.sample_every) {
                let total: usize = nodes.iter().map(|&id| graph.queued(id)).sum();
                let state: usize = nodes.iter().map(|&id| graph.memory(id)).sum();
                report.peak_queue = report.peak_queue.max(total);
                report.peak_state = report.peak_state.max(state);
                queue_sum += total as f64;
                queue_samples += 1;
            }
        }
        report.avg_queue = if queue_samples > 0 {
            queue_sum / queue_samples as f64
        } else {
            0.0
        };
        report.wall = start.elapsed();
        report
    }
}

/// Layer 3: partitions the node set over worker threads, each running its
/// own layer-2 strategy instance.
pub struct MultiThreadExecutor {
    threads: usize,
    quantum: usize,
    max_quanta_per_thread: Option<u64>,
    batch_limit: Option<usize>,
}

impl MultiThreadExecutor {
    /// Creates an executor with the given number of worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        MultiThreadExecutor {
            threads,
            quantum: 64,
            max_quanta_per_thread: None,
            batch_limit: None,
        }
    }

    /// Sets the per-selection message budget.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Caps quanta per thread (for unbounded sources).
    pub fn with_max_quanta(mut self, max: u64) -> Self {
        self.max_quanta_per_thread = Some(max);
        self
    }

    /// Caps the per-run batch size of every node (see
    /// [`SingleThreadExecutor::with_batch_limit`]).
    pub fn with_batch_limit(mut self, limit: usize) -> Self {
        self.batch_limit = Some(limit.max(1));
        self
    }

    /// Partitions nodes topology-aware — virtual-node groups from
    /// [`crate::ExecutionPlan::analyze`], balanced over threads by static
    /// cost, so operator chains stay thread-local — and runs
    /// `make_strategy()` per thread. Returns the per-thread reports.
    pub fn run(
        &self,
        graph: &Arc<QueryGraph>,
        make_strategy: impl Fn() -> Box<dyn Strategy>,
    ) -> Vec<ExecutionReport> {
        let partitions = crate::ExecutionPlan::analyze(graph).partitions(self.threads);
        self.run_partitions(graph, make_strategy, partitions)
    }

    /// The former default split, kept as an explicit baseline (E16): deals
    /// node ids round-robin over threads, scattering chains so most edges
    /// cross threads.
    pub fn run_static_round_robin(
        &self,
        graph: &Arc<QueryGraph>,
        make_strategy: impl Fn() -> Box<dyn Strategy>,
    ) -> Vec<ExecutionReport> {
        let all: Vec<NodeId> = (0..graph.len()).collect();
        let partitions: Vec<Vec<NodeId>> = (0..self.threads)
            .map(|t| all.iter().copied().skip(t).step_by(self.threads).collect())
            .collect();
        self.run_partitions(graph, make_strategy, partitions)
    }

    /// Runs with an explicit node partitioning.
    pub fn run_partitions(
        &self,
        graph: &Arc<QueryGraph>,
        make_strategy: impl Fn() -> Box<dyn Strategy>,
        partitions: Vec<Vec<NodeId>>,
    ) -> Vec<ExecutionReport> {
        // Completion detection is decentralized: each idle worker checks
        // `graph.all_finished()` from its backoff loop and flips the shared
        // stop flag itself, so no polling watchdog thread is needed.
        let stop = Arc::new(AtomicBool::new(false));

        let mut exec = SingleThreadExecutor::new().with_quantum(self.quantum);
        if let Some(max) = self.max_quanta_per_thread {
            exec = exec.with_max_quanta(max);
        }
        if let Some(limit) = self.batch_limit {
            exec = exec.with_batch_limit(limit);
        }

        let n_workers = partitions.len();
        let reports: Vec<ExecutionReport> = thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .into_iter()
                .enumerate()
                .map(|(i, part)| {
                    let mut strategy = make_strategy();
                    let graph = Arc::clone(graph);
                    let stop = Arc::clone(&stop);
                    let exec = &exec;
                    scope.spawn(move || {
                        pipes_trace::set_thread_name(&format!("worker-{i}"));
                        exec.run_nodes(&graph, strategy.as_mut(), &part, Some(&stop))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        stop.store(true, Ordering::Release);
        pipes_trace::instant(pipes_trace::names::SHUTDOWN, [n_workers as u64, 0, 0]);
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{
        ChainStrategy, FifoStrategy, GreedyStrategy, RandomStrategy, RateBasedStrategy,
        RoundRobinStrategy,
    };
    use pipes_graph::io::{CollectSink, VecSource};
    use pipes_graph::{Collector, Operator};
    use pipes_time::{Element, Timestamp};

    struct HalfFilter;
    impl Operator for HalfFilter {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            if e.payload % 2 == 0 {
                out.element(e);
            }
        }
    }

    fn build(n: i64) -> (QueryGraph, pipes_graph::io::Collected<i64>) {
        let g = QueryGraph::new();
        let elems: Vec<Element<i64>> = (0..n)
            .map(|i| Element::at(i, Timestamp::new(i as u64)))
            .collect();
        let src = g.add_source("src", VecSource::new(elems));
        let f = g.add_unary("filter", HalfFilter, &src);
        let (sink, buf) = CollectSink::new();
        g.add_sink("sink", sink, &f);
        (g, buf)
    }

    #[test]
    fn single_thread_all_strategies_complete_with_same_answer() {
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(RoundRobinStrategy::new()),
            Box::new(FifoStrategy),
            Box::new(GreedyStrategy),
            Box::new(RandomStrategy::new(7)),
            Box::new(ChainStrategy::new(16)),
            Box::new(RateBasedStrategy),
        ];
        for mut s in strategies {
            let (g, buf) = build(200);
            let report = SingleThreadExecutor::new().run(&g, s.as_mut());
            assert!(g.all_finished(), "{} did not finish", report.strategy);
            assert_eq!(buf.lock().len(), 100, "{} lost data", report.strategy);
            assert!(report.consumed > 0);
            assert!(!report.hit_limit);
        }
    }

    #[test]
    fn quantum_limit_reported() {
        let (g, _) = build(10_000);
        let mut s = RoundRobinStrategy::new();
        let report = SingleThreadExecutor::new()
            .with_quantum(8)
            .with_max_quanta(10)
            .run(&g, &mut s);
        assert!(report.hit_limit);
        assert_eq!(report.quanta, 10);
    }

    #[test]
    fn queue_stats_collected() {
        let (g, _) = build(2000);
        let mut s = FifoStrategy;
        let report = SingleThreadExecutor::new()
            .with_quantum(4)
            .with_sample_every(1)
            .run(&g, &mut s);
        assert!(report.peak_queue > 0);
        assert!(report.avg_queue >= 0.0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn batches_counted_and_limit_one_matches_batched_output() {
        let (g, buf) = build(400);
        let mut s = RoundRobinStrategy::new();
        let report = SingleThreadExecutor::new().run(&g, &mut s);
        assert!(report.batches > 0);
        assert!(
            report.avg_batch_size() > 1.0,
            "unbounded batching should amortize: avg {}",
            report.avg_batch_size()
        );

        let (g1, buf1) = build(400);
        let mut s1 = RoundRobinStrategy::new();
        let r1 = SingleThreadExecutor::new()
            .with_batch_limit(1)
            .run(&g1, &mut s1);
        assert!(r1.avg_batch_size() <= 1.0 + 1e-9);
        // Batch granularity must not change what reaches the sink.
        assert_eq!(*buf.lock(), *buf1.lock());
    }

    #[test]
    fn multi_thread_completes_and_preserves_results() {
        let (g, buf) = build(500);
        let g = Arc::new(g);
        let reports = MultiThreadExecutor::new(3).run(&g, || Box::new(RoundRobinStrategy::new()));
        assert_eq!(reports.len(), 3);
        assert!(g.all_finished());
        assert_eq!(buf.lock().len(), 250);
    }

    #[test]
    fn multi_thread_static_round_robin_baseline_still_completes() {
        let (g, buf) = build(500);
        let g = Arc::new(g);
        let reports =
            MultiThreadExecutor::new(3).run_static_round_robin(&g, || Box::new(FifoStrategy));
        assert_eq!(reports.len(), 3);
        assert!(g.all_finished());
        assert_eq!(buf.lock().len(), 250);
    }

    #[test]
    fn merge_aggregates_per_thread_reports() {
        let mk =
            |quanta, consumed, produced, batches, wall_ms, peak_queue, avg_queue| ExecutionReport {
                strategy: "fifo".into(),
                quanta,
                consumed,
                produced,
                batches,
                wall: Duration::from_millis(wall_ms),
                peak_queue,
                avg_queue,
                peak_state: peak_queue / 2,
                hit_limit: false,
                steals: 1,
                peak_run: peak_queue / 4,
            };
        let a = mk(10, 100, 80, 5, 30, 40, 4.0);
        let mut b = mk(30, 300, 240, 15, 20, 70, 8.0);
        b.hit_limit = true;
        let m = ExecutionReport::merge(&[a, b]);
        assert_eq!(m.peak_run, 17, "peak_run is maxed across threads");
        assert_eq!(m.strategy, "fifo");
        assert_eq!(m.quanta, 40);
        assert_eq!(m.consumed, 400);
        assert_eq!(m.produced, 320);
        assert_eq!(m.batches, 20);
        assert_eq!(m.steals, 2);
        assert_eq!(m.wall, Duration::from_millis(30), "wall is the max");
        assert_eq!(m.peak_queue, 70);
        assert_eq!(m.peak_state, 35);
        assert!(m.hit_limit);
        // (4.0 * 10 + 8.0 * 30) / 40 = 7.0 — weighted by quanta.
        assert!((m.avg_queue - 7.0).abs() < 1e-9);
        assert!((m.throughput() - 320.0 / 0.03).abs() < 1.0);

        let empty = ExecutionReport::merge(&[]);
        assert_eq!(empty.quanta, 0);
        assert_eq!(empty.avg_queue, 0.0);
    }

    #[test]
    fn multi_thread_explicit_partitions() {
        let (g, buf) = build(300);
        let g = Arc::new(g);
        // Source alone on one thread; operator+sink on the other.
        let reports = MultiThreadExecutor::new(2).run_partitions(
            &g,
            || Box::new(FifoStrategy),
            vec![vec![0], vec![1, 2]],
        );
        assert_eq!(reports.len(), 2);
        assert!(g.all_finished());
        assert_eq!(buf.lock().len(), 150);
    }
}
