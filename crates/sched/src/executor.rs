//! Layer-2/3 executors: single-thread strategy loops and the multi-thread
//! partitioner.

use crate::strategy::{SchedView, Strategy};
use pipes_graph::{NodeId, QueryGraph};
use pipes_sync::atomic::{AtomicBool, Ordering};
use pipes_sync::{hint, thread, Arc, Mutex};
use std::time::{Duration, Instant};

/// Measurements from one execution.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Strategy name that produced this report.
    pub strategy: String,
    /// Scheduling quanta executed.
    pub quanta: u64,
    /// Messages consumed across all nodes.
    pub consumed: u64,
    /// Elements produced across all nodes.
    pub produced: u64,
    /// Batched input-queue drains across all nodes (each moved a run of
    /// messages under one lock acquisition).
    pub batches: u64,
    /// Wall-clock time.
    pub wall: std::time::Duration,
    /// Largest total queued-message count observed (queue memory peak).
    pub peak_queue: usize,
    /// Mean total queued-message count over samples.
    pub avg_queue: f64,
    /// Largest total operator state observed.
    pub peak_state: usize,
    /// Whether execution ended because the quantum limit was hit.
    pub hit_limit: bool,
    /// Virtual-node groups this worker stole from peers (always 0 outside
    /// the [`crate::WorkStealingExecutor`]).
    pub steals: u64,
    /// Largest single input run (in messages) any node drained in one
    /// quantum — how far the run-at-a-time operator path actually batched.
    pub peak_run: usize,
}

impl ExecutionReport {
    /// Elements produced per second of wall time.
    pub fn throughput(&self) -> f64 {
        self.produced as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Mean messages moved per batched queue drain (0 if nothing consumed).
    pub fn avg_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.consumed as f64 / self.batches as f64
        }
    }

    /// Folds a *sequential* follow-up chunk into this report: counters
    /// sum, peaks max, `hit_limit` ors, and the average queue is weighted
    /// by quanta. Wall time **adds** — the chunks ran one after another on
    /// the same thread, unlike [`ExecutionReport::merge`], which maxes
    /// wall over concurrently running threads. Used by the dynamic
    /// [`MultiThreadExecutor`] whose workers run in re-partitioned chunks.
    pub fn absorb(&mut self, next: &ExecutionReport) {
        let weighted = self.avg_queue * self.quanta as f64 + next.avg_queue * next.quanta as f64;
        self.quanta += next.quanta;
        self.consumed += next.consumed;
        self.produced += next.produced;
        self.batches += next.batches;
        self.steals += next.steals;
        self.wall += next.wall;
        self.peak_queue = self.peak_queue.max(next.peak_queue);
        self.peak_state = self.peak_state.max(next.peak_state);
        self.peak_run = self.peak_run.max(next.peak_run);
        self.hit_limit |= next.hit_limit;
        self.avg_queue = if self.quanta > 0 {
            weighted / self.quanta as f64
        } else {
            0.0
        };
    }

    /// Aggregates per-thread reports from a multi-threaded run into one:
    /// quanta, consumed, produced, batches and steals are summed; queue and
    /// state peaks are maxed; wall time is the maximum (the threads ran
    /// concurrently); the average queue is weighted by each thread's
    /// quanta; `hit_limit` is set if any thread hit its limit. The strategy
    /// name is taken from the first report.
    pub fn merge(reports: &[ExecutionReport]) -> ExecutionReport {
        let mut merged = ExecutionReport {
            strategy: reports
                .first()
                .map(|r| r.strategy.clone())
                .unwrap_or_default(),
            ..Default::default()
        };
        let mut weighted_queue = 0.0;
        for r in reports {
            merged.quanta += r.quanta;
            merged.consumed += r.consumed;
            merged.produced += r.produced;
            merged.batches += r.batches;
            merged.steals += r.steals;
            merged.wall = merged.wall.max(r.wall);
            merged.peak_queue = merged.peak_queue.max(r.peak_queue);
            merged.peak_state = merged.peak_state.max(r.peak_state);
            merged.peak_run = merged.peak_run.max(r.peak_run);
            merged.hit_limit |= r.hit_limit;
            weighted_queue += r.avg_queue * r.quanta as f64;
        }
        merged.avg_queue = if merged.quanta > 0 {
            weighted_queue / merged.quanta as f64
        } else {
            0.0
        };
        merged
    }
}

/// Adaptive idle waiting: spin briefly (the common case — another worker is
/// about to publish), then yield the core, then park with growing timeouts.
/// Replaces both the bare `yield_now` idle loop and the former 200µs polling
/// watchdog thread: an idle worker burns almost no CPU, yet still notices
/// new work within a spin or at worst one bounded park timeout.
struct Backoff {
    rounds: u32,
}

impl Backoff {
    /// Rounds spent busy-spinning (with exponentially more `spin_loop`
    /// hints each round) before yielding.
    const SPIN_ROUNDS: u32 = 6;
    /// Additional rounds spent yielding before parking.
    const YIELD_ROUNDS: u32 = 4;
    /// First park timeout; doubles per round up to [`Backoff::MAX_PARK`].
    const FIRST_PARK: Duration = Duration::from_micros(50);
    /// Longest park timeout — bounds how stale an idle worker's view of the
    /// stop flag and of graph completion can get.
    const MAX_PARK: Duration = Duration::from_micros(1600);

    fn new() -> Self {
        Backoff { rounds: 0 }
    }

    /// Waits a little longer than last time.
    fn wait(&mut self) {
        if self.rounds < Self::SPIN_ROUNDS {
            for _ in 0..(1u32 << self.rounds) {
                hint::spin_loop();
            }
        } else if self.rounds < Self::SPIN_ROUNDS + Self::YIELD_ROUNDS {
            thread::yield_now();
        } else {
            let doublings = (self.rounds - Self::SPIN_ROUNDS - Self::YIELD_ROUNDS).min(5);
            let timeout = Self::FIRST_PARK
                .saturating_mul(1 << doublings)
                .min(Self::MAX_PARK);
            pipes_trace::instant(pipes_trace::names::PARK, [timeout.as_micros() as u64, 0, 0]);
            thread::park_timeout(timeout);
            pipes_trace::instant(pipes_trace::names::UNPARK, [0; 3]);
        }
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Progress was made: start the next idle episode from the spin phase.
    fn reset(&mut self) {
        self.rounds = 0;
    }
}

/// Runs one layer-2 strategy over a set of nodes until the graph finishes
/// (or a quantum limit is reached, for unbounded sources).
pub struct SingleThreadExecutor {
    quantum: usize,
    sample_every: u64,
    max_quanta: Option<u64>,
    batch_limit: Option<usize>,
}

impl Default for SingleThreadExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl SingleThreadExecutor {
    /// Creates an executor with a quantum of 64 messages and queue sampling
    /// every 16 quanta.
    pub fn new() -> Self {
        SingleThreadExecutor {
            quantum: 64,
            sample_every: 16,
            max_quanta: None,
            batch_limit: None,
        }
    }

    /// Sets the per-selection message budget.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Caps the per-run batch size of every node this executor drives
    /// (see [`QueryGraph::set_node_batch_limit`]). A limit of 1 reproduces
    /// the per-message data path — useful as a benchmarking baseline.
    pub fn with_batch_limit(mut self, limit: usize) -> Self {
        self.batch_limit = Some(limit.max(1));
        self
    }

    /// Caps the number of quanta (needed for unbounded sources).
    pub fn with_max_quanta(mut self, max: u64) -> Self {
        self.max_quanta = Some(max);
        self
    }

    /// Sets how often (in quanta) queue totals are sampled.
    pub fn with_sample_every(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// Runs `strategy` over all nodes of `graph` until completion.
    pub fn run(&self, graph: &QueryGraph, strategy: &mut dyn Strategy) -> ExecutionReport {
        let nodes: Vec<NodeId> = graph.node_ids().collect();
        self.run_nodes(graph, strategy, &nodes, None)
    }

    /// Runs `strategy` over the given node subset; used by the layer-3
    /// executor. An optional shared stop flag ends the loop early.
    pub fn run_nodes(
        &self,
        graph: &QueryGraph,
        strategy: &mut dyn Strategy,
        nodes: &[NodeId],
        stop: Option<&AtomicBool>,
    ) -> ExecutionReport {
        self.run_nodes_until(graph, strategy, nodes, stop, None)
    }

    /// Like [`SingleThreadExecutor::run_nodes`], with an additional
    /// `interrupt` predicate checked at every quantum boundary: when it
    /// returns `true` the loop returns early with the partial report
    /// (without setting `hit_limit`). The dynamic [`MultiThreadExecutor`]
    /// uses this to pull workers out for a re-partition when the graph's
    /// topology epoch moves.
    pub fn run_nodes_until(
        &self,
        graph: &QueryGraph,
        strategy: &mut dyn Strategy,
        nodes: &[NodeId],
        stop: Option<&AtomicBool>,
        interrupt: Option<&dyn Fn() -> bool>,
    ) -> ExecutionReport {
        let start = Instant::now();
        if let Some(limit) = self.batch_limit {
            for &id in nodes {
                graph.set_node_batch_limit(id, limit);
            }
        }
        let mut report = ExecutionReport {
            strategy: strategy.name().to_string(),
            ..Default::default()
        };
        let mut queue_samples: u64 = 0;
        let mut queue_sum: f64 = 0.0;
        let mut idle_rounds = 0u32;
        let mut backoff = Backoff::new();
        loop {
            if let Some(flag) = stop {
                // Acquire pairs with the Release store below (and the one
                // in run_partitions): a worker that observes the stop flag
                // also observes everything the stopping thread did before
                // raising it, and the compiler cannot hoist the load out
                // of the loop the way a Relaxed read could legally be.
                if flag.load(Ordering::Acquire) {
                    break;
                }
            }
            if let Some(f) = interrupt {
                if f() {
                    break;
                }
            }
            if nodes.iter().all(|&id| graph.is_finished(id)) {
                break;
            }
            if let Some(max) = self.max_quanta {
                if report.quanta >= max {
                    report.hit_limit = true;
                    break;
                }
            }
            let view = SchedView::new(graph, nodes);
            let Some(id) = strategy.select(&view) else {
                // Nothing runnable here right now.
                idle_rounds += 1;
                match stop {
                    None => {
                        // Single-partition execution with no runnable node
                        // and unfinished graph: the graph is stalled. Stay
                        // on cheap yields so the stall is detected quickly.
                        if idle_rounds > 1000 {
                            break;
                        }
                        thread::yield_now();
                    }
                    Some(flag) => {
                        // Another partition may still feed us. Each idle
                        // worker also checks global completion itself and
                        // releases the others — this replaces the polling
                        // watchdog thread the multi-thread executor used
                        // to spawn.
                        if graph.all_finished() {
                            flag.store(true, Ordering::Release);
                            pipes_trace::instant(pipes_trace::names::STOP, [0; 3]);
                            break;
                        }
                        backoff.wait();
                    }
                }
                continue;
            };
            let step = {
                // One span per strategy decision: nested NODE_STEP spans
                // (recorded by the graph layer) reconstruct which node the
                // quantum ran.
                let _span = pipes_trace::span_args(
                    pipes_trace::names::QUANTUM,
                    [id as u64, report.quanta, 0],
                );
                graph.step_node(id, self.quantum)
            };
            report.quanta += 1;
            report.consumed += step.consumed as u64;
            report.produced += step.produced as u64;
            report.batches += step.batches as u64;
            report.peak_run = report.peak_run.max(step.peak_run);
            if step.consumed == 0 && step.produced == 0 {
                idle_rounds += 1;
                if idle_rounds > 10_000 {
                    break; // safety valve against stuck strategies
                }
                if let Some(flag) = stop {
                    if graph.all_finished() {
                        flag.store(true, Ordering::Release);
                        pipes_trace::instant(pipes_trace::names::STOP, [0; 3]);
                        break;
                    }
                    backoff.wait();
                }
            } else {
                idle_rounds = 0;
                backoff.reset();
            }
            if report.quanta.is_multiple_of(self.sample_every) {
                let total: usize = nodes.iter().map(|&id| graph.queued(id)).sum();
                let state: usize = nodes.iter().map(|&id| graph.memory(id)).sum();
                report.peak_queue = report.peak_queue.max(total);
                report.peak_state = report.peak_state.max(state);
                queue_sum += total as f64;
                queue_samples += 1;
            }
        }
        report.avg_queue = if queue_samples > 0 {
            queue_sum / queue_samples as f64
        } else {
            0.0
        };
        report.wall = start.elapsed();
        report
    }
}

/// Layer 3: partitions the node set over worker threads, each running its
/// own layer-2 strategy instance.
pub struct MultiThreadExecutor {
    threads: usize,
    quantum: usize,
    sample_every: u64,
    max_quanta_per_thread: Option<u64>,
    batch_limit: Option<usize>,
}

impl MultiThreadExecutor {
    /// Creates an executor with the given number of worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        MultiThreadExecutor {
            threads,
            quantum: 64,
            sample_every: 16,
            max_quanta_per_thread: None,
            batch_limit: None,
        }
    }

    /// Sets the per-selection message budget.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Sets how often (in quanta) each worker samples queue totals.
    pub fn with_sample_every(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// Caps quanta per thread (for unbounded sources).
    pub fn with_max_quanta(mut self, max: u64) -> Self {
        self.max_quanta_per_thread = Some(max);
        self
    }

    /// Caps the per-run batch size of every node (see
    /// [`SingleThreadExecutor::with_batch_limit`]).
    pub fn with_batch_limit(mut self, limit: usize) -> Self {
        self.batch_limit = Some(limit.max(1));
        self
    }

    /// Partitions nodes topology-aware — virtual-node groups from
    /// [`crate::ExecutionPlan::analyze`], balanced over threads by static
    /// cost, so operator chains stay thread-local — and runs
    /// `make_strategy()` per thread. Returns the per-thread reports.
    ///
    /// Topology is hot: every worker checks the graph's topology epoch at
    /// quantum boundaries, and when a query is spliced in (or retired)
    /// the first worker to notice re-runs the analysis and publishes
    /// fresh partitions; each worker picks its new node list up at its
    /// next boundary and keeps going — no stop/restart. (The
    /// work-stealing executor does this with finer-grained hand-off; this
    /// is the simpler whole-partition variant.)
    pub fn run(
        &self,
        graph: &Arc<QueryGraph>,
        make_strategy: impl Fn() -> Box<dyn Strategy>,
    ) -> Vec<ExecutionReport> {
        let stop = Arc::new(AtomicBool::new(false));
        let plan = crate::ExecutionPlan::analyze(graph);
        // (epoch, partitions) the workers currently run against; the
        // first worker observing a newer topology epoch refreshes it.
        let parts = Arc::new(Mutex::new((
            plan.planned_epoch(),
            Arc::new(plan.partitions(self.threads)),
        )));

        let n_workers = self.threads;
        let reports: Vec<ExecutionReport> = thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|i| {
                    let mut strategy = make_strategy();
                    let graph = Arc::clone(graph);
                    let stop = Arc::clone(&stop);
                    let parts = Arc::clone(&parts);
                    scope.spawn(move || {
                        pipes_trace::set_thread_name(&format!("worker-{i}"));
                        self.dynamic_worker(i, &graph, &stop, &parts, strategy.as_mut())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        stop.store(true, Ordering::Release);
        pipes_trace::instant(pipes_trace::names::SHUTDOWN, [n_workers as u64, 0, 0]);
        reports
    }

    /// One dynamic worker: run the current partition until it drains, the
    /// stop flag rises, or the topology epoch moves; then refresh the
    /// shared partitions (first stale observer re-analyzes) and continue.
    fn dynamic_worker(
        &self,
        i: usize,
        graph: &Arc<QueryGraph>,
        stop: &AtomicBool,
        parts: &Mutex<(u64, Arc<Vec<Vec<NodeId>>>)>,
        strategy: &mut dyn Strategy,
    ) -> ExecutionReport {
        let start = Instant::now();
        let (mut cur_epoch, mut my_nodes) = {
            let guard = parts.lock();
            (guard.0, guard.1[i].clone())
        };
        let mut total = ExecutionReport {
            strategy: strategy.name().to_string(),
            ..Default::default()
        };
        let mut backoff = Backoff::new();
        loop {
            if stop.load(Ordering::Acquire) {
                break;
            }
            let mut exec = SingleThreadExecutor::new()
                .with_quantum(self.quantum)
                .with_sample_every(self.sample_every);
            if let Some(max) = self.max_quanta_per_thread {
                let remaining = max.saturating_sub(total.quanta);
                if remaining == 0 {
                    total.hit_limit = true;
                    break;
                }
                exec = exec.with_max_quanta(remaining);
            }
            if let Some(limit) = self.batch_limit {
                exec = exec.with_batch_limit(limit);
            }
            let seen = cur_epoch;
            let chunk = exec.run_nodes_until(
                graph,
                strategy,
                &my_nodes,
                Some(stop),
                Some(&|| graph.topology_epoch() != seen),
            );
            total.absorb(&chunk);
            if total.hit_limit || stop.load(Ordering::Acquire) {
                break;
            }
            if graph.all_finished() {
                stop.store(true, Ordering::Release);
                pipes_trace::instant(pipes_trace::names::STOP, [0; 3]);
                break;
            }
            let refreshed = {
                let mut guard = parts.lock();
                let topo = graph.topology_epoch();
                if guard.0 != topo {
                    let plan = crate::ExecutionPlan::analyze(graph);
                    pipes_trace::instant(
                        pipes_trace::names::SCHED_REPLAN,
                        [plan.planned_epoch(), plan.groups().len() as u64, 0],
                    );
                    *guard = (
                        plan.planned_epoch(),
                        Arc::new(plan.partitions(self.threads)),
                    );
                }
                let refreshed = guard.0 != cur_epoch;
                cur_epoch = guard.0;
                my_nodes = guard.1[i].clone();
                refreshed
            };
            if refreshed {
                backoff.reset();
            } else {
                // Our partition drained but the graph is not done and the
                // topology has not moved: wait for either to change.
                backoff.wait();
            }
        }
        total.wall = start.elapsed();
        total
    }

    /// The former default split, kept as an explicit baseline (E16): deals
    /// node ids round-robin over threads, scattering chains so most edges
    /// cross threads. Static — topology changes after launch are not
    /// picked up.
    pub fn run_static_round_robin(
        &self,
        graph: &Arc<QueryGraph>,
        make_strategy: impl Fn() -> Box<dyn Strategy>,
    ) -> Vec<ExecutionReport> {
        let all: Vec<NodeId> = graph.node_ids().collect();
        let partitions: Vec<Vec<NodeId>> = (0..self.threads)
            .map(|t| all.iter().copied().skip(t).step_by(self.threads).collect())
            .collect();
        self.run_partitions(graph, make_strategy, partitions)
    }

    /// Runs with an explicit node partitioning.
    pub fn run_partitions(
        &self,
        graph: &Arc<QueryGraph>,
        make_strategy: impl Fn() -> Box<dyn Strategy>,
        partitions: Vec<Vec<NodeId>>,
    ) -> Vec<ExecutionReport> {
        // Completion detection is decentralized: each idle worker checks
        // `graph.all_finished()` from its backoff loop and flips the shared
        // stop flag itself, so no polling watchdog thread is needed.
        let stop = Arc::new(AtomicBool::new(false));

        let mut exec = SingleThreadExecutor::new().with_quantum(self.quantum);
        if let Some(max) = self.max_quanta_per_thread {
            exec = exec.with_max_quanta(max);
        }
        if let Some(limit) = self.batch_limit {
            exec = exec.with_batch_limit(limit);
        }

        let n_workers = partitions.len();
        let reports: Vec<ExecutionReport> = thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .into_iter()
                .enumerate()
                .map(|(i, part)| {
                    let mut strategy = make_strategy();
                    let graph = Arc::clone(graph);
                    let stop = Arc::clone(&stop);
                    let exec = &exec;
                    scope.spawn(move || {
                        pipes_trace::set_thread_name(&format!("worker-{i}"));
                        exec.run_nodes(&graph, strategy.as_mut(), &part, Some(&stop))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        stop.store(true, Ordering::Release);
        pipes_trace::instant(pipes_trace::names::SHUTDOWN, [n_workers as u64, 0, 0]);
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{
        ChainStrategy, FifoStrategy, GreedyStrategy, RandomStrategy, RateBasedStrategy,
        RoundRobinStrategy,
    };
    use pipes_graph::io::{CollectSink, VecSource};
    use pipes_graph::{Collector, Operator};
    use pipes_time::{Element, Timestamp};

    struct HalfFilter;
    impl Operator for HalfFilter {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            if e.payload % 2 == 0 {
                out.element(e);
            }
        }
    }

    fn build(n: i64) -> (QueryGraph, pipes_graph::io::Collected<i64>) {
        let g = QueryGraph::new();
        let elems: Vec<Element<i64>> = (0..n)
            .map(|i| Element::at(i, Timestamp::new(i as u64)))
            .collect();
        let src = g.add_source("src", VecSource::new(elems));
        let f = g.add_unary("filter", HalfFilter, &src);
        let (sink, buf) = CollectSink::new();
        g.add_sink("sink", sink, &f);
        (g, buf)
    }

    #[test]
    fn single_thread_all_strategies_complete_with_same_answer() {
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(RoundRobinStrategy::new()),
            Box::new(FifoStrategy),
            Box::new(GreedyStrategy),
            Box::new(RandomStrategy::new(7)),
            Box::new(ChainStrategy::new(16)),
            Box::new(RateBasedStrategy),
        ];
        for mut s in strategies {
            let (g, buf) = build(200);
            let report = SingleThreadExecutor::new().run(&g, s.as_mut());
            assert!(g.all_finished(), "{} did not finish", report.strategy);
            assert_eq!(buf.lock().len(), 100, "{} lost data", report.strategy);
            assert!(report.consumed > 0);
            assert!(!report.hit_limit);
        }
    }

    #[test]
    fn quantum_limit_reported() {
        let (g, _) = build(10_000);
        let mut s = RoundRobinStrategy::new();
        let report = SingleThreadExecutor::new()
            .with_quantum(8)
            .with_max_quanta(10)
            .run(&g, &mut s);
        assert!(report.hit_limit);
        assert_eq!(report.quanta, 10);
    }

    #[test]
    fn queue_stats_collected() {
        let (g, _) = build(2000);
        let mut s = FifoStrategy;
        let report = SingleThreadExecutor::new()
            .with_quantum(4)
            .with_sample_every(1)
            .run(&g, &mut s);
        assert!(report.peak_queue > 0);
        assert!(report.avg_queue >= 0.0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn batches_counted_and_limit_one_matches_batched_output() {
        let (g, buf) = build(400);
        let mut s = RoundRobinStrategy::new();
        let report = SingleThreadExecutor::new().run(&g, &mut s);
        assert!(report.batches > 0);
        assert!(
            report.avg_batch_size() > 1.0,
            "unbounded batching should amortize: avg {}",
            report.avg_batch_size()
        );

        let (g1, buf1) = build(400);
        let mut s1 = RoundRobinStrategy::new();
        let r1 = SingleThreadExecutor::new()
            .with_batch_limit(1)
            .run(&g1, &mut s1);
        assert!(r1.avg_batch_size() <= 1.0 + 1e-9);
        // Batch granularity must not change what reaches the sink.
        assert_eq!(*buf.lock(), *buf1.lock());
    }

    #[test]
    fn multi_thread_completes_and_preserves_results() {
        let (g, buf) = build(500);
        let g = Arc::new(g);
        let reports = MultiThreadExecutor::new(3).run(&g, || Box::new(RoundRobinStrategy::new()));
        assert_eq!(reports.len(), 3);
        assert!(g.all_finished());
        assert_eq!(buf.lock().len(), 250);
    }

    #[test]
    fn multi_thread_static_round_robin_baseline_still_completes() {
        let (g, buf) = build(500);
        let g = Arc::new(g);
        let reports =
            MultiThreadExecutor::new(3).run_static_round_robin(&g, || Box::new(FifoStrategy));
        assert_eq!(reports.len(), 3);
        assert!(g.all_finished());
        assert_eq!(buf.lock().len(), 250);
    }

    #[test]
    fn merge_aggregates_per_thread_reports() {
        let mk =
            |quanta, consumed, produced, batches, wall_ms, peak_queue, avg_queue| ExecutionReport {
                strategy: "fifo".into(),
                quanta,
                consumed,
                produced,
                batches,
                wall: Duration::from_millis(wall_ms),
                peak_queue,
                avg_queue,
                peak_state: peak_queue / 2,
                hit_limit: false,
                steals: 1,
                peak_run: peak_queue / 4,
            };
        let a = mk(10, 100, 80, 5, 30, 40, 4.0);
        let mut b = mk(30, 300, 240, 15, 20, 70, 8.0);
        b.hit_limit = true;
        let m = ExecutionReport::merge(&[a, b]);
        assert_eq!(m.peak_run, 17, "peak_run is maxed across threads");
        assert_eq!(m.strategy, "fifo");
        assert_eq!(m.quanta, 40);
        assert_eq!(m.consumed, 400);
        assert_eq!(m.produced, 320);
        assert_eq!(m.batches, 20);
        assert_eq!(m.steals, 2);
        assert_eq!(m.wall, Duration::from_millis(30), "wall is the max");
        assert_eq!(m.peak_queue, 70);
        assert_eq!(m.peak_state, 35);
        assert!(m.hit_limit);
        // (4.0 * 10 + 8.0 * 30) / 40 = 7.0 — weighted by quanta.
        assert!((m.avg_queue - 7.0).abs() < 1e-9);
        assert!((m.throughput() - 320.0 / 0.03).abs() < 1.0);

        let empty = ExecutionReport::merge(&[]);
        assert_eq!(empty.quanta, 0);
        assert_eq!(empty.avg_queue, 0.0);
    }

    #[test]
    fn multi_thread_picks_up_live_splice_and_retire() {
        use pipes_graph::io::GenSource;
        use pipes_sync::atomic::AtomicBool;

        let g = Arc::new(QueryGraph::new());
        let open = Arc::new(AtomicBool::new(true));
        let gate = Arc::clone(&open);
        let mut t = 0u64;
        let src = g.add_source(
            "live",
            GenSource::new(move || {
                // ordering: Acquire — pairs with the Release close below so
                // the source observes the shutdown promptly.
                if !gate.load(Ordering::Acquire) {
                    return None;
                }
                t += 1;
                Some(Element::at(t as i64, Timestamp::new(t)))
            }),
        );
        let f = g.add_unary("f1", HalfFilter, &src);
        let (sink, buf1) = CollectSink::new();
        g.add_sink("sink1", sink, &f);

        let graph = Arc::clone(&g);
        let handle = thread::spawn(move || {
            MultiThreadExecutor::new(2)
                .with_quantum(16)
                .run(&graph, || Box::new(FifoStrategy))
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        let wait = |cond: &dyn Fn() -> bool| {
            while !cond() {
                assert!(Instant::now() < deadline, "timed out waiting");
                thread::yield_now();
            }
        };
        // The first query is flowing...
        wait(&|| buf1.lock().len() >= 100);
        // ...splice a second query onto the live source, no restart. The
        // next worker to cross a quantum boundary re-partitions and the
        // new chain starts executing.
        let f2 = g.add_unary("f2", HalfFilter, &src);
        let (sink2, buf2) = CollectSink::new();
        let k2 = g.add_sink("sink2", sink2, &f2);
        wait(&|| buf2.lock().len() >= 100);
        let spliced_results = buf2.lock().len();
        // Retire the spliced query while the executor keeps running.
        g.remove_node(k2);
        g.remove_node(f2.node());
        wait(&|| buf1.lock().len() >= 2 * spliced_results);
        // Close the source; the run drains and joins.
        open.store(false, Ordering::Release);
        let reports = handle.join().expect("executor thread");
        assert!(g.all_finished());
        assert!(buf2.lock().len() >= spliced_results);
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn multi_thread_explicit_partitions() {
        let (g, buf) = build(300);
        let g = Arc::new(g);
        // Source alone on one thread; operator+sink on the other.
        let reports = MultiThreadExecutor::new(2).run_partitions(
            &g,
            || Box::new(FifoStrategy),
            vec![vec![0], vec![1, 2]],
        );
        assert_eq!(reports.len(), 2);
        assert!(g.all_finished());
        assert_eq!(buf.lock().len(), 150);
    }
}
