//! Layer-2 scheduling strategies.

use pipes_graph::{NodeId, NodeKind, QueryGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The information a strategy may consult when picking the next node.
///
/// The view exposes only type-erased, metadata-level facts — queue lengths,
/// arrival order, node kind, observed selectivity, topology — never payloads
/// or operator internals. Every published scheduling technique the paper
/// cites can be phrased against this interface.
pub struct SchedView<'a> {
    graph: &'a QueryGraph,
    nodes: &'a [NodeId],
}

impl<'a> SchedView<'a> {
    /// Creates a view over the given candidate set.
    pub fn new(graph: &'a QueryGraph, nodes: &'a [NodeId]) -> Self {
        SchedView { graph, nodes }
    }

    /// The candidate node ids this scheduler is responsible for.
    pub fn nodes(&self) -> &[NodeId] {
        self.nodes
    }

    /// Messages queued at the node's inputs.
    pub fn queued(&self, id: NodeId) -> usize {
        self.graph.queued(id)
    }

    /// Whether the node has permanently finished.
    pub fn is_finished(&self, id: NodeId) -> bool {
        self.graph.is_finished(id)
    }

    /// Arrival sequence of the node's oldest pending message.
    pub fn oldest_seq(&self, id: NodeId) -> Option<u64> {
        self.graph.oldest_pending_seq(id)
    }

    /// The node's role in the graph.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.graph.kind(id)
    }

    /// Observed selectivity (elements out / messages in), defaulting to 1.
    pub fn selectivity(&self, id: NodeId) -> f64 {
        self.graph
            .stats(id)
            .snapshot()
            .selectivity()
            .unwrap_or(1.0)
            .min(4.0)
    }

    /// Appends the direct downstream consumers of `id` among the candidate
    /// set onto `out`. Allocation-free for callers that reuse the buffer —
    /// this sits in strategy hot loops (e.g. the [`ChainStrategy`] priority
    /// recomputation), where the old per-call `Vec` (and the `NodeInfo`
    /// name clone behind it) dominated the selection cost.
    pub fn downstream_into(&self, id: NodeId, out: &mut Vec<NodeId>) {
        out.extend(
            self.nodes
                .iter()
                .copied()
                .filter(|&n| self.graph.subscribes_to(n, id)),
        );
    }

    /// Direct downstream consumers of `id` among the candidate set
    /// (allocating convenience form of [`SchedView::downstream_into`]).
    pub fn downstream(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.downstream_into(id, &mut out);
        out
    }

    /// Whether the node can make progress right now: it has queued input,
    /// or it is an unfinished source.
    pub fn runnable(&self, id: NodeId) -> bool {
        if self.is_finished(id) {
            return false;
        }
        self.queued(id) > 0 || self.kind(id) == NodeKind::Source
    }
}

/// A layer-2 scheduling strategy: picks the next node to receive a quantum.
pub trait Strategy: Send {
    /// Human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Selects the next node among `view.nodes()`, or `None` if no candidate
    /// can make progress.
    fn select(&mut self, view: &SchedView<'_>) -> Option<NodeId>;
}

// ---------------------------------------------------------------------------

/// Cycles through the candidate set, skipping nodes without work.
pub struct RoundRobinStrategy {
    cursor: usize,
}

impl RoundRobinStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        RoundRobinStrategy { cursor: 0 }
    }
}

impl Default for RoundRobinStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for RoundRobinStrategy {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn select(&mut self, view: &SchedView<'_>) -> Option<NodeId> {
        let n = view.nodes().len();
        for i in 0..n {
            let idx = (self.cursor + i) % n;
            let id = view.nodes()[idx];
            if view.runnable(id) {
                self.cursor = (idx + 1) % n;
                return Some(id);
            }
        }
        None
    }
}

/// Processes the globally oldest queued message first (FIFO order across the
/// whole graph); runs a source when nothing is queued.
pub struct FifoStrategy;

impl Strategy for FifoStrategy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn select(&mut self, view: &SchedView<'_>) -> Option<NodeId> {
        let oldest = view
            .nodes()
            .iter()
            .copied()
            .filter(|&id| !view.is_finished(id))
            .filter_map(|id| view.oldest_seq(id).map(|s| (s, id)))
            .min();
        if let Some((_, id)) = oldest {
            return Some(id);
        }
        view.nodes()
            .iter()
            .copied()
            .find(|&id| !view.is_finished(id) && view.kind(id) == NodeKind::Source)
    }
}

/// Runs the node with the longest input queue (drains hotspots first).
pub struct GreedyStrategy;

impl Strategy for GreedyStrategy {
    fn name(&self) -> &'static str {
        "greedy-queue"
    }

    fn select(&mut self, view: &SchedView<'_>) -> Option<NodeId> {
        let busiest = view
            .nodes()
            .iter()
            .copied()
            .filter(|&id| !view.is_finished(id))
            .map(|id| (view.queued(id), id))
            .filter(|&(q, _)| q > 0)
            .max();
        if let Some((_, id)) = busiest {
            return Some(id);
        }
        view.nodes()
            .iter()
            .copied()
            .find(|&id| !view.is_finished(id) && view.kind(id) == NodeKind::Source)
    }
}

/// Picks a uniformly random runnable node (baseline).
pub struct RandomStrategy {
    rng: SmallRng,
}

impl RandomStrategy {
    /// Creates the strategy with a fixed seed for reproducibility.
    pub fn new(seed: u64) -> Self {
        RandomStrategy {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Strategy for RandomStrategy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&mut self, view: &SchedView<'_>) -> Option<NodeId> {
        let runnable: Vec<NodeId> = view
            .nodes()
            .iter()
            .copied()
            .filter(|&id| view.runnable(id))
            .collect();
        if runnable.is_empty() {
            None
        } else {
            Some(runnable[self.rng.gen_range(0..runnable.len())])
        }
    }
}

/// Chain scheduling (Babcock et al., SIGMOD'02): prioritize the operator
/// whose downstream segment sheds tuples fastest per unit of work, which
/// provably minimizes total queue memory for bursty arrivals.
///
/// Priorities derive from the *observed* selectivities in the secondary
/// metadata: for each node, walk the (single-consumer) downstream chain and
/// take the steepest drop `(1 − Π selectivity) / segment length`. Priorities
/// are recomputed periodically as the estimates move.
pub struct ChainStrategy {
    priorities: Vec<(NodeId, f64)>,
    /// Reused downstream buffer — recompute runs hot, one allocation-free
    /// `downstream_into` per chain hop instead of a fresh `Vec` each.
    scratch: Vec<NodeId>,
    refresh_every: u64,
    ticks: u64,
}

impl ChainStrategy {
    /// Creates the strategy; priorities refresh every `refresh_every`
    /// selections.
    pub fn new(refresh_every: u64) -> Self {
        ChainStrategy {
            priorities: Vec::new(),
            scratch: Vec::new(),
            refresh_every: refresh_every.max(1),
            ticks: 0,
        }
    }

    fn recompute(&mut self, view: &SchedView<'_>) {
        self.priorities.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        for &id in view.nodes() {
            let mut best: f64 = 0.0;
            // Walk the downstream chain, accumulating survival probability.
            let mut survival = 1.0;
            let mut len = 0.0;
            let mut cur = id;
            loop {
                survival *= view.selectivity(cur).min(1.0);
                len += 1.0;
                let slope = (1.0 - survival) / len;
                best = best.max(slope);
                scratch.clear();
                view.downstream_into(cur, &mut scratch);
                if scratch.len() != 1 {
                    break;
                }
                cur = scratch[0];
                if len > 32.0 {
                    break;
                }
            }
            self.priorities.push((id, best));
        }
        self.scratch = scratch;
    }
}

impl Strategy for ChainStrategy {
    fn name(&self) -> &'static str {
        "chain"
    }

    fn select(&mut self, view: &SchedView<'_>) -> Option<NodeId> {
        if self.ticks.is_multiple_of(self.refresh_every)
            || self.priorities.len() != view.nodes().len()
        {
            self.recompute(view);
        }
        self.ticks += 1;
        // Highest-priority runnable *operator or sink* first; sources are
        // only run when no queued work exists (Chain drains before it
        // admits).
        let best = self
            .priorities
            .iter()
            .filter(|(id, _)| !view.is_finished(*id) && view.queued(*id) > 0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("priorities are finite"))
            .map(|(id, _)| *id);
        if let Some(id) = best {
            return Some(id);
        }
        view.nodes()
            .iter()
            .copied()
            .find(|&id| !view.is_finished(id) && view.kind(id) == NodeKind::Source)
    }
}

/// Rate-based scheduling (after Urhan & Franklin / Aurora): prioritize the
/// node with the highest observed output rate per quantum, pushing results
/// toward sinks as fast as possible (latency-oriented).
pub struct RateBasedStrategy;

impl Strategy for RateBasedStrategy {
    fn name(&self) -> &'static str {
        "rate-based"
    }

    fn select(&mut self, view: &SchedView<'_>) -> Option<NodeId> {
        let best = view
            .nodes()
            .iter()
            .copied()
            .filter(|&id| !view.is_finished(id) && view.queued(id) > 0)
            .map(|id| (view.selectivity(id), id))
            .max_by(|a, b| a.partial_cmp(b).expect("selectivities are finite"));
        if let Some((_, id)) = best {
            return Some(id);
        }
        view.nodes()
            .iter()
            .copied()
            .find(|&id| !view.is_finished(id) && view.kind(id) == NodeKind::Source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipes_graph::io::{CollectSink, VecSource};
    use pipes_graph::{Collector, Operator};
    use pipes_time::{Element, Timestamp};

    struct PassThrough;
    impl Operator for PassThrough {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            out.element(e);
        }
    }

    fn demo_graph() -> (QueryGraph, Vec<NodeId>) {
        let g = QueryGraph::new();
        let elems: Vec<Element<i64>> = (0..10)
            .map(|i| Element::at(i, Timestamp::new(i as u64)))
            .collect();
        let src = g.add_source("src", VecSource::new(elems));
        let a = g.add_unary("a", PassThrough, &src);
        let (sink, _) = CollectSink::new();
        let sid = g.add_sink("sink", sink, &a);
        let nodes = vec![src.node(), a.node(), sid];
        (g, nodes)
    }

    fn drains_with(mut strat: impl Strategy) {
        let (g, nodes) = demo_graph();
        let mut stalls = 0;
        loop {
            if g.all_finished() {
                return;
            }
            let view = SchedView::new(&g, &nodes);
            match strat.select(&view) {
                Some(id) => {
                    let rep = g.step_node(id, 4);
                    if rep.consumed == 0 && rep.produced == 0 && !g.is_finished(id) {
                        stalls += 1;
                    } else {
                        stalls = 0;
                    }
                }
                None => stalls += 1,
            }
            assert!(stalls < 100, "strategy stalled");
        }
    }

    #[test]
    fn every_strategy_drains_a_finite_graph() {
        drains_with(RoundRobinStrategy::new());
        drains_with(FifoStrategy);
        drains_with(GreedyStrategy);
        drains_with(RandomStrategy::new(42));
        drains_with(ChainStrategy::new(8));
        drains_with(RateBasedStrategy);
    }

    #[test]
    fn fifo_prefers_oldest_message() {
        let (g, nodes) = demo_graph();
        // Produce a few elements so queues are non-empty.
        g.step_node(nodes[0], 3);
        let view = SchedView::new(&g, &nodes);
        let mut strat = FifoStrategy;
        let picked = strat.select(&view).unwrap();
        // Node "a" holds the oldest messages (the sink has none yet).
        assert_eq!(picked, nodes[1]);
    }

    #[test]
    fn greedy_prefers_longest_queue() {
        let (g, nodes) = demo_graph();
        g.step_node(nodes[0], 5); // 5 elements + heartbeats queued at "a"
        let view = SchedView::new(&g, &nodes);
        assert_eq!(GreedyStrategy.select(&view), Some(nodes[1]));
    }

    #[test]
    fn round_robin_skips_idle_nodes() {
        let (g, nodes) = demo_graph();
        let mut rr = RoundRobinStrategy::new();
        // Initially only the source is runnable.
        let view = SchedView::new(&g, &nodes);
        assert_eq!(rr.select(&view), Some(nodes[0]));
    }

    struct DropMost;
    impl Operator for DropMost {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            if e.payload % 10 == 0 {
                out.element(e);
            }
        }
    }

    #[test]
    fn rate_based_prefers_the_high_rate_path_under_skew() {
        // Two parallel chains with skewed selectivity: `fast` passes
        // everything, `slow` drops 90%.
        let g = QueryGraph::new();
        let elems: Vec<Element<i64>> = (0..40)
            .map(|i| Element::at(i, Timestamp::new(i as u64)))
            .collect();
        let s1 = g.add_source("s1", VecSource::new(elems.clone()));
        let s2 = g.add_source("s2", VecSource::new(elems));
        let fast = g.add_unary("fast", PassThrough, &s1);
        let slow = g.add_unary("slow", DropMost, &s2);
        let (k1, _) = CollectSink::new();
        let (k2, _) = CollectSink::new();
        g.add_sink("k1", k1, &fast);
        g.add_sink("k2", k2, &slow);

        // Feed both operators and let them observe their selectivities.
        g.step_node(s1.node(), 20);
        g.step_node(s2.node(), 20);
        g.step_node(fast.node(), 10);
        g.step_node(slow.node(), 10);
        assert!(g.queued(fast.node()) > 0 && g.queued(slow.node()) > 0);

        let candidates = vec![fast.node(), slow.node()];
        let view = SchedView::new(&g, &candidates);
        assert!(view.selectivity(fast.node()) > view.selectivity(slow.node()));
        assert_eq!(
            RateBasedStrategy.select(&view),
            Some(fast.node()),
            "rate-based must push the productive path first"
        );
    }

    #[test]
    fn random_strategy_is_deterministic_per_seed() {
        // Three always-runnable sources: the candidate set never changes,
        // so selection sequences depend only on the seed.
        let g = QueryGraph::new();
        let mk = |n: &str| {
            let h = g.add_source(n, VecSource::new(elems_n(1000)));
            let (k, _) = CollectSink::new();
            g.add_sink(&format!("{n}-sink"), k, &h);
            h.node()
        };
        let nodes = vec![mk("a"), mk("b"), mk("c")];
        let view = SchedView::new(&g, &nodes);

        let draw = |seed: u64| -> Vec<NodeId> {
            let mut s = RandomStrategy::new(seed);
            (0..64).map(|_| s.select(&view).unwrap()).collect()
        };
        assert_eq!(draw(7), draw(7), "same seed, same schedule");
        assert_ne!(draw(7), draw(8), "different seeds diverge");
    }

    fn elems_n(n: i64) -> Vec<Element<i64>> {
        (0..n)
            .map(|i| Element::at(i, Timestamp::new(i as u64)))
            .collect()
    }

    #[test]
    fn downstream_into_reuses_the_buffer() {
        let (g, nodes) = demo_graph();
        let view = SchedView::new(&g, &nodes);
        let mut buf = Vec::with_capacity(4);
        view.downstream_into(nodes[0], &mut buf);
        assert_eq!(buf, vec![nodes[1]]);
        let cap = buf.capacity();
        buf.clear();
        view.downstream_into(nodes[1], &mut buf);
        assert_eq!(buf, vec![nodes[2]]);
        assert_eq!(buf.capacity(), cap, "no reallocation");
        assert_eq!(view.downstream(nodes[2]), Vec::<NodeId>::new());
    }

    #[test]
    fn chain_priorities_favor_selective_chains() {
        let (g, nodes) = demo_graph();
        g.step_node(nodes[0], 10);
        g.step_node(nodes[1], 30);
        let view = SchedView::new(&g, &nodes);
        let mut chain = ChainStrategy::new(1);
        chain.recompute(&view);
        assert_eq!(chain.priorities.len(), nodes.len());
        assert!(chain.priorities.iter().all(|(_, p)| p.is_finite()));
    }
}
