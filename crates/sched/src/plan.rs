//! Layer 1 at runtime: virtual-node planning over the assembled graph.
//!
//! [`ExecutionPlan::analyze`] inspects the [`QueryGraph`] topology at launch
//! and groups maximal single-producer/single-consumer chains into
//! [`VirtualGroup`]s — the runtime counterpart of the compile-time
//! [`pipes_graph::Fused`] combinator. A group is the unit layer 3 schedules
//! and places: all nodes of a group run on the same worker thread, so every
//! intra-chain edge stays thread-local (the producer's batch flush and the
//! consumer's drain never contend across cores), and only the compara­tively
//! rare chain-crossing edges (fan-out, fan-in, joins) pay cross-thread lock
//! traffic.
//!
//! The plan also derives topology-aware default partitions (longest-
//! processing-time greedy over group cost estimates), replacing the old
//! static `skip(t).step_by(threads)` node split that scattered hot pipelines
//! across threads.

use pipes_graph::{NodeId, NodeKind, QueryGraph};

/// Identifier of a virtual-node group within an [`ExecutionPlan`].
pub type GroupId = usize;

/// Hard invariant of the planner: a fused edge `a → b` must be strictly
/// single-producer/single-consumer. Fusing across a multi-consumer edge
/// (e.g. a shuffle partitioner feeding k keyed instances) would serialize
/// the instances onto one worker, and fusing across a multi-producer edge
/// (k instances feeding one order-restoring merge) would let one instance's
/// chain run the merge while sibling ports lag — both defeat the point of
/// the shuffle and can reorder merge input. The chain-building loops only
/// link SPSC edges; this check makes the refusal explicit and loud if a
/// future edit weakens those conditions.
fn assert_fused_edges_spsc(next: &[Option<NodeId>], up: &[Vec<NodeId>], out_edges: &[usize]) {
    for (a, nx) in next.iter().enumerate() {
        if let Some(b) = *nx {
            assert!(
                out_edges[a] == 1 && up[b].len() == 1,
                "refusing to fuse {a} -> {b}: edge is multi-producer or multi-consumer \
                 ({} producers into {b}, {} consumers out of {a})",
                up[b].len(),
                out_edges[a],
            );
        }
    }
}

/// One runtime virtual node: a maximal chain of nodes connected by
/// single-producer/single-consumer edges, scheduled and placed as a unit.
#[derive(Clone, Debug)]
pub struct VirtualGroup {
    id: GroupId,
    nodes: Vec<NodeId>,
    has_source: bool,
    cost: u64,
    retired: bool,
}

impl VirtualGroup {
    /// The group's id (its index in [`ExecutionPlan::groups`]).
    pub fn id(&self) -> GroupId {
        self.id
    }

    /// The member nodes in chain order (each node feeds the next).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the group has no members (never produced by `analyze`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the group contains a live source (always runnable until the
    /// source closes — weighted heavier by the static cost estimate).
    pub fn has_source(&self) -> bool {
        self.has_source
    }

    /// Launch-time cost estimate used by the default partitioning: chain
    /// length, plus a bonus for live sources.
    pub fn static_cost(&self) -> u64 {
        self.cost
    }

    /// Whether every member node has been removed from the graph. Retired
    /// groups keep their id (in-flight `GroupTable` state stays valid) but
    /// are excluded from partitioning and rebalance targets: the owner
    /// finishes any quantum in flight, releases at the next epoch
    /// hand-off, and nobody re-adopts — the group drains and leaves the
    /// active schedule without ever being compacted out of the table.
    pub fn is_retired(&self) -> bool {
        self.retired
    }
}

/// The launch-time analysis of a query graph: virtual-node groups, the
/// node → group index, per-node downstream group adjacency, and
/// topology-aware partitions over worker threads.
pub struct ExecutionPlan {
    groups: Vec<VirtualGroup>,
    group_of: Vec<GroupId>,
    downstream_groups: Vec<Vec<GroupId>>,
    /// The [`QueryGraph::topology_epoch`] this plan covers, read *before*
    /// the topology scan: a mutation racing the scan leaves the graph's
    /// epoch ahead of this value, so pollers re-plan (seqlock-style
    /// conservatism — a refresh can run twice, never be missed).
    planned_epoch: u64,
}

impl ExecutionPlan {
    /// Analyzes the current topology of `graph`.
    ///
    /// An edge `a → b` is *fusable* when it is `a`'s only outgoing edge and
    /// `b`'s only incoming edge (and neither endpoint is removed); maximal
    /// fusable chains become groups, everything else (fan-out points, join
    /// inputs, removed nodes) forms singleton groups. Nodes added to the
    /// graph after analysis are not covered — poll
    /// [`QueryGraph::topology_epoch`] against [`ExecutionPlan::planned_epoch`]
    /// and extend with [`ExecutionPlan::refreshed`] after splicing.
    pub fn analyze(graph: &QueryGraph) -> Self {
        let planned_epoch = graph.topology_epoch();
        let n = graph.len();
        let up: Vec<Vec<NodeId>> = (0..n).map(|id| graph.upstream_ids(id)).collect();
        let removed: Vec<bool> = (0..n).map(|id| graph.is_removed(id)).collect();
        let mut out_edges = vec![0usize; n];
        for ups in &up {
            for &a in ups {
                // A concurrent splice can rewrite an incoming list to
                // reference nodes beyond this scan's length snapshot
                // (e.g. a shuffle merge re-pointed at fresh instances);
                // the epoch read above already marks this plan stale, the
                // scan just must not index past its own snapshot.
                if let Some(slot) = out_edges.get_mut(a) {
                    *slot += 1;
                }
            }
        }
        // Chain successor/predecessor along fusable edges.
        let mut next: Vec<Option<NodeId>> = vec![None; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        for b in 0..n {
            if removed[b] || up[b].len() != 1 {
                continue;
            }
            let a = up[b][0];
            if a >= n || removed[a] || out_edges[a] != 1 || a == b {
                continue;
            }
            next[a] = Some(b);
            prev[b] = Some(a);
        }
        assert_fused_edges_spsc(&next, &up, &out_edges);
        // Walk each chain from its head.
        let mut groups: Vec<VirtualGroup> = Vec::new();
        let mut group_of = vec![0 as GroupId; n];
        for (head, pred) in prev.iter().enumerate() {
            if pred.is_some() {
                continue;
            }
            let id = groups.len();
            let mut nodes = Vec::new();
            let mut cur = head;
            loop {
                group_of[cur] = id;
                nodes.push(cur);
                match next[cur] {
                    Some(nx) => cur = nx,
                    None => break,
                }
            }
            let has_source = nodes
                .iter()
                .any(|&m| !removed[m] && graph.kind(m) == NodeKind::Source);
            let cost = nodes.len() as u64 + if has_source { 2 } else { 0 };
            let retired = nodes.iter().all(|&m| removed[m]);
            groups.push(VirtualGroup {
                id,
                nodes,
                has_source,
                cost: if retired { 0 } else { cost },
                retired,
            });
        }
        // Per node: the distinct *foreign* groups its output feeds.
        let mut downstream_groups: Vec<Vec<GroupId>> = vec![Vec::new(); n];
        for b in 0..n {
            for &a in &up[b] {
                if a >= n {
                    continue; // spliced mid-scan; next re-plan covers it
                }
                let (ga, gb) = (group_of[a], group_of[b]);
                if ga != gb && !downstream_groups[a].contains(&gb) {
                    downstream_groups[a].push(gb);
                }
            }
        }
        ExecutionPlan {
            groups,
            group_of,
            downstream_groups,
            planned_epoch,
        }
    }

    /// Extends this plan to cover nodes spliced into `graph` since it was
    /// analyzed, *incrementally*: existing groups keep their ids and
    /// member lists verbatim (in-flight `GroupTable` state and worker
    /// ownership stay valid), groups whose members have all been removed
    /// are flagged retired, and only new/retired nodes are re-examined.
    ///
    /// Fusion is restricted to new↔new SPSC edges — a new node chained
    /// onto an already-planned producer starts a fresh group even when the
    /// edge would have fused at launch. That asymmetry is the price of
    /// stability: re-fusing would rewrite the old group's membership under
    /// a worker mid-quantum. Downstream-group adjacency *is* re-derived
    /// over the whole graph, because old → new edges (a spliced query
    /// subscribing to a running producer) must route wakeups.
    pub fn refreshed(&self, graph: &QueryGraph) -> Self {
        let planned_epoch = graph.topology_epoch();
        let n = graph.len();
        let old_n = self.group_of.len();
        let up: Vec<Vec<NodeId>> = (0..n).map(|id| graph.upstream_ids(id)).collect();
        let removed: Vec<bool> = (0..n).map(|id| graph.is_removed(id)).collect();

        let mut groups = self.groups.clone();
        let mut group_of = self.group_of.clone();
        for grp in &mut groups {
            if !grp.retired && grp.nodes.iter().all(|&m| removed[m]) {
                grp.retired = true;
                grp.cost = 0;
            }
        }

        let mut out_edges = vec![0usize; n];
        for ups in &up {
            for &a in ups {
                // See `analyze`: a splice racing this scan can reference
                // nodes past the length snapshot; skip, the epoch check
                // forces another refresh.
                if let Some(slot) = out_edges.get_mut(a) {
                    *slot += 1;
                }
            }
        }
        let mut next: Vec<Option<NodeId>> = vec![None; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        for b in old_n..n {
            if removed[b] || up[b].len() != 1 {
                continue;
            }
            let a = up[b][0];
            if a >= n || a < old_n || removed[a] || out_edges[a] != 1 || a == b {
                continue;
            }
            next[a] = Some(b);
            prev[b] = Some(a);
        }
        assert_fused_edges_spsc(&next, &up, &out_edges);
        group_of.resize(n, 0);
        for (head, head_prev) in prev.iter().enumerate().skip(old_n) {
            if head_prev.is_some() {
                continue;
            }
            let id = groups.len();
            let mut nodes = Vec::new();
            let mut cur = head;
            loop {
                group_of[cur] = id;
                nodes.push(cur);
                match next[cur] {
                    Some(nx) => cur = nx,
                    None => break,
                }
            }
            let has_source = nodes
                .iter()
                .any(|&m| !removed[m] && graph.kind(m) == NodeKind::Source);
            let cost = nodes.len() as u64 + if has_source { 2 } else { 0 };
            let retired = nodes.iter().all(|&m| removed[m]);
            groups.push(VirtualGroup {
                id,
                nodes,
                has_source,
                cost: if retired { 0 } else { cost },
                retired,
            });
        }

        let mut downstream_groups: Vec<Vec<GroupId>> = vec![Vec::new(); n];
        for b in 0..n {
            for &a in &up[b] {
                if a >= n {
                    continue; // spliced mid-scan; next re-plan covers it
                }
                let (ga, gb) = (group_of[a], group_of[b]);
                if ga != gb && !downstream_groups[a].contains(&gb) {
                    downstream_groups[a].push(gb);
                }
            }
        }
        ExecutionPlan {
            groups,
            group_of,
            downstream_groups,
            planned_epoch,
        }
    }

    /// The [`QueryGraph::topology_epoch`] this plan covers. When the
    /// graph's live epoch is newer, nodes exist (or have been retired)
    /// that this plan does not know about — refresh before trusting
    /// coverage.
    pub fn planned_epoch(&self) -> u64 {
        self.planned_epoch
    }

    /// The virtual-node groups, indexed by [`GroupId`].
    pub fn groups(&self) -> &[VirtualGroup] {
        &self.groups
    }

    /// The group containing `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was spliced in after this plan's epoch; use
    /// [`ExecutionPlan::try_group_of`] when the caller can race a splice.
    pub fn group_of(&self, node: NodeId) -> GroupId {
        self.group_of[node]
    }

    /// The group containing `node`, or `None` for a node this plan does
    /// not cover (spliced in after [`ExecutionPlan::planned_epoch`]).
    pub fn try_group_of(&self, node: NodeId) -> Option<GroupId> {
        self.group_of.get(node).copied()
    }

    /// The distinct groups other than `node`'s own that consume `node`'s
    /// output — the placement units a productive step of `node` can wake.
    /// Empty for nodes this plan does not cover yet (spliced after the
    /// planned epoch): their output wakes nobody until the next re-plan.
    pub fn downstream_groups(&self, node: NodeId) -> &[GroupId] {
        self.downstream_groups
            .get(node)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Assigns groups to `threads` partitions by longest-processing-time
    /// greedy over [`VirtualGroup::static_cost`]: heaviest group first, each
    /// onto the currently lightest partition. Deterministic (ties break
    /// toward lower ids / lower thread indices); partitions may be empty
    /// when there are fewer groups than threads. Retired groups are not
    /// placed.
    pub fn partition_groups(&self, threads: usize) -> Vec<Vec<GroupId>> {
        assert!(threads > 0, "need at least one partition");
        let mut order: Vec<GroupId> = (0..self.groups.len())
            .filter(|&g| !self.groups[g].retired)
            .collect();
        order.sort_by_key(|&g| std::cmp::Reverse(self.groups[g].cost));
        let mut parts: Vec<Vec<GroupId>> = vec![Vec::new(); threads];
        let mut load = vec![0u64; threads];
        for g in order {
            let lightest = (0..threads).min_by_key(|&t| load[t]).expect("threads > 0");
            parts[lightest].push(g);
            load[lightest] += self.groups[g].cost.max(1);
        }
        for p in &mut parts {
            p.sort_unstable();
        }
        parts
    }

    /// Topology-aware node partitions for `threads` workers: the node lists
    /// of [`ExecutionPlan::partition_groups`], with each group's chain kept
    /// contiguous and in order.
    pub fn partitions(&self, threads: usize) -> Vec<Vec<NodeId>> {
        self.partition_groups(threads)
            .into_iter()
            .map(|gids| self.nodes_of(&gids))
            .collect()
    }

    /// Flattens the member nodes of the given groups, preserving group order
    /// and intra-group chain order.
    pub fn nodes_of(&self, groups: &[GroupId]) -> Vec<NodeId> {
        groups
            .iter()
            .flat_map(|&g| self.groups[g].nodes.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipes_graph::io::{CollectSink, CountSink, VecSource};
    use pipes_graph::{Collector, Operator};
    use pipes_time::{Element, Timestamp};

    struct PassThrough;
    impl Operator for PassThrough {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            out.element(e);
        }
    }
    impl pipes_graph::Rekey for PassThrough {
        fn export_keyed(&mut self) -> pipes_graph::KeyedState {
            Vec::new()
        }
        fn import_keyed(&mut self, _entries: pipes_graph::KeyedState) {}
    }

    fn elems(n: i64) -> Vec<Element<i64>> {
        (0..n)
            .map(|i| Element::at(i, Timestamp::new(i as u64)))
            .collect()
    }

    #[test]
    fn linear_chain_fuses_into_one_group() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(4)));
        let a = g.add_unary("a", PassThrough, &src);
        let b = g.add_unary("b", PassThrough, &a);
        let (sink, _) = CollectSink::new();
        let s = g.add_sink("sink", sink, &b);

        let plan = ExecutionPlan::analyze(&g);
        assert_eq!(plan.groups().len(), 1);
        assert_eq!(
            plan.groups()[0].nodes(),
            &[src.node(), a.node(), b.node(), s]
        );
        assert!(plan.groups()[0].has_source());
        assert!(plan.downstream_groups(src.node()).is_empty());
    }

    #[test]
    fn fan_out_breaks_chains_at_the_branch_point() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(4)));
        let a = g.add_unary("a", PassThrough, &src);
        let b = g.add_unary("b", PassThrough, &src);
        let (s1, _) = CollectSink::new();
        let (s2, _) = CollectSink::new();
        let k1 = g.add_sink("s1", s1, &a);
        let k2 = g.add_sink("s2", s2, &b);

        let plan = ExecutionPlan::analyze(&g);
        // src alone (two consumers), then two fused operator→sink chains.
        assert_eq!(plan.groups().len(), 3);
        assert_eq!(
            plan.groups()[plan.group_of(src.node())].nodes(),
            &[src.node()]
        );
        assert_eq!(plan.group_of(a.node()), plan.group_of(k1));
        assert_eq!(plan.group_of(b.node()), plan.group_of(k2));
        assert_ne!(plan.group_of(a.node()), plan.group_of(b.node()));
        // The source's output feeds both foreign chains.
        let mut fed = plan.downstream_groups(src.node()).to_vec();
        fed.sort_unstable();
        let mut expect = vec![plan.group_of(a.node()), plan.group_of(b.node())];
        expect.sort_unstable();
        assert_eq!(fed, expect);
    }

    #[test]
    fn fan_in_breaks_chains_at_the_join_point() {
        let g = QueryGraph::new();
        let s1 = g.add_source("s1", VecSource::new(elems(4)));
        let s2 = g.add_source("s2", VecSource::new(elems(4)));
        let (sink, _) = CountSink::<i64>::new();
        let k = g.add_sink_nary("merge", sink, &[s1.clone(), s2.clone()]);

        let plan = ExecutionPlan::analyze(&g);
        assert_eq!(plan.groups().len(), 3);
        assert_ne!(plan.group_of(s1.node()), plan.group_of(k));
        assert_ne!(plan.group_of(s2.node()), plan.group_of(k));
        assert_eq!(plan.downstream_groups(s1.node()), &[plan.group_of(k)]);
    }

    #[test]
    fn removed_nodes_stay_singletons() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(4)));
        let a = g.add_unary("a", PassThrough, &src);
        let (sink, _) = CollectSink::new();
        let s = g.add_sink("sink", sink, &a);
        g.remove_node(a.node());

        let plan = ExecutionPlan::analyze(&g);
        // Removal detaches a's subscription, so nothing fuses through it.
        assert_eq!(plan.groups().len(), 3);
        assert_eq!(plan.groups()[plan.group_of(a.node())].len(), 1);
        let _ = s;
    }

    #[test]
    fn lpt_partitions_balance_costs_and_keep_chains_whole() {
        let g = QueryGraph::new();
        // One long chain plus three short ones.
        let src = g.add_source("hot", VecSource::new(elems(4)));
        let mut cur = g.add_unary("h0", PassThrough, &src);
        for i in 1..8 {
            cur = g.add_unary(&format!("h{i}"), PassThrough, &cur);
        }
        let (sink, _) = CollectSink::new();
        g.add_sink("hsink", sink, &cur);
        for c in 0..3 {
            let s = g.add_source(&format!("c{c}"), VecSource::new(elems(4)));
            let (k, _) = CollectSink::new();
            g.add_sink(&format!("c{c}sink"), k, &s);
        }

        let plan = ExecutionPlan::analyze(&g);
        assert_eq!(plan.groups().len(), 4);
        let parts = plan.partition_groups(2);
        assert_eq!(parts.len(), 2);
        // The heavy chain lands alone; the three cold chains share the other.
        let hot = plan.group_of(src.node());
        let solo = parts.iter().find(|p| p.contains(&hot)).unwrap();
        assert_eq!(solo.len(), 1);
        let other = parts.iter().find(|p| !p.contains(&hot)).unwrap();
        assert_eq!(other.len(), 3);
        // Node partitions keep each chain contiguous.
        let nodes = plan.partitions(2);
        assert_eq!(
            nodes.iter().map(|p| p.len()).sum::<usize>(),
            g.len(),
            "every node placed exactly once"
        );
        assert!(!nodes[0].is_empty() && !nodes[1].is_empty());
    }

    #[test]
    fn refreshed_extends_plan_incrementally_and_keeps_old_group_ids() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(4)));
        let a = g.add_unary("a", PassThrough, &src);
        let (s1, _) = CollectSink::new();
        let k1 = g.add_sink("k1", s1, &a);
        let plan = ExecutionPlan::analyze(&g);
        assert_eq!(plan.planned_epoch(), g.topology_epoch());
        let old_groups: Vec<Vec<NodeId>> =
            plan.groups().iter().map(|gr| gr.nodes().to_vec()).collect();

        // Splice a second query sharing the running source.
        let b = g.add_unary("b", PassThrough, &src);
        let (s2, _) = CollectSink::new();
        let k2 = g.add_sink("k2", s2, &b);
        assert!(g.topology_epoch() > plan.planned_epoch());

        let plan2 = plan.refreshed(&g);
        assert_eq!(plan2.planned_epoch(), g.topology_epoch());
        // Existing groups keep their ids and member lists verbatim.
        for (i, old) in old_groups.iter().enumerate() {
            assert_eq!(plan2.groups()[i].nodes(), &old[..]);
            assert_eq!(plan2.groups()[i].id(), i);
        }
        // The spliced operator→sink chain fused into one appended group.
        let gb = plan2.group_of(b.node());
        assert!(gb >= old_groups.len(), "new nodes go to appended groups");
        assert_eq!(plan2.group_of(k2), gb);
        assert_eq!(plan2.groups()[gb].nodes(), &[b.node(), k2]);
        // The running producer's output now wakes the new group.
        assert!(plan2.downstream_groups(src.node()).contains(&gb));
        // The stale plan stays safe on ids it does not cover.
        assert_eq!(plan.try_group_of(b.node()), None);
        assert!(plan.downstream_groups(k2).is_empty());
        let _ = k1;
    }

    #[test]
    fn refreshed_retires_fully_removed_groups_and_partitions_skip_them() {
        let g = QueryGraph::new();
        let s1 = g.add_source("s1", VecSource::new(elems(4)));
        let (k1, _) = CollectSink::new();
        let sink1 = g.add_sink("k1", k1, &s1);
        let s2 = g.add_source("s2", VecSource::new(elems(4)));
        let (k2, _) = CollectSink::new();
        let sink2 = g.add_sink("k2", k2, &s2);
        let plan = ExecutionPlan::analyze(&g);
        assert_eq!(plan.groups().len(), 2);
        assert!(plan.groups().iter().all(|gr| !gr.is_retired()));

        g.remove_node(sink2);
        g.remove_node(s2.node());
        let plan2 = plan.refreshed(&g);
        let dead = plan2.group_of(s2.node());
        assert!(plan2.groups()[dead].is_retired());
        assert_eq!(plan2.groups()[dead].static_cost(), 0);
        let live = plan2.group_of(s1.node());
        assert!(!plan2.groups()[live].is_retired());
        // Retired groups are never placed.
        let placed: Vec<GroupId> = plan2.partition_groups(2).into_iter().flatten().collect();
        assert!(placed.contains(&live));
        assert!(!placed.contains(&dead));
        let _ = sink1;
    }

    #[test]
    fn shuffle_edges_never_fuse_and_instances_stay_independent() {
        use pipes_sync::Arc;
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(16)));
        let h = g.add_keyed_unary(
            "par",
            || PassThrough,
            Arc::new(|v: &i64| v.rem_euclid(4) as u64),
            3,
            None,
            &src,
        );
        let (sink, _) = CollectSink::new();
        g.add_sink("sink", sink, &h);

        let plan = ExecutionPlan::analyze(&g);
        let group = g.shuffle_groups().pop().expect("one shuffle group");
        assert_eq!(group.instance_ids.len(), 3);
        let part = group.partition_ids[0];
        let merge = group.handle;
        // The partition edge is multi-consumer and the merge edge is
        // multi-producer: neither may fuse, so every instance is its own
        // placement unit, independently stealable across workers.
        let mut seen = vec![plan.group_of(part), plan.group_of(merge)];
        for &i in &group.instance_ids {
            assert_eq!(plan.groups()[plan.group_of(i)].nodes(), &[i]);
            seen.push(plan.group_of(i));
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            5,
            "partition, merge, and 3 instances all in distinct groups"
        );
        // Partitioner output wakes all three instance groups.
        assert_eq!(plan.downstream_groups(part).len(), 3);
    }

    #[test]
    fn more_threads_than_groups_leaves_empty_partitions() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(2)));
        let (sink, _) = CollectSink::new();
        g.add_sink("sink", sink, &src);
        let plan = ExecutionPlan::analyze(&g);
        assert_eq!(plan.groups().len(), 1);
        let parts = plan.partitions(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 2);
        assert!(parts[1].is_empty() && parts[2].is_empty());
    }
}
