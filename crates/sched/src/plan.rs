//! Layer 1 at runtime: virtual-node planning over the assembled graph.
//!
//! [`ExecutionPlan::analyze`] inspects the [`QueryGraph`] topology at launch
//! and groups maximal single-producer/single-consumer chains into
//! [`VirtualGroup`]s — the runtime counterpart of the compile-time
//! [`pipes_graph::Fused`] combinator. A group is the unit layer 3 schedules
//! and places: all nodes of a group run on the same worker thread, so every
//! intra-chain edge stays thread-local (the producer's batch flush and the
//! consumer's drain never contend across cores), and only the compara­tively
//! rare chain-crossing edges (fan-out, fan-in, joins) pay cross-thread lock
//! traffic.
//!
//! The plan also derives topology-aware default partitions (longest-
//! processing-time greedy over group cost estimates), replacing the old
//! static `skip(t).step_by(threads)` node split that scattered hot pipelines
//! across threads.

use pipes_graph::{NodeId, NodeKind, QueryGraph};

/// Identifier of a virtual-node group within an [`ExecutionPlan`].
pub type GroupId = usize;

/// One runtime virtual node: a maximal chain of nodes connected by
/// single-producer/single-consumer edges, scheduled and placed as a unit.
#[derive(Clone, Debug)]
pub struct VirtualGroup {
    id: GroupId,
    nodes: Vec<NodeId>,
    has_source: bool,
    cost: u64,
}

impl VirtualGroup {
    /// The group's id (its index in [`ExecutionPlan::groups`]).
    pub fn id(&self) -> GroupId {
        self.id
    }

    /// The member nodes in chain order (each node feeds the next).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the group has no members (never produced by `analyze`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the group contains a live source (always runnable until the
    /// source closes — weighted heavier by the static cost estimate).
    pub fn has_source(&self) -> bool {
        self.has_source
    }

    /// Launch-time cost estimate used by the default partitioning: chain
    /// length, plus a bonus for live sources.
    pub fn static_cost(&self) -> u64 {
        self.cost
    }
}

/// The launch-time analysis of a query graph: virtual-node groups, the
/// node → group index, per-node downstream group adjacency, and
/// topology-aware partitions over worker threads.
pub struct ExecutionPlan {
    groups: Vec<VirtualGroup>,
    group_of: Vec<GroupId>,
    downstream_groups: Vec<Vec<GroupId>>,
}

impl ExecutionPlan {
    /// Analyzes the current topology of `graph`.
    ///
    /// An edge `a → b` is *fusable* when it is `a`'s only outgoing edge and
    /// `b`'s only incoming edge (and neither endpoint is removed); maximal
    /// fusable chains become groups, everything else (fan-out points, join
    /// inputs, removed nodes) forms singleton groups. Nodes added to the
    /// graph after analysis are not covered — re-analyze after splicing.
    pub fn analyze(graph: &QueryGraph) -> Self {
        let n = graph.len();
        let up: Vec<Vec<NodeId>> = (0..n).map(|id| graph.upstream_ids(id)).collect();
        let removed: Vec<bool> = (0..n).map(|id| graph.is_removed(id)).collect();
        let mut out_edges = vec![0usize; n];
        for ups in &up {
            for &a in ups {
                out_edges[a] += 1;
            }
        }
        // Chain successor/predecessor along fusable edges.
        let mut next: Vec<Option<NodeId>> = vec![None; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        for b in 0..n {
            if removed[b] || up[b].len() != 1 {
                continue;
            }
            let a = up[b][0];
            if removed[a] || out_edges[a] != 1 || a == b {
                continue;
            }
            next[a] = Some(b);
            prev[b] = Some(a);
        }
        // Walk each chain from its head.
        let mut groups: Vec<VirtualGroup> = Vec::new();
        let mut group_of = vec![0 as GroupId; n];
        for (head, pred) in prev.iter().enumerate() {
            if pred.is_some() {
                continue;
            }
            let id = groups.len();
            let mut nodes = Vec::new();
            let mut cur = head;
            loop {
                group_of[cur] = id;
                nodes.push(cur);
                match next[cur] {
                    Some(nx) => cur = nx,
                    None => break,
                }
            }
            let has_source = nodes
                .iter()
                .any(|&m| !removed[m] && graph.kind(m) == NodeKind::Source);
            let cost = nodes.len() as u64 + if has_source { 2 } else { 0 };
            groups.push(VirtualGroup {
                id,
                nodes,
                has_source,
                cost,
            });
        }
        // Per node: the distinct *foreign* groups its output feeds.
        let mut downstream_groups: Vec<Vec<GroupId>> = vec![Vec::new(); n];
        for b in 0..n {
            for &a in &up[b] {
                let (ga, gb) = (group_of[a], group_of[b]);
                if ga != gb && !downstream_groups[a].contains(&gb) {
                    downstream_groups[a].push(gb);
                }
            }
        }
        ExecutionPlan {
            groups,
            group_of,
            downstream_groups,
        }
    }

    /// The virtual-node groups, indexed by [`GroupId`].
    pub fn groups(&self) -> &[VirtualGroup] {
        &self.groups
    }

    /// The group containing `node`.
    pub fn group_of(&self, node: NodeId) -> GroupId {
        self.group_of[node]
    }

    /// The distinct groups other than `node`'s own that consume `node`'s
    /// output — the placement units a productive step of `node` can wake.
    pub fn downstream_groups(&self, node: NodeId) -> &[GroupId] {
        &self.downstream_groups[node]
    }

    /// Assigns groups to `threads` partitions by longest-processing-time
    /// greedy over [`VirtualGroup::static_cost`]: heaviest group first, each
    /// onto the currently lightest partition. Deterministic (ties break
    /// toward lower ids / lower thread indices); partitions may be empty
    /// when there are fewer groups than threads.
    pub fn partition_groups(&self, threads: usize) -> Vec<Vec<GroupId>> {
        assert!(threads > 0, "need at least one partition");
        let mut order: Vec<GroupId> = (0..self.groups.len()).collect();
        order.sort_by_key(|&g| std::cmp::Reverse(self.groups[g].cost));
        let mut parts: Vec<Vec<GroupId>> = vec![Vec::new(); threads];
        let mut load = vec![0u64; threads];
        for g in order {
            let lightest = (0..threads).min_by_key(|&t| load[t]).expect("threads > 0");
            parts[lightest].push(g);
            load[lightest] += self.groups[g].cost.max(1);
        }
        for p in &mut parts {
            p.sort_unstable();
        }
        parts
    }

    /// Topology-aware node partitions for `threads` workers: the node lists
    /// of [`ExecutionPlan::partition_groups`], with each group's chain kept
    /// contiguous and in order.
    pub fn partitions(&self, threads: usize) -> Vec<Vec<NodeId>> {
        self.partition_groups(threads)
            .into_iter()
            .map(|gids| self.nodes_of(&gids))
            .collect()
    }

    /// Flattens the member nodes of the given groups, preserving group order
    /// and intra-group chain order.
    pub fn nodes_of(&self, groups: &[GroupId]) -> Vec<NodeId> {
        groups
            .iter()
            .flat_map(|&g| self.groups[g].nodes.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipes_graph::io::{CollectSink, CountSink, VecSource};
    use pipes_graph::{Collector, Operator};
    use pipes_time::{Element, Timestamp};

    struct PassThrough;
    impl Operator for PassThrough {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            out.element(e);
        }
    }

    fn elems(n: i64) -> Vec<Element<i64>> {
        (0..n)
            .map(|i| Element::at(i, Timestamp::new(i as u64)))
            .collect()
    }

    #[test]
    fn linear_chain_fuses_into_one_group() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(4)));
        let a = g.add_unary("a", PassThrough, &src);
        let b = g.add_unary("b", PassThrough, &a);
        let (sink, _) = CollectSink::new();
        let s = g.add_sink("sink", sink, &b);

        let plan = ExecutionPlan::analyze(&g);
        assert_eq!(plan.groups().len(), 1);
        assert_eq!(
            plan.groups()[0].nodes(),
            &[src.node(), a.node(), b.node(), s]
        );
        assert!(plan.groups()[0].has_source());
        assert!(plan.downstream_groups(src.node()).is_empty());
    }

    #[test]
    fn fan_out_breaks_chains_at_the_branch_point() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(4)));
        let a = g.add_unary("a", PassThrough, &src);
        let b = g.add_unary("b", PassThrough, &src);
        let (s1, _) = CollectSink::new();
        let (s2, _) = CollectSink::new();
        let k1 = g.add_sink("s1", s1, &a);
        let k2 = g.add_sink("s2", s2, &b);

        let plan = ExecutionPlan::analyze(&g);
        // src alone (two consumers), then two fused operator→sink chains.
        assert_eq!(plan.groups().len(), 3);
        assert_eq!(
            plan.groups()[plan.group_of(src.node())].nodes(),
            &[src.node()]
        );
        assert_eq!(plan.group_of(a.node()), plan.group_of(k1));
        assert_eq!(plan.group_of(b.node()), plan.group_of(k2));
        assert_ne!(plan.group_of(a.node()), plan.group_of(b.node()));
        // The source's output feeds both foreign chains.
        let mut fed = plan.downstream_groups(src.node()).to_vec();
        fed.sort_unstable();
        let mut expect = vec![plan.group_of(a.node()), plan.group_of(b.node())];
        expect.sort_unstable();
        assert_eq!(fed, expect);
    }

    #[test]
    fn fan_in_breaks_chains_at_the_join_point() {
        let g = QueryGraph::new();
        let s1 = g.add_source("s1", VecSource::new(elems(4)));
        let s2 = g.add_source("s2", VecSource::new(elems(4)));
        let (sink, _) = CountSink::<i64>::new();
        let k = g.add_sink_nary("merge", sink, &[s1.clone(), s2.clone()]);

        let plan = ExecutionPlan::analyze(&g);
        assert_eq!(plan.groups().len(), 3);
        assert_ne!(plan.group_of(s1.node()), plan.group_of(k));
        assert_ne!(plan.group_of(s2.node()), plan.group_of(k));
        assert_eq!(plan.downstream_groups(s1.node()), &[plan.group_of(k)]);
    }

    #[test]
    fn removed_nodes_stay_singletons() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(4)));
        let a = g.add_unary("a", PassThrough, &src);
        let (sink, _) = CollectSink::new();
        let s = g.add_sink("sink", sink, &a);
        g.remove_node(a.node());

        let plan = ExecutionPlan::analyze(&g);
        // Removal detaches a's subscription, so nothing fuses through it.
        assert_eq!(plan.groups().len(), 3);
        assert_eq!(plan.groups()[plan.group_of(a.node())].len(), 1);
        let _ = s;
    }

    #[test]
    fn lpt_partitions_balance_costs_and_keep_chains_whole() {
        let g = QueryGraph::new();
        // One long chain plus three short ones.
        let src = g.add_source("hot", VecSource::new(elems(4)));
        let mut cur = g.add_unary("h0", PassThrough, &src);
        for i in 1..8 {
            cur = g.add_unary(&format!("h{i}"), PassThrough, &cur);
        }
        let (sink, _) = CollectSink::new();
        g.add_sink("hsink", sink, &cur);
        for c in 0..3 {
            let s = g.add_source(&format!("c{c}"), VecSource::new(elems(4)));
            let (k, _) = CollectSink::new();
            g.add_sink(&format!("c{c}sink"), k, &s);
        }

        let plan = ExecutionPlan::analyze(&g);
        assert_eq!(plan.groups().len(), 4);
        let parts = plan.partition_groups(2);
        assert_eq!(parts.len(), 2);
        // The heavy chain lands alone; the three cold chains share the other.
        let hot = plan.group_of(src.node());
        let solo = parts.iter().find(|p| p.contains(&hot)).unwrap();
        assert_eq!(solo.len(), 1);
        let other = parts.iter().find(|p| !p.contains(&hot)).unwrap();
        assert_eq!(other.len(), 3);
        // Node partitions keep each chain contiguous.
        let nodes = plan.partitions(2);
        assert_eq!(
            nodes.iter().map(|p| p.len()).sum::<usize>(),
            g.len(),
            "every node placed exactly once"
        );
        assert!(!nodes[0].is_empty() && !nodes[1].is_empty());
    }

    #[test]
    fn more_threads_than_groups_leaves_empty_partitions() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(2)));
        let (sink, _) = CollectSink::new();
        g.add_sink("sink", sink, &src);
        let plan = ExecutionPlan::analyze(&g);
        assert_eq!(plan.groups().len(), 1);
        let parts = plan.partitions(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 2);
        assert!(parts[1].is_empty() && parts[2].is_empty());
    }
}
