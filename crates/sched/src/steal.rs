//! Layer 3 ownership: the atomic claim/steal protocol and targeted parking.
//!
//! Each virtual-node group has one word of state in a [`GroupTable`]:
//! either *free*, or *owned* by a worker, with an *active* bit set while the
//! owner is executing a quantum on one of the group's nodes. All transitions
//! are single-word compare-and-swaps, which makes the two safety properties
//! structural rather than emergent:
//!
//! * **no double execution** — `begin` is a CAS from the inactive owned
//!   state, so two threads can never both hold the active bit;
//! * **no lost groups** — a group is only ever free or owned by exactly one
//!   worker; steals move ownership in one CAS (which fails while the victim
//!   is mid-quantum), and rebalance hand-offs release to free before the
//!   target claims, with free runnable groups re-adopted by any idle worker.
//!
//! These properties are model-checked under `--cfg pipes_model_check`
//! (see `crates/sched/tests/model_check.rs`).

use crate::plan::GroupId;
use pipes_sync::atomic::{AtomicUsize, Ordering};
use pipes_sync::{Condvar, Mutex, RwLock};
use std::time::Duration;

const FREE: usize = 0;

fn owned_by(worker: usize) -> usize {
    (worker + 1) << 1
}

/// One word of ownership state per virtual-node group.
///
/// The slot vector sits behind a read–write lock only so the table can
/// *grow* when the leader re-plans after a topology splice: every
/// ownership transition is still a single-word atomic performed under the
/// read guard (shared, uncontended in steady state), and existing slots
/// never move logically — a grown table extends the id space, it never
/// renumbers. `grow` takes the write guard for the duration of a `Vec`
/// extend, which excludes transitions only for that instant.
pub struct GroupTable {
    states: RwLock<Vec<AtomicUsize>>,
}

impl GroupTable {
    /// Creates a table of `groups` slots, all free.
    pub fn new(groups: usize) -> Self {
        GroupTable {
            states: RwLock::new((0..groups).map(|_| AtomicUsize::new(FREE)).collect()),
        }
    }

    /// Number of group slots.
    pub fn len(&self) -> usize {
        self.states.read().len()
    }

    /// Whether the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extends the table to at least `total` slots, all new slots free.
    /// Shrinking never happens: retired groups keep their slot (drained,
    /// unowned) so ids stay stable for the life of the run.
    pub fn grow(&self, total: usize) {
        let mut states = self.states.write();
        while states.len() < total {
            states.push(AtomicUsize::new(FREE));
        }
    }

    /// The worker currently owning `group`, if any.
    pub fn owner(&self, group: GroupId) -> Option<usize> {
        let s = self.states.read()[group].load(Ordering::Acquire);
        if s == FREE {
            None
        } else {
            Some((s >> 1) - 1)
        }
    }

    /// Whether `group`'s owner is currently executing a quantum on it.
    pub fn is_active(&self, group: GroupId) -> bool {
        self.states.read()[group].load(Ordering::Acquire) & 1 == 1
    }

    /// Claims a free group for `me`. Fails if the group is owned.
    pub fn try_claim(&self, group: GroupId, me: usize) -> bool {
        self.states.read()[group]
            .compare_exchange(FREE, owned_by(me), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Steals `group` from `victim` for `me`. Fails if the victim is not
    /// the (inactive) owner — in particular while the victim is mid-quantum
    /// on the group, so a steal never interrupts an execution.
    pub fn try_steal(&self, group: GroupId, victim: usize, me: usize) -> bool {
        victim != me
            && self.states.read()[group]
                .compare_exchange(
                    owned_by(victim),
                    owned_by(me),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
    }

    /// Marks the start of a quantum on `group` by its owner `me`. Fails if
    /// `me` no longer owns the group (it was stolen or handed off since the
    /// caller last looked) — the caller must then re-derive its owned set.
    pub fn begin(&self, group: GroupId, me: usize) -> bool {
        self.states.read()[group]
            .compare_exchange(
                owned_by(me),
                owned_by(me) | 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Marks the end of a quantum started with a successful
    /// [`GroupTable::begin`].
    ///
    /// # Panics
    ///
    /// Panics if `me` is not the active owner — that would mean two workers
    /// executed the group at once, which the protocol rules out.
    pub fn end(&self, group: GroupId, me: usize) {
        let prev = self.states.read()[group].swap(owned_by(me), Ordering::AcqRel);
        assert_eq!(
            prev,
            owned_by(me) | 1,
            "group {group} ended by non-active worker {me}"
        );
    }

    /// Releases an owned, inactive group back to the free pool (rebalance
    /// hand-off). Fails if `me` is not the inactive owner.
    pub fn release(&self, group: GroupId, me: usize) -> bool {
        self.states.read()[group]
            .compare_exchange(owned_by(me), FREE, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The groups currently owned by `me`, in id order. A snapshot — other
    /// workers may steal concurrently, which [`GroupTable::begin`] detects.
    pub fn owned(&self, me: usize) -> Vec<GroupId> {
        let states = self.states.read();
        states
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                let v = s.load(Ordering::Acquire);
                v != FREE && (v >> 1) - 1 == me
            })
            .map(|(g, _)| g)
            .collect()
    }
}

/// A per-worker wake token: [`Parker::park`] consumes a pending token or
/// blocks until [`Parker::unpark`] (or the timeout); an unpark that races
/// ahead of the park is never lost. Built on the facade mutex + condvar so
/// it works identically under the model checker.
pub struct Parker {
    token: Mutex<bool>,
    cv: Condvar,
}

impl Default for Parker {
    fn default() -> Self {
        Self::new()
    }
}

impl Parker {
    /// Creates a parker with no pending token.
    pub fn new() -> Self {
        Parker {
            token: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a token is available or `timeout` elapses; consumes the
    /// token. Returns `true` if a token was consumed (an unpark happened
    /// before or during the wait), `false` on timeout.
    pub fn park(&self, timeout: Duration) -> bool {
        let mut token = self.token.lock();
        if !*token {
            let _ = self.cv.wait_for(&mut token, timeout);
        }
        let woken = *token;
        *token = false;
        woken
    }

    /// Deposits a wake token and wakes the parked worker, if any.
    pub fn unpark(&self) {
        let mut token = self.token.lock();
        *token = true;
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_steal_release_lifecycle() {
        let t = GroupTable::new(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.owner(0), None);
        assert!(t.try_claim(0, 3));
        assert_eq!(t.owner(0), Some(3));
        assert!(!t.try_claim(0, 1), "owned groups cannot be re-claimed");
        assert!(t.try_steal(0, 3, 1));
        assert_eq!(t.owner(0), Some(1));
        assert!(!t.try_steal(0, 3, 2), "stale victim fails");
        assert!(!t.try_steal(0, 1, 1), "self-steal rejected");
        assert!(t.release(0, 1));
        assert_eq!(t.owner(0), None);
        assert!(!t.release(0, 1));
        assert_eq!(t.owned(1), Vec::<GroupId>::new());
    }

    #[test]
    fn active_groups_resist_steal_and_release() {
        let t = GroupTable::new(1);
        assert!(t.try_claim(0, 0));
        assert!(!t.begin(0, 1), "only the owner can begin");
        assert!(t.begin(0, 0));
        assert!(t.is_active(0));
        assert!(!t.try_steal(0, 0, 1), "active group cannot be stolen");
        assert!(!t.release(0, 0), "active group cannot be released");
        assert!(!t.begin(0, 0), "no nested begin");
        t.end(0, 0);
        assert!(!t.is_active(0));
        assert_eq!(t.owner(0), Some(0));
        assert_eq!(t.owned(0), vec![0]);
    }

    #[test]
    fn grow_extends_without_disturbing_existing_slots() {
        let t = GroupTable::new(1);
        assert!(t.try_claim(0, 0));
        assert!(t.begin(0, 0));
        t.grow(3);
        assert_eq!(t.len(), 3);
        assert!(t.is_active(0), "grow must not disturb in-flight state");
        t.end(0, 0);
        assert_eq!(t.owner(0), Some(0));
        assert_eq!(t.owner(1), None);
        assert!(t.try_claim(2, 1));
        t.grow(2); // never shrinks
        assert_eq!(t.len(), 3);
        assert_eq!(t.owned(1), vec![2]);
    }

    #[test]
    #[should_panic(expected = "non-active")]
    fn end_without_begin_panics() {
        let t = GroupTable::new(1);
        assert!(t.try_claim(0, 0));
        t.end(0, 0);
    }

    #[test]
    fn parker_token_is_not_lost_when_unpark_comes_first() {
        let p = Parker::new();
        p.unpark();
        assert!(p.park(Duration::from_secs(0)), "pending token consumed");
        assert!(
            !p.park(Duration::from_millis(1)),
            "second park times out: token was consumed"
        );
    }
}
