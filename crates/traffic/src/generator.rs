//! The synthetic FSP loop-detector generator.
//!
//! Models a ten-mile section of I-880 with 10 detectors per mile and five
//! lanes per direction. Per (detector, lane, direction) vehicles arrive with
//! exponential headways whose mean follows a diurnal load profile; speeds
//! follow the fundamental diagram qualitatively: they drop with local load
//! and collapse inside *incidents*, which appear stochastically, persist for
//! a configurable duration, and slow down traffic for several sections
//! upstream of the blocked section (a congestion wave).

use crate::{Direction, LoopReading, HOV_LANE};
use pipes_time::Timestamp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct FspConfig {
    /// RNG seed (generators are fully deterministic per seed).
    pub seed: u64,
    /// Simulated duration in seconds.
    pub duration_secs: u64,
    /// Number of highway sections (miles); 10 detectors each.
    pub sections: u16,
    /// Mean vehicles per lane per detector per minute at off-peak load.
    pub base_vehicles_per_min: f64,
    /// Multiplier applied at the peak of rush hour.
    pub rush_hour_factor: f64,
    /// Expected number of incidents per simulated hour.
    pub incidents_per_hour: f64,
    /// Incident duration in seconds.
    pub incident_duration_secs: u64,
    /// Free-flow speed in mph.
    pub free_flow_mph: f64,
}

impl Default for FspConfig {
    fn default() -> Self {
        FspConfig {
            seed: 0xF5B,
            duration_secs: 3600,
            sections: 10,
            base_vehicles_per_min: 8.0,
            rush_hour_factor: 3.0,
            incidents_per_hour: 4.0,
            incident_duration_secs: 900,
            free_flow_mph: 65.0,
        }
    }
}

impl FspConfig {
    /// Rough expected stream rate in readings per simulated second,
    /// averaged over the diurnal profile (used as a catalog rate hint).
    pub fn expected_rate_per_sec(&self) -> f64 {
        let lanes = 5.0;
        let detectors = self.sections as f64 * 10.0;
        let directions = 2.0;
        let mid_load = (1.0 + self.rush_hour_factor) / 2.0;
        self.base_vehicles_per_min / 60.0 * lanes * detectors * directions * mid_load
    }
}

/// A scheduled incident: traffic near `section` (travelling `direction`)
/// collapses during `[start, end)`.
#[derive(Clone, Debug)]
struct Incident {
    start_ms: u64,
    end_ms: u64,
    section: u16,
    direction: Direction,
}

#[derive(PartialEq)]
struct Arrival {
    at_ms: u64,
    detector: u16,
    lane: u8,
    direction: Direction,
}

impl Eq for Arrival {}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by time.
        other
            .at_ms
            .cmp(&self.at_ms)
            .then_with(|| other.detector.cmp(&self.detector))
            .then_with(|| other.lane.cmp(&self.lane))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic synthetic FSP stream generator.
pub struct FspGenerator {
    config: FspConfig,
    rng: SmallRng,
    heap: BinaryHeap<Arrival>,
    incidents: Vec<Incident>,
    horizon_ms: u64,
}

impl FspGenerator {
    /// Creates a generator; the first readings are scheduled immediately.
    pub fn new(config: FspConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let horizon_ms = config.duration_secs * 1000;

        // Pre-draw the incident schedule.
        let expected = config.incidents_per_hour * config.duration_secs as f64 / 3600.0;
        let count = sample_poissonish(&mut rng, expected);
        let mut incidents = Vec::with_capacity(count);
        for _ in 0..count {
            let start_ms = rng.gen_range(0..horizon_ms.max(1));
            incidents.push(Incident {
                start_ms,
                end_ms: start_ms + config.incident_duration_secs * 1000,
                section: rng.gen_range(0..config.sections),
                direction: if rng.gen_bool(0.5) {
                    Direction::Oakland
                } else {
                    Direction::SanJose
                },
            });
        }

        let mut gen = FspGenerator {
            config,
            rng,
            heap: BinaryHeap::new(),
            incidents,
            horizon_ms,
        };
        // Seed one pending arrival per (detector, lane, direction).
        for direction in [Direction::Oakland, Direction::SanJose] {
            for detector in 0..gen.config.sections * 10 {
                for lane in 0..5 {
                    let first = gen.draw_headway_ms(0, detector, direction, lane);
                    gen.heap.push(Arrival {
                        at_ms: first,
                        detector,
                        lane,
                        direction,
                    });
                }
            }
        }
        gen
    }

    /// The scheduled incidents (for test oracles and experiment reports).
    pub fn incident_schedule(&self) -> Vec<(Timestamp, Timestamp, u16, Direction)> {
        self.incidents
            .iter()
            .map(|i| {
                (
                    Timestamp::new(i.start_ms),
                    Timestamp::new(i.end_ms),
                    i.section,
                    i.direction,
                )
            })
            .collect()
    }

    /// Diurnal load multiplier in `[1, rush_hour_factor]`: two rush-hour
    /// peaks per simulated "day" (scaled onto the configured duration).
    fn load_factor(&self, now_ms: u64) -> f64 {
        let phase = now_ms as f64 / self.horizon_ms.max(1) as f64; // 0..1
        let wave = ((phase * std::f64::consts::TAU * 2.0).sin() + 1.0) / 2.0; // two peaks
        1.0 + (self.config.rush_hour_factor - 1.0) * wave
    }

    /// Whether `(section, direction)` is inside an incident's congestion
    /// zone at `now`: the incident section itself plus three sections
    /// upstream (upstream means *behind* the blockage in driving direction).
    fn congestion_severity(&self, now_ms: u64, section: u16, direction: Direction) -> f64 {
        let mut worst: f64 = 0.0;
        for inc in &self.incidents {
            if inc.direction != direction || now_ms < inc.start_ms || now_ms >= inc.end_ms {
                continue;
            }
            let distance = match direction {
                // Oakland-bound drives toward higher sections: upstream is
                // below the incident section.
                Direction::Oakland => {
                    if section > inc.section {
                        continue;
                    }
                    inc.section - section
                }
                Direction::SanJose => {
                    if section < inc.section {
                        continue;
                    }
                    section - inc.section
                }
            };
            if distance <= 3 {
                // Severity 1.0 at the incident, fading upstream.
                worst = worst.max(1.0 - distance as f64 * 0.25);
            }
        }
        worst
    }

    fn draw_headway_ms(
        &mut self,
        now_ms: u64,
        _detector: u16,
        _direction: Direction,
        lane: u8,
    ) -> u64 {
        let mut per_min = self.config.base_vehicles_per_min * self.load_factor(now_ms);
        if lane == HOV_LANE {
            per_min *= 0.5; // the HOV lane carries less volume
        }
        let mean_ms = 60_000.0 / per_min.max(0.01);
        // Exponential headway via inverse transform.
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        now_ms + (-u.ln() * mean_ms).clamp(1.0, 600_000.0) as u64
    }

    fn draw_speed(&mut self, now_ms: u64, section: u16, direction: Direction, lane: u8) -> f64 {
        let severity = self.congestion_severity(now_ms, section, direction);
        let load =
            (self.load_factor(now_ms) - 1.0) / (self.config.rush_hour_factor - 1.0).max(1e-9); // 0..1
        let mut mean = self.config.free_flow_mph;
        mean -= load * 12.0; // rush hour slows everyone a bit
        mean -= severity * (self.config.free_flow_mph - 12.0); // incidents collapse speed
        if lane == HOV_LANE && severity < 0.5 {
            mean += 5.0; // HOV lane flows better outside heavy congestion
        }
        let noise: f64 = self.rng.gen_range(-6.0..6.0);
        (mean + noise).clamp(3.0, 90.0)
    }

    fn draw_length(&mut self) -> f64 {
        // ~88% passenger cars, 12% trucks.
        if self.rng.gen_bool(0.12) {
            self.rng.gen_range(35.0..70.0)
        } else {
            self.rng.gen_range(12.0..20.0)
        }
    }

    /// Produces the next reading in timestamp order, or `None` at the end
    /// of the simulated duration.
    pub fn next_reading(&mut self) -> Option<LoopReading> {
        loop {
            let arrival = self.heap.pop()?;
            if arrival.at_ms >= self.horizon_ms {
                // This (detector, lane) is done; keep draining others.
                if self.heap.is_empty() {
                    return None;
                }
                continue;
            }
            // Schedule the follower.
            let next = self.draw_headway_ms(
                arrival.at_ms,
                arrival.detector,
                arrival.direction,
                arrival.lane,
            );
            self.heap.push(Arrival {
                at_ms: next,
                detector: arrival.detector,
                lane: arrival.lane,
                direction: arrival.direction,
            });

            let section = arrival.detector / 10;
            let speed = self.draw_speed(arrival.at_ms, section, arrival.direction, arrival.lane);
            let length = self.draw_length();
            return Some(LoopReading {
                detector: arrival.detector,
                section,
                lane: arrival.lane,
                direction: arrival.direction,
                ts: Timestamp::new(arrival.at_ms),
                speed,
                length,
            });
        }
    }
}

impl Iterator for FspGenerator {
    type Item = LoopReading;
    fn next(&mut self) -> Option<LoopReading> {
        self.next_reading()
    }
}

/// Small-mean Poisson sample (Knuth's method), adequate for incident counts.
fn sample_poissonish(rng: &mut SmallRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l || k > 1000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(secs: u64) -> FspConfig {
        FspConfig {
            duration_secs: secs,
            ..Default::default()
        }
    }

    #[test]
    fn timestamps_are_monotone_and_bounded() {
        let gen = FspGenerator::new(config(30));
        let mut last = Timestamp::ZERO;
        let mut n = 0;
        for r in gen {
            assert!(r.ts >= last, "timestamps must be non-decreasing");
            assert!(r.ts.ticks() < 30_000);
            last = r.ts;
            n += 1;
        }
        assert!(n > 100, "expected steady traffic, got {n} readings");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<LoopReading> = FspGenerator::new(config(10)).collect();
        let b: Vec<LoopReading> = FspGenerator::new(config(10)).collect();
        assert_eq!(a, b);
        let c: Vec<LoopReading> = FspGenerator::new(FspConfig {
            seed: 99,
            ..config(10)
        })
        .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn schema_domains_hold() {
        for r in FspGenerator::new(config(20)).take(2000) {
            assert!(r.detector < 100);
            assert_eq!(r.section, r.detector / 10);
            assert!(r.lane < 5);
            assert!((3.0..=90.0).contains(&r.speed));
            assert!((12.0..=70.0).contains(&r.length));
        }
    }

    #[test]
    fn incidents_slow_traffic_at_their_section() {
        // Force one long incident by using a high rate and checking the
        // schedule-driven oracle against observed speeds.
        let cfg = FspConfig {
            seed: 7,
            duration_secs: 1800,
            incidents_per_hour: 8.0,
            incident_duration_secs: 900,
            ..Default::default()
        };
        let gen = FspGenerator::new(cfg.clone());
        let schedule = gen.incident_schedule();
        if schedule.is_empty() {
            // Statistically unlikely; other seeds cover the behaviour.
            return;
        }
        let (start, end, section, direction) = schedule[0];
        let mut inside: Vec<f64> = Vec::new();
        let mut outside: Vec<f64> = Vec::new();
        for r in gen {
            if r.section == section && r.direction == direction {
                if r.ts >= start && r.ts < end {
                    inside.push(r.speed);
                } else {
                    outside.push(r.speed);
                }
            }
        }
        if inside.len() < 10 || outside.len() < 10 {
            return;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&inside) < mean(&outside) - 15.0,
            "incident speeds {:.1} should be well below normal {:.1}",
            mean(&inside),
            mean(&outside)
        );
    }

    #[test]
    fn rush_hour_increases_volume() {
        // Compare arrivals in a low-load phase vs the peak phase.
        let cfg = FspConfig {
            duration_secs: 1000,
            incidents_per_hour: 0.0,
            ..Default::default()
        };
        let readings: Vec<LoopReading> = FspGenerator::new(cfg).collect();
        // load_factor = 1 + k*(sin(2*TAU*phase)+1)/2 peaks at phase 0.125
        // and bottoms out at phase 0.375 (duration 1000s = 1e6 ms).
        let count_in = |lo: u64, hi: u64| {
            readings
                .iter()
                .filter(|r| r.ts.ticks() >= lo && r.ts.ticks() < hi)
                .count()
        };
        let trough = count_in(350_000, 400_000);
        let peak = count_in(100_000, 150_000);
        assert!(
            peak as f64 > trough as f64 * 1.5,
            "peak {peak} should far exceed trough {trough}"
        );
    }

    #[test]
    fn hov_lane_is_lighter_but_faster() {
        let cfg = FspConfig {
            duration_secs: 600,
            incidents_per_hour: 0.0,
            ..Default::default()
        };
        let readings: Vec<LoopReading> = FspGenerator::new(cfg).collect();
        let hov: Vec<&LoopReading> = readings.iter().filter(|r| r.lane == HOV_LANE).collect();
        let rest: Vec<&LoopReading> = readings.iter().filter(|r| r.lane != HOV_LANE).collect();
        assert!(hov.len() * 4 < rest.len(), "HOV volume share too high");
        let mean = |v: &[&LoopReading]| v.iter().map(|r| r.speed).sum::<f64>() / v.len() as f64;
        assert!(mean(&hov) > mean(&rest), "HOV lane should be faster");
    }
}
