//! The continuous queries of the traffic scenario (Linear-Road style).

use pipes_optimizer::{AggFunc, AggSpec, BinOp, Catalog, Expr, LogicalPlan, WindowSpec};
use pipes_time::Duration;

/// Q1 (the paper's example): *"What has been the average speed of HOVs
/// driving in direction Oakland within the last hour?"* — as CQL.
pub fn q1_hov_avg_speed_cql() -> &'static str {
    "SELECT AVG(speed) AS avg_hov_speed \
     FROM traffic [RANGE 1 HOURS] \
     WHERE lane = 4 AND direction = 0 \
     EVERY 5 MINUTES"
}

/// Q1 as a hand-built logical plan (identical semantics; used to verify the
/// CQL front end against direct algebra construction).
pub fn q1_hov_avg_speed_plan() -> LogicalPlan {
    LogicalPlan::Every {
        period: Duration::from_mins(5),
        input: Box::new(LogicalPlan::Project {
            exprs: vec![(Expr::col("AVG(speed)"), "avg_hov_speed".into())],
            input: Box::new(LogicalPlan::Aggregate {
                group_by: vec![],
                aggs: vec![(
                    AggSpec {
                        func: AggFunc::Avg,
                        arg: Expr::col("speed"),
                    },
                    "AVG(speed)".into(),
                )],
                input: Box::new(LogicalPlan::Filter {
                    predicate: Expr::col("lane")
                        .eq(Expr::lit(4i64))
                        .and(Expr::col("direction").eq(Expr::lit(0i64))),
                    input: Box::new(LogicalPlan::Window {
                        spec: WindowSpec::Time(Duration::from_hours(1)),
                        input: Box::new(LogicalPlan::Stream {
                            name: "traffic".into(),
                            alias: None,
                        }),
                    }),
                }),
            }),
        }),
    }
}

/// Q2: *"At which sections of the highway is the average speed below a
/// certain threshold constantly for 15 minutes?"* — an incident indicator.
///
/// Planned as: per-section 1-minute average speeds, sampled every minute;
/// over each section's last 15 samples, take the *maximum* of those
/// averages; a section where even the maximum 1-minute average is below the
/// threshold has been slow *constantly*.
pub fn q2_persistent_slowdown_plan(direction: i64, threshold_mph: f64) -> LogicalPlan {
    // Stage 1: (section, avg_speed) every minute over a 1-minute window.
    let minute_avgs = LogicalPlan::Every {
        period: Duration::from_mins(1),
        input: Box::new(LogicalPlan::Aggregate {
            group_by: vec![(Expr::col("section"), "section".into())],
            aggs: vec![(
                AggSpec {
                    func: AggFunc::Avg,
                    arg: Expr::col("speed"),
                },
                "avg_speed".into(),
            )],
            input: Box::new(LogicalPlan::Filter {
                predicate: Expr::col("direction").eq(Expr::lit(direction)),
                input: Box::new(LogicalPlan::Window {
                    spec: WindowSpec::Time(Duration::from_mins(1)),
                    input: Box::new(LogicalPlan::Stream {
                        name: "traffic".into(),
                        alias: None,
                    }),
                }),
            }),
        }),
    };

    // Stage 2: per section, the max of the last 15 one-minute averages;
    // report sections whose max stays below the threshold.
    LogicalPlan::Filter {
        predicate: Expr::bin(
            Expr::col("worst_minute"),
            BinOp::Lt,
            Expr::lit(threshold_mph),
        ),
        input: Box::new(LogicalPlan::Project {
            exprs: vec![
                (Expr::col("section"), "section".into()),
                (Expr::col("MAX(avg_speed)"), "worst_minute".into()),
            ],
            input: Box::new(LogicalPlan::Aggregate {
                group_by: vec![(Expr::col("section"), "section".into())],
                aggs: vec![(
                    AggSpec {
                        func: AggFunc::Max,
                        arg: Expr::col("avg_speed"),
                    },
                    "MAX(avg_speed)".into(),
                )],
                input: Box::new(LogicalPlan::Window {
                    spec: WindowSpec::PartitionRows(vec!["section".into()], 15),
                    input: Box::new(minute_avgs),
                }),
            }),
        }),
    }
}

/// Q3: per-section vehicle counts over a 5-minute window (flow monitoring),
/// as CQL.
pub fn q3_section_flow_cql() -> &'static str {
    "SELECT section, COUNT(*) AS vehicles, AVG(speed) AS avg_speed \
     FROM traffic [RANGE 5 MINUTES] \
     GROUP BY section \
     EVERY 1 MINUTES"
}

/// Q4: truck share on the highway (length > 30 ft) over the last 10
/// minutes, as CQL.
pub fn q4_truck_share_cql() -> &'static str {
    "SELECT COUNT(*) AS trucks \
     FROM traffic [RANGE 10 MINUTES] \
     WHERE length > 30.0 \
     EVERY 2 MINUTES"
}

/// Validates that every canned CQL query parses and plans against a catalog
/// with the traffic stream registered.
pub fn validate_all(catalog: &Catalog) -> Result<Vec<LogicalPlan>, String> {
    let mut plans = Vec::new();
    for sql in [
        q1_hov_avg_speed_cql(),
        q3_section_flow_cql(),
        q4_truck_share_cql(),
    ] {
        plans.push(pipes_cql::compile_cql(sql, catalog)?);
    }
    plans.push(q2_persistent_slowdown_plan(0, 40.0));
    plans.push(q1_hov_avg_speed_plan());
    for p in &plans {
        pipes_optimizer::compile::output_schema(p, catalog)?;
    }
    Ok(plans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::FspConfig;
    use pipes_graph::io::CollectSink;
    use pipes_graph::QueryGraph;
    use pipes_optimizer::{Optimizer, Tuple};

    fn catalog(secs: u64) -> Catalog {
        // Scaled-down highway: windowed interval aggregation costs
        // O(live elements) per insert, so tests keep rate × window modest.
        let mut cat = Catalog::new();
        crate::register(
            &mut cat,
            FspConfig {
                duration_secs: secs,
                sections: 4,
                base_vehicles_per_min: 1.5,
                ..Default::default()
            },
        );
        cat
    }

    fn run_plan(plan: &LogicalPlan, cat: &Catalog) -> Vec<Tuple> {
        let graph = QueryGraph::new();
        let mut opt = Optimizer::new();
        let report = opt.install(plan, &graph, cat).unwrap();
        let (sink, buf) = CollectSink::new();
        graph.add_sink("out", sink, &report.handle);
        graph.run_to_completion(256);
        let r = buf.lock().iter().map(|e| e.payload.clone()).collect();
        r
    }

    #[test]
    fn all_queries_plan() {
        let cat = catalog(60);
        let plans = validate_all(&cat).unwrap();
        assert_eq!(plans.len(), 5);
    }

    #[test]
    fn q1_cql_equals_handbuilt_plan_schema() {
        let cat = catalog(60);
        let from_cql = pipes_cql::compile_cql(q1_hov_avg_speed_cql(), &cat).unwrap();
        let handbuilt = q1_hov_avg_speed_plan();
        let s1 = pipes_optimizer::compile::output_schema(&from_cql, &cat).unwrap();
        let s2 = pipes_optimizer::compile::output_schema(&handbuilt, &cat).unwrap();
        assert_eq!(s1.columns(), s2.columns());
    }

    #[test]
    fn q1_produces_plausible_speeds() {
        // 10 simulated minutes; Q1 with a 1-minute EVERY to get samples.
        let cat = catalog(600);
        let plan = pipes_cql::compile_cql(
            "SELECT AVG(speed) AS avg_hov_speed \
             FROM traffic [RANGE 5 MINUTES] \
             WHERE lane = 4 AND direction = 0 \
             EVERY 1 MINUTES",
            &cat,
        )
        .unwrap();
        let out = run_plan(&plan, &cat);
        assert!(!out.is_empty());
        for t in &out {
            let v = t[0].as_f64().unwrap();
            assert!((3.0..=90.0).contains(&v), "implausible avg speed {v}");
        }
    }

    #[test]
    fn q3_counts_every_section() {
        let cat = catalog(300);
        let plan = pipes_cql::compile_cql(q3_section_flow_cql(), &cat).unwrap();
        let out = run_plan(&plan, &cat);
        let sections: std::collections::HashSet<i64> =
            out.iter().filter_map(|t| t[0].as_i64()).collect();
        assert!(
            sections.len() >= 3,
            "expected most sections reporting, got {sections:?}"
        );
        for t in &out {
            assert!(t[1].as_i64().unwrap() > 0);
        }
    }

    #[test]
    fn q2_detects_seeded_incident() {
        // Strong incident pressure and a long horizon so that at least one
        // incident overlaps the measurement window.
        let cfg = FspConfig {
            seed: 21,
            duration_secs: 3600,
            sections: 4,
            base_vehicles_per_min: 2.0,
            incidents_per_hour: 6.0,
            incident_duration_secs: 1500,
            ..Default::default()
        };
        let gen = crate::generator::FspGenerator::new(cfg.clone());
        let schedule = gen.incident_schedule();
        let mut cat = Catalog::new();
        crate::register(&mut cat, cfg);

        let oakland: Vec<u16> = schedule
            .iter()
            .filter(|(s, e, _, d)| {
                *d == crate::Direction::Oakland
                    // long enough to produce 15 slow minutes
                    && e.ticks().saturating_sub(s.ticks()) >= 1_000_000
            })
            .map(|(_, _, sec, _)| *sec)
            .collect();

        let out = run_plan(&q2_persistent_slowdown_plan(0, 40.0), &cat);
        let flagged: std::collections::HashSet<i64> =
            out.iter().filter_map(|t| t[0].as_i64()).collect();

        if oakland.is_empty() {
            // No qualifying incident for this seed: nothing must be flagged
            // persistently... mild congestion may still trip the detector,
            // so only check the query runs.
            return;
        }
        assert!(
            oakland.iter().any(|s| flagged.contains(&(*s as i64))),
            "expected one of incident sections {oakland:?} among flagged {flagged:?}"
        );
    }
}
