//! # pipes-traffic
//!
//! The traffic-management application scenario of the PIPES demonstration.
//!
//! The original demo replays loop-detector data collected by the Freeway
//! Service Patrol (FSP) project on highway I-880 near Hayward, California:
//! ~100 loop detectors over a ten-mile section, five lanes per direction
//! with a dedicated high-occupancy-vehicle (HOV) lane, each record carrying
//! detector position, lane, timestamp, vehicle speed and length.
//!
//! The field data itself is not redistributable, so this crate provides a
//! **synthetic FSP generator** with the same schema, realistic rates and the
//! phenomena the demo queries look for: rush-hour load swings, stochastic
//! incidents, and congestion waves propagating upstream (see `DESIGN.md`,
//! substitutions). On top of it, [`queries`] provides the Linear-Road-style
//! continuous queries of the paper — average HOV speed over the last hour,
//! and persistent-slowdown (incident) detection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod queries;

use pipes_optimizer::{Catalog, Schema, Tuple, Value};
use pipes_time::{Element, Timestamp};

/// Direction of travel on I-880.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Northbound, towards Oakland.
    Oakland,
    /// Southbound, towards San José.
    SanJose,
}

impl Direction {
    /// Stable integer encoding used in tuples (0 = Oakland, 1 = San José).
    pub fn code(&self) -> i64 {
        match self {
            Direction::Oakland => 0,
            Direction::SanJose => 1,
        }
    }
}

/// One loop-detector measurement: a vehicle passing a sensor.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopReading {
    /// Detector id, 0..100 (10 per mile-long section).
    pub detector: u16,
    /// Highway section (mile), `detector / 10`.
    pub section: u16,
    /// Lane 0..5; lane 4 is the HOV lane.
    pub lane: u8,
    /// Direction of travel.
    pub direction: Direction,
    /// Measurement time (milliseconds since start).
    pub ts: Timestamp,
    /// Vehicle speed in miles per hour.
    pub speed: f64,
    /// Vehicle length in feet.
    pub length: f64,
}

/// Lane index of the HOV lane.
pub const HOV_LANE: u8 = 4;

impl LoopReading {
    /// Converts the reading to a relational tuple matching [`schema`].
    pub fn to_tuple(&self) -> Tuple {
        vec![
            Value::Int(self.detector as i64),
            Value::Int(self.section as i64),
            Value::Int(self.lane as i64),
            Value::Int(self.direction.code()),
            Value::Float(self.speed),
            Value::Float(self.length),
        ]
    }

    /// The reading as a timestamped stream element.
    pub fn to_element(&self) -> Element<Tuple> {
        Element::at(self.to_tuple(), self.ts)
    }
}

/// The relational schema of the traffic stream.
pub fn schema() -> Schema {
    Schema::of(&[
        "detector",
        "section",
        "lane",
        "direction",
        "speed",
        "length",
    ])
}

/// Registers the `traffic` stream in a catalog, backed by the synthetic FSP
/// generator with the given configuration.
pub fn register(catalog: &mut Catalog, config: generator::FspConfig) {
    catalog.add_stream(
        "traffic",
        schema(),
        config.expected_rate_per_sec() * 1000.0,
        Box::new(move || {
            let mut gen = generator::FspGenerator::new(config.clone());
            Box::new(pipes_graph::io::GenSource::new(move || {
                gen.next_reading().map(|r| r.to_element())
            }))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_matches_schema() {
        let r = LoopReading {
            detector: 42,
            section: 4,
            lane: HOV_LANE,
            direction: Direction::Oakland,
            ts: Timestamp::new(123),
            speed: 61.5,
            length: 15.0,
        };
        let t = r.to_tuple();
        assert_eq!(t.len(), schema().len());
        assert_eq!(t[0], Value::Int(42));
        assert_eq!(t[2], Value::Int(4));
        assert_eq!(t[3], Value::Int(0));
        assert_eq!(r.to_element().start(), Timestamp::new(123));
    }

    #[test]
    fn register_creates_usable_stream() {
        let mut cat = Catalog::new();
        register(
            &mut cat,
            generator::FspConfig {
                duration_secs: 5,
                ..Default::default()
            },
        );
        assert!(cat.has_stream("traffic"));
        let mut src = (cat.stream("traffic").unwrap().factory)();
        let mut out: Vec<pipes_time::Message<Tuple>> = Vec::new();
        while src.produce(512, &mut out) == pipes_graph::SourceStatus::Active {}
        let n = out.iter().filter(|m| m.is_element()).count();
        assert!(n > 50, "only {n} readings in 5 simulated seconds");
    }
}
