//! The query graph: nodes, subscriptions and a minimal executor.

use crate::edge::{Edge, EdgeId};
use crate::meta::{derive, MetaConfig, MetaSnapshot, RawNode};
use crate::node::{BinNode, OpNode, Runnable, SinkNode, SourceNode, StepReport};
use crate::operator::{BinaryOperator, NodeId, Operator, SinkOp, SourceOp};
use crate::outputs::{OutputPort, Outputs};
use pipes_meta::{NodeMeta, NodeStats};
use pipes_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use pipes_sync::{Arc, Mutex, RwLock};

/// The role a node plays in the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Produces data, consumes nothing.
    Source,
    /// Consumes and produces (a *pipe*).
    Operator,
    /// Consumes data, produces nothing.
    Sink,
}

/// A handle to a node's typed output, used to subscribe further consumers.
///
/// Handles are cheap to clone; holding one does not keep the stream alive or
/// consume from it — it merely names a publication point in the graph.
pub struct StreamHandle<T> {
    pub(crate) node: NodeId,
    pub(crate) outputs: Arc<Outputs<T>>,
}

impl<T> Clone for StreamHandle<T> {
    fn clone(&self) -> Self {
        StreamHandle {
            node: self.node,
            outputs: Arc::clone(&self.outputs),
        }
    }
}

impl<T> StreamHandle<T> {
    /// The producing node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

impl<T> std::fmt::Debug for StreamHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHandle")
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

pub(crate) struct NodeCell {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    pub(crate) runnable: Mutex<Box<dyn Runnable>>,
    pub(crate) stats: Arc<NodeStats>,
    pub(crate) meta: Arc<NodeMeta>,
    pub(crate) out_port: Option<Arc<dyn OutputPort>>,
    /// (upstream node, edge id) for every input subscription.
    pub(crate) incoming: Mutex<Vec<(NodeId, EdgeId)>>,
    pub(crate) removed: AtomicBool,
}

/// Static description of a node, for topology-aware strategies and plan
/// rendering.
#[derive(Clone, Debug)]
pub struct NodeInfo {
    /// The node id.
    pub id: NodeId,
    /// Display name given at registration.
    pub name: String,
    /// Node role.
    pub kind: NodeKind,
    /// Ids of the nodes this node subscribes to.
    pub upstream: Vec<NodeId>,
    /// Whether the node has been removed from the graph.
    pub removed: bool,
}

/// A directed acyclic graph of sources, operators and sinks, built through
/// the publish–subscribe architecture of PIPES.
///
/// All methods take `&self`: nodes can be added, subscribed and unsubscribed
/// while executors are stepping the graph from other threads. This is the
/// foundation for multi-query optimization, which splices new queries into
/// the *running* graph.
/// Callback invoked after a productive scheduling quantum with the id of the
/// producing node (see [`QueryGraph::set_wake_hook`]).
pub type WakeHook = dyn Fn(NodeId) + Send + Sync;

/// A directed acyclic graph of sources, operators and sinks, built through
/// the publish–subscribe architecture of PIPES.
///
/// All methods take `&self`: nodes can be added, subscribed and unsubscribed
/// while executors are stepping the graph from other threads. This is the
/// foundation for multi-query optimization, which splices new queries into
/// the *running* graph.
pub struct QueryGraph {
    nodes: RwLock<Vec<Arc<NodeCell>>>,
    pub(crate) seq: Arc<AtomicU64>,
    next_edge: AtomicU64,
    /// Monotone topology epoch, bumped on every node add and retire
    /// (seqlock-style publication, like `NodeMeta`). Schedulers poll it to
    /// detect splices without holding the `nodes` lock.
    topology: AtomicU64,
    wake_hook: RwLock<Option<Arc<WakeHook>>>,
    has_wake_hook: AtomicBool,
    /// Registered keyed-parallel (shuffle) groups; see [`crate::shuffle`].
    pub(crate) shuffle: crate::shuffle::ShuffleRegistry,
}

impl Default for QueryGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        QueryGraph {
            nodes: RwLock::new(Vec::new()),
            seq: Arc::new(AtomicU64::new(1)),
            next_edge: AtomicU64::new(1),
            topology: AtomicU64::new(1),
            wake_hook: RwLock::new(None),
            has_wake_hook: AtomicBool::new(false),
            shuffle: crate::shuffle::ShuffleRegistry::default(),
        }
    }

    pub(crate) fn push_node(&self, cell: NodeCell) -> NodeId {
        let id = {
            let mut nodes = self.nodes.write();
            nodes.push(Arc::new(cell));
            nodes.len() - 1
        };
        // ordering: the epoch uses Release/Acquire so an observer of the new
        // value also observes the node published under the write lock above
        // (the lock release alone does not order against lock-free epoch
        // readers).
        let epoch = self.topology.fetch_add(1, Ordering::Release) + 1;
        pipes_trace::instant(pipes_trace::names::GRAPH_SPLICE, [id as u64, epoch, 0]);
        id
    }

    pub(crate) fn cell(&self, id: NodeId) -> Arc<NodeCell> {
        Arc::clone(&self.nodes.read()[id])
    }

    pub(crate) fn new_edge<T>(&self) -> Arc<Edge<T>> {
        // ordering: Relaxed — unique-id allocation, nothing else is
        // published through this counter.
        let id = self.next_edge.fetch_add(1, Ordering::Relaxed);
        Arc::new(Edge::new(id))
    }

    /// Registers a source node.
    pub fn add_source<S: SourceOp>(&self, name: &str, op: S) -> StreamHandle<S::Out>
    where
        S::Out: Send + Sync,
    {
        let outputs = Arc::new(Outputs::new(Arc::clone(&self.seq)));
        let node = SourceNode::new(op, Arc::clone(&outputs));
        let id = self.push_node(NodeCell {
            name: name.to_string(),
            kind: NodeKind::Source,
            runnable: Mutex::new(Box::new(node)),
            stats: Arc::new(NodeStats::new(name)),
            meta: Arc::new(NodeMeta::new()),
            out_port: Some(Arc::clone(&outputs) as Arc<dyn OutputPort>),
            incoming: Mutex::new(Vec::new()),
            removed: AtomicBool::new(false),
        });
        StreamHandle { node: id, outputs }
    }

    /// Registers a unary operator subscribed to `input`.
    pub fn add_unary<O: Operator>(
        &self,
        name: &str,
        op: O,
        input: &StreamHandle<O::In>,
    ) -> StreamHandle<O::Out>
    where
        O::In: Sync,
        O::Out: Send + Sync,
    {
        self.add_nary(name, op, std::slice::from_ref(input))
    }

    /// Registers an n-ary operator subscribed to all `inputs` (one port per
    /// input, in order).
    pub fn add_nary<O: Operator>(
        &self,
        name: &str,
        op: O,
        inputs: &[StreamHandle<O::In>],
    ) -> StreamHandle<O::Out>
    where
        O::In: Sync,
        O::Out: Send + Sync,
    {
        assert!(!inputs.is_empty(), "operator needs at least one input");
        let outputs = Arc::new(Outputs::new(Arc::clone(&self.seq)));
        let mut edges = Vec::with_capacity(inputs.len());
        let mut incoming = Vec::with_capacity(inputs.len());
        for input in inputs {
            let edge = self.new_edge::<O::In>();
            incoming.push((input.node, edge.id()));
            input.outputs.subscribe(Arc::clone(&edge));
            edges.push(edge);
        }
        let node = OpNode::new(op, edges, Arc::clone(&outputs));
        let id = self.push_node(NodeCell {
            name: name.to_string(),
            kind: NodeKind::Operator,
            runnable: Mutex::new(Box::new(node)),
            stats: Arc::new(NodeStats::new(name)),
            meta: Arc::new(NodeMeta::new()),
            out_port: Some(Arc::clone(&outputs) as Arc<dyn OutputPort>),
            incoming: Mutex::new(incoming),
            removed: AtomicBool::new(false),
        });
        self.refresh_subscriber_counts(inputs.iter().map(|i| i.node));
        StreamHandle { node: id, outputs }
    }

    /// Registers a binary operator subscribed to `left` and `right`.
    pub fn add_binary<B: BinaryOperator>(
        &self,
        name: &str,
        op: B,
        left: &StreamHandle<B::Left>,
        right: &StreamHandle<B::Right>,
    ) -> StreamHandle<B::Out>
    where
        B::Left: Sync,
        B::Right: Sync,
        B::Out: Send + Sync,
    {
        let outputs = Arc::new(Outputs::new(Arc::clone(&self.seq)));
        let le = self.new_edge::<B::Left>();
        let re = self.new_edge::<B::Right>();
        let incoming = vec![(left.node, le.id()), (right.node, re.id())];
        left.outputs.subscribe(Arc::clone(&le));
        right.outputs.subscribe(Arc::clone(&re));
        let node = BinNode::new(op, le, re, Arc::clone(&outputs));
        let id = self.push_node(NodeCell {
            name: name.to_string(),
            kind: NodeKind::Operator,
            runnable: Mutex::new(Box::new(node)),
            stats: Arc::new(NodeStats::new(name)),
            meta: Arc::new(NodeMeta::new()),
            out_port: Some(Arc::clone(&outputs) as Arc<dyn OutputPort>),
            incoming: Mutex::new(incoming),
            removed: AtomicBool::new(false),
        });
        self.refresh_subscriber_counts([left.node, right.node]);
        StreamHandle { node: id, outputs }
    }

    /// Registers a sink subscribed to `input`. Returns the sink's node id.
    pub fn add_sink<K: SinkOp>(&self, name: &str, op: K, input: &StreamHandle<K::In>) -> NodeId
    where
        K::In: Sync,
    {
        self.add_sink_nary(name, op, std::slice::from_ref(input))
    }

    /// Registers a sink subscribed to all `inputs`.
    pub fn add_sink_nary<K: SinkOp>(
        &self,
        name: &str,
        op: K,
        inputs: &[StreamHandle<K::In>],
    ) -> NodeId
    where
        K::In: Sync,
    {
        assert!(!inputs.is_empty(), "sink needs at least one input");
        let mut edges = Vec::with_capacity(inputs.len());
        let mut incoming = Vec::with_capacity(inputs.len());
        for input in inputs {
            let edge = self.new_edge::<K::In>();
            incoming.push((input.node, edge.id()));
            input.outputs.subscribe(Arc::clone(&edge));
            edges.push(edge);
        }
        let node = SinkNode::new(op, edges);
        let id = self.push_node(NodeCell {
            name: name.to_string(),
            kind: NodeKind::Sink,
            runnable: Mutex::new(Box::new(node)),
            stats: Arc::new(NodeStats::new(name)),
            meta: Arc::new(NodeMeta::new()),
            out_port: None,
            incoming: Mutex::new(incoming),
            removed: AtomicBool::new(false),
        });
        self.refresh_subscriber_counts(inputs.iter().map(|i| i.node));
        id
    }

    pub(crate) fn refresh_subscriber_counts(&self, ids: impl IntoIterator<Item = NodeId>) {
        let nodes = self.nodes.read();
        for id in ids {
            let cell = &nodes[id];
            if let Some(port) = &cell.out_port {
                cell.stats.set_subscribers(port.subscriber_count());
            }
        }
    }

    /// Unsubscribes `node` from all its upstream publications and marks it
    /// removed. Downstream consumers of `node` receive no further data (the
    /// node stops being scheduled); remove them first for a clean teardown.
    pub fn remove_node(&self, node: NodeId) {
        let cell = self.cell(node);
        for (up, edge) in cell.incoming.lock().drain(..) {
            let up_cell = self.cell(up);
            if let Some(port) = &up_cell.out_port {
                port.detach(edge);
                up_cell.stats.set_subscribers(port.subscriber_count());
            }
        }
        // ordering: Relaxed — the flag is a scheduling filter; executors
        // tolerate stepping a node once more after removal (the runnable
        // lock serializes actual access), so no release fence is needed.
        cell.removed.store(true, Ordering::Relaxed);
        // ordering: Release — pairs with the Acquire in topology_epoch();
        // an observer of the new epoch re-scans and sees the removal flag
        // (or harmlessly steps the node once more, see above).
        let epoch = self.topology.fetch_add(1, Ordering::Release) + 1;
        pipes_trace::instant(pipes_trace::names::GRAPH_SPLICE, [node as u64, epoch, 1]);
    }

    /// The current topology epoch: a monotone counter bumped on every node
    /// add and every retirement. Executors poll this (lock-free) and
    /// re-plan when it moves; any mutation racing the poll leaves the epoch
    /// ahead of the value read, so the next poll re-triggers (seqlock-style
    /// conservatism — a replan can be observed late, never lost).
    pub fn topology_epoch(&self) -> u64 {
        // ordering: Acquire — pairs with the Release bumps in push_node()
        // and remove_node(); observing an epoch value orders the topology
        // published before the matching bump.
        self.topology.load(Ordering::Acquire)
    }

    /// Whether `node` has been removed.
    pub fn is_removed(&self, node: NodeId) -> bool {
        // ordering: Relaxed — advisory read; see remove_node().
        self.cell(node).removed.load(Ordering::Relaxed)
    }

    /// Number of consumers currently subscribed to `node`'s output
    /// (0 for sinks).
    pub fn subscriber_count(&self, node: NodeId) -> usize {
        self.cell(node)
            .out_port
            .as_ref()
            .map_or(0, |p| p.subscriber_count())
    }

    /// Number of registered nodes (including removed ones; ids are stable).
    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of the live (non-removed) nodes, in id order, snapshotted under
    /// one read-lock acquisition. Safe under concurrent mutation: a node
    /// spliced in after the snapshot simply does not appear (poll
    /// [`QueryGraph::topology_epoch`] to notice), and a node retired after
    /// the snapshot is still safe to step ([`QueryGraph::step_node`] is a
    /// no-op on removed nodes). Use this instead of `0..graph.len()` so
    /// id-holes left by retirement are never stepped or double-counted.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        let ids: Vec<NodeId> = {
            let nodes = self.nodes.read();
            nodes
                .iter()
                .enumerate()
                // ordering: Relaxed — advisory filter; see remove_node().
                .filter(|(_, cell)| !cell.removed.load(Ordering::Relaxed))
                .map(|(id, _)| id)
                .collect()
        };
        ids.into_iter()
    }

    /// Static node description.
    pub fn info(&self, id: NodeId) -> NodeInfo {
        let cell = self.cell(id);
        let upstream = cell.incoming.lock().iter().map(|(n, _)| *n).collect();
        NodeInfo {
            id,
            name: cell.name.clone(),
            kind: cell.kind,
            upstream,
            // ordering: Relaxed — advisory snapshot; see remove_node().
            removed: cell.removed.load(Ordering::Relaxed),
        }
    }

    /// Descriptions of all nodes.
    pub fn infos(&self) -> Vec<NodeInfo> {
        (0..self.len()).map(|id| self.info(id)).collect()
    }

    /// The role of a node, without cloning its name (cheap; safe in hot
    /// loops, unlike [`QueryGraph::info`]).
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.cell(id).kind
    }

    /// Appends the ids of the nodes `id` subscribes to onto `out`, one entry
    /// per input edge (an upstream node subscribed twice appears twice).
    /// Allocation-free for the caller across repeated queries.
    pub fn upstream_ids_into(&self, id: NodeId, out: &mut Vec<NodeId>) {
        out.extend(self.cell(id).incoming.lock().iter().map(|(n, _)| *n));
    }

    /// Ids of the nodes `id` subscribes to (see
    /// [`QueryGraph::upstream_ids_into`] for the allocation-free form).
    pub fn upstream_ids(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.upstream_ids_into(id, &mut out);
        out
    }

    /// Number of input edges of `id` (ports, counting duplicates).
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.cell(id).incoming.lock().len()
    }

    /// Whether `node` subscribes to `producer` on at least one port.
    /// Allocation-free, unlike checking [`NodeInfo::upstream`].
    pub fn subscribes_to(&self, node: NodeId, producer: NodeId) -> bool {
        self.cell(node)
            .incoming
            .lock()
            .iter()
            .any(|(up, _)| *up == producer)
    }

    /// Ids of the nodes currently subscribed to `id`'s output, deduplicated,
    /// in node-id order. O(nodes + edges) — intended for launch-time
    /// planning, not per-quantum scheduling.
    pub fn downstream_ids(&self, id: NodeId) -> Vec<NodeId> {
        let nodes = self.nodes.read();
        let mut out = Vec::new();
        for (candidate, cell) in nodes.iter().enumerate() {
            if cell.incoming.lock().iter().any(|(up, _)| *up == id) {
                out.push(candidate);
            }
        }
        out
    }

    /// Installs a hook invoked after every scheduling quantum in which a
    /// node produced output, with the producer's id. Executors use this to
    /// wake the specific worker owning the producer's consumers instead of
    /// relying on bounded-staleness park timeouts. Replaces any previous
    /// hook; the hook must not call back into the graph node it was invoked
    /// for (the runnable lock is not held, but re-entrant stepping from
    /// inside the hook would deadlock on `step_node`'s state).
    pub fn set_wake_hook(&self, hook: Arc<WakeHook>) {
        *self.wake_hook.write() = Some(hook);
        // ordering: the fast-path flag uses Release/Acquire so a reader that
        // observes `true` also observes the hook written above.
        self.has_wake_hook.store(true, Ordering::Release);
    }

    /// Removes the wake hook installed by [`QueryGraph::set_wake_hook`].
    pub fn clear_wake_hook(&self) {
        self.has_wake_hook.store(false, Ordering::Release);
        *self.wake_hook.write() = None;
    }

    /// The statistics handle of a node (register it with a
    /// [`pipes_meta::Monitor`] to observe the node at runtime).
    pub fn stats(&self, id: NodeId) -> Arc<NodeStats> {
        Arc::clone(&self.cell(id).stats)
    }

    /// The live metadata block of a node (fed by [`QueryGraph::step_node`];
    /// snapshot it directly, or take a graph-wide derived view with
    /// [`QueryGraph::meta_snapshot`]).
    pub fn meta(&self, id: NodeId) -> Arc<NodeMeta> {
        Arc::clone(&self.cell(id).meta)
    }

    /// Takes a consistent point-in-time view of every node's estimates:
    /// live seqlock snapshots for warm nodes, topology-derived values for
    /// cold ones (see [`crate::meta`] for the propagation semantics).
    /// Never blocks stepping threads — estimator reads are lock-free, and
    /// queue depths come from the always-on stats counters.
    pub fn meta_snapshot(&self, cfg: &MetaConfig) -> MetaSnapshot {
        let raw: Vec<RawNode> = {
            let nodes = self.nodes.read();
            nodes
                .iter()
                .map(|cell| {
                    let stats = cell.stats.snapshot();
                    RawNode {
                        name: cell.name.clone(),
                        kind: cell.kind,
                        // ordering: Relaxed — advisory snapshot; see
                        // remove_node().
                        removed: cell.removed.load(Ordering::Relaxed),
                        upstream: cell.incoming.lock().iter().map(|(n, _)| *n).collect(),
                        queue_len: stats.queue_len,
                        state_bytes: stats.state_bytes,
                        meta: cell.meta.snapshot(),
                    }
                })
                .collect()
        };
        derive(raw, cfg)
    }

    /// Runs one scheduling quantum of at most `budget` messages on `node`,
    /// updating its statistics.
    pub fn step_node(&self, id: NodeId, budget: usize) -> StepReport {
        let cell = self.cell(id);
        // ordering: Relaxed — scheduling filter; see remove_node().
        if cell.removed.load(Ordering::Relaxed) {
            return StepReport::default();
        }
        let mut runnable = cell.runnable.lock();
        let report = {
            let _span = pipes_trace::span_args(
                pipes_trace::names::NODE_STEP,
                [id as u64, budget as u64, 0],
            );
            runnable.step(budget)
        };
        cell.stats.record_in(report.consumed as u64);
        cell.stats.record_out(report.produced as u64);
        cell.stats.record_batches(report.batches as u64);
        cell.stats.set_queue_len(runnable.queued());
        cell.stats.set_memory(runnable.memory());
        let state_bytes = runnable.state_bytes();
        cell.stats.set_state_bytes(state_bytes);
        if report.consumed > 0 || report.produced > 0 {
            // One metadata-plane update per drained run, while the runnable
            // lock still serializes us: NodeMeta's seqlock publication
            // assumes a single writer, and this lock is it.
            cell.meta
                .record_quantum(report.consumed as u64, report.produced as u64, state_bytes);
            pipes_trace::instant_coarse(
                pipes_trace::names::META_UPDATE,
                [id as u64, report.consumed as u64, report.produced as u64],
            );
        }
        drop(runnable);
        if report.produced > 0 && self.has_wake_hook.load(Ordering::Acquire) {
            let hook = self.wake_hook.read().clone();
            if let Some(hook) = hook {
                hook(id);
            }
        }
        report
    }

    /// Joins every node currently in the graph to one source-to-sink
    /// latency pipeline: sources stamp `(logical start, wall clock)` pairs
    /// into the returned [`pipes_trace::LatencyTracker`] as they produce,
    /// and sinks sample elements against those stamps, folding observed
    /// latencies into their [`NodeStats`] quantile estimators (see
    /// [`pipes_meta::LatencySummary`]). Nodes added afterwards are not
    /// covered; call again to re-attach (re-attachment replaces the
    /// tracker, so prefer enabling once after the topology is built).
    pub fn enable_latency_tracking(&self) -> Arc<pipes_trace::LatencyTracker> {
        let tracker = Arc::new(pipes_trace::LatencyTracker::new());
        let nodes = self.nodes.read();
        for cell in nodes.iter() {
            cell.runnable
                .lock()
                .attach_latency(Arc::clone(&tracker), Arc::clone(&cell.stats));
        }
        tracker
    }

    /// Caps the input-run / output-flush batch size of `node` (see
    /// [`Runnable::set_batch_limit`]). A limit of 1 reproduces the
    /// per-message data path; the default is effectively unbounded.
    pub fn set_node_batch_limit(&self, id: NodeId, limit: usize) {
        self.cell(id).runnable.lock().set_batch_limit(limit);
    }

    /// Caps the batch size of every node currently in the graph.
    pub fn set_batch_limit(&self, limit: usize) {
        for id in self.node_ids() {
            self.set_node_batch_limit(id, limit);
        }
    }

    /// Messages currently queued at `node`'s inputs.
    pub fn queued(&self, id: NodeId) -> usize {
        self.cell(id).runnable.lock().queued()
    }

    /// Arrival sequence of the oldest message queued at `node`, if any.
    pub fn oldest_pending_seq(&self, id: NodeId) -> Option<u64> {
        self.cell(id).runnable.lock().oldest_pending_seq()
    }

    /// Whether `node` has finished (closed or removed).
    pub fn is_finished(&self, id: NodeId) -> bool {
        let cell = self.cell(id);
        // ordering: Relaxed — scheduling filter; see remove_node().
        cell.removed.load(Ordering::Relaxed) || cell.runnable.lock().is_finished()
    }

    /// Whether every node has finished (removed nodes count as finished).
    pub fn all_finished(&self) -> bool {
        self.node_ids().all(|id| self.is_finished(id))
    }

    /// Operator state size of `node` in retained elements.
    pub fn memory(&self, id: NodeId) -> usize {
        self.cell(id).runnable.lock().memory()
    }

    /// Estimated operator state footprint of `node` in bytes (0 when the
    /// operator does not report one).
    pub fn state_bytes(&self, id: NodeId) -> usize {
        self.cell(id).runnable.lock().state_bytes()
    }

    /// Sheds `node`'s operator state to roughly `target` elements.
    pub fn shed(&self, id: NodeId, target: usize) -> usize {
        self.cell(id).runnable.lock().shed(target)
    }

    /// Total messages queued across the whole graph.
    pub fn total_queued(&self) -> usize {
        self.node_ids().map(|id| self.queued(id)).sum()
    }

    /// Garbage-collects dangling producers: repeatedly removes sources and
    /// operators that no consumer subscribes to, until a fixpoint. Returns
    /// the number of nodes removed.
    ///
    /// Only call while the topology is quiescent — a node added before its
    /// consumer would be collected prematurely.
    pub fn collect_unconsumed(&self) -> usize {
        // Shuffle-group members (partition/instance nodes) publish through
        // raw stamped edges, not an output port, so their subscriber count
        // reads 0 even though the merge stage consumes them. Never collect
        // them as dangling.
        let shuffled: std::collections::HashSet<NodeId> =
            self.shuffle.member_ids().into_iter().collect();
        let mut removed = 0;
        loop {
            let victims: Vec<NodeId> = self
                .infos()
                .into_iter()
                .filter(|i| {
                    !i.removed
                        && i.kind != NodeKind::Sink
                        && !shuffled.contains(&i.id)
                        && self.subscriber_count(i.id) == 0
                })
                .map(|i| i.id)
                .collect();
            if victims.is_empty() {
                return removed;
            }
            for id in victims {
                self.remove_node(id);
                removed += 1;
            }
        }
    }

    /// Minimal built-in executor: steps all nodes round-robin until every
    /// node has finished. Returns the number of quanta executed. Intended
    /// for tests and simple examples — real deployments use `pipes-sched`.
    ///
    /// # Panics
    ///
    /// Panics if the graph stops making progress before finishing (which
    /// would indicate a stuck operator or an infinite source).
    pub fn run_to_completion(&self, budget: usize) -> usize {
        let mut quanta = 0;
        loop {
            if self.all_finished() {
                return quanta;
            }
            let mut progressed = false;
            for id in self.node_ids() {
                if self.is_finished(id) {
                    continue;
                }
                let report = self.step_node(id, budget);
                if report.consumed > 0 || report.produced > 0 || self.is_finished(id) {
                    progressed = true;
                }
                quanta += 1;
            }
            assert!(progressed, "query graph stalled: no node can make progress");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{CollectSink, CountSink, VecSource};
    use crate::operator::Collector;
    use pipes_time::{Element, Timestamp};

    struct Mul(i64);
    impl Operator for Mul {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            let k = self.0;
            out.element(e.map(|v| v * k));
        }
    }

    fn elems(vals: &[i64]) -> Vec<Element<i64>> {
        vals.iter()
            .enumerate()
            .map(|(i, v)| Element::at(*v, Timestamp::new(i as u64)))
            .collect()
    }

    #[test]
    fn linear_pipeline_end_to_end() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(&[1, 2, 3])));
        let doubled = g.add_unary("double", Mul(2), &src);
        let (sink, buf) = CollectSink::new();
        g.add_sink("collect", sink, &doubled);

        g.run_to_completion(8);
        let vals: Vec<i64> = buf.lock().iter().map(|e| e.payload).collect();
        assert_eq!(vals, vec![2, 4, 6]);
        assert!(g.all_finished());
    }

    #[test]
    fn fan_out_to_two_sinks() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(&[5, 6])));
        let (s1, b1) = CollectSink::new();
        let (s2, b2) = CollectSink::new();
        g.add_sink("a", s1, &src);
        g.add_sink("b", s2, &src);
        g.run_to_completion(4);
        assert_eq!(b1.lock().len(), 2);
        assert_eq!(b2.lock().len(), 2);
        // Source stats observed two subscribers.
        assert_eq!(g.stats(src.node()).snapshot().subscribers, 2);
    }

    #[test]
    fn diamond_shape_counts() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(&[1, 2, 3, 4])));
        let a = g.add_unary("x2", Mul(2), &src);
        let b = g.add_unary("x3", Mul(3), &src);
        let (sink, cell) = CountSink::<i64>::new();
        g.add_sink_nary("count", sink, &[a, b]);
        g.run_to_completion(3);
        assert_eq!(cell.lock().0, 8); // 4 elements down each branch
    }

    #[test]
    fn stats_track_selectivity() {
        struct DropOdd;
        impl Operator for DropOdd {
            type In = i64;
            type Out = i64;
            fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
                if e.payload % 2 == 0 {
                    out.element(e);
                }
            }
        }
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(&[1, 2, 3, 4])));
        let f = g.add_unary("even", DropOdd, &src);
        let (sink, _) = CollectSink::new();
        g.add_sink("sink", sink, &f);
        g.run_to_completion(16);
        let snap = g.stats(f.node()).snapshot();
        // 4 elements + 4 heartbeats + 1 close consumed; 2 elements produced.
        assert_eq!(snap.out_count, 2);
        assert!(snap.in_count >= 5);
    }

    #[test]
    fn runtime_subscription_and_removal() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(&[1, 2, 3])));
        let (s1, b1) = CollectSink::new();
        let first = g.add_sink("first", s1, &src);

        // Drain one quantum, then splice in a second consumer at runtime.
        g.step_node(src.node(), 1);
        let (s2, b2) = CollectSink::new();
        let second = g.add_sink("second", s2, &src);
        g.run_to_completion(4);
        assert_eq!(b1.lock().len(), 3);
        // The late subscriber missed the first element.
        assert_eq!(b2.lock().len(), 2);

        g.remove_node(second);
        assert!(g.is_removed(second));
        assert!(!g.is_removed(first));
        assert_eq!(g.stats(src.node()).snapshot().subscribers, 1);
    }

    #[test]
    fn late_subscriber_to_closed_stream_sees_close() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(&[1])));
        let (s1, _) = CollectSink::new();
        g.add_sink("early", s1, &src);
        g.run_to_completion(4);

        let (s2, b2) = CollectSink::new();
        let late = g.add_sink("late", s2, &src);
        g.run_to_completion(4);
        assert!(g.is_finished(late));
        assert_eq!(b2.lock().len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_inputs_rejected() {
        let g = QueryGraph::new();
        let _ = g.add_nary::<Mul>("bad", Mul(1), &[]);
    }

    #[test]
    fn topology_queries_report_edges() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(&[1])));
        let a = g.add_unary("a", Mul(2), &src);
        let b = g.add_unary("b", Mul(3), &src);
        let (sink, _) = CountSink::<i64>::new();
        let k = g.add_sink_nary("count", sink, &[a.clone(), b.clone()]);

        assert_eq!(g.kind(src.node()), NodeKind::Source);
        assert_eq!(g.kind(a.node()), NodeKind::Operator);
        assert_eq!(g.kind(k), NodeKind::Sink);
        assert_eq!(g.upstream_ids(src.node()), Vec::<NodeId>::new());
        assert_eq!(g.upstream_ids(a.node()), vec![src.node()]);
        assert_eq!(g.upstream_ids(k), vec![a.node(), b.node()]);
        assert_eq!(g.in_degree(k), 2);
        assert_eq!(g.downstream_ids(src.node()), vec![a.node(), b.node()]);
        assert_eq!(g.downstream_ids(a.node()), vec![k]);
        assert_eq!(g.downstream_ids(k), Vec::<NodeId>::new());

        let mut buf = vec![99];
        g.upstream_ids_into(k, &mut buf);
        assert_eq!(buf, vec![99, a.node(), b.node()]);
    }

    #[test]
    fn topology_epoch_bumps_on_add_and_retire() {
        let g = QueryGraph::new();
        let e0 = g.topology_epoch();
        let src = g.add_source("src", VecSource::new(elems(&[1])));
        assert!(g.topology_epoch() > e0, "add_source must bump the epoch");
        let (s1, _) = CollectSink::new();
        let a = g.add_sink("a", s1, &src);
        let (s2, _) = CollectSink::new();
        let b = g.add_sink("b", s2, &src);
        let before = g.topology_epoch();
        g.remove_node(a);
        assert!(g.topology_epoch() > before, "retire must bump the epoch");

        // node_ids skips the retired id but keeps the survivors, in order.
        let ids: Vec<NodeId> = g.node_ids().collect();
        assert_eq!(ids, vec![src.node(), b]);
        // The hole cannot be double-stepped through the iterator view.
        assert!(g.node_ids().all(|id| id != a));
    }

    #[test]
    fn wake_hook_fires_on_productive_steps_only() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems(&[1, 2])));
        let (sink, _) = CollectSink::new();
        let s = g.add_sink("sink", sink, &src);

        let fired = Arc::new(Mutex::new(Vec::new()));
        let fired2 = Arc::clone(&fired);
        g.set_wake_hook(Arc::new(move |id| fired2.lock().push(id)));

        g.step_node(src.node(), 8); // produces → hook fires
        g.step_node(s, 8); // sink produces nothing → no hook
        assert_eq!(fired.lock().clone(), vec![src.node()]);

        g.clear_wake_hook();
        g.run_to_completion(8);
        assert_eq!(fired.lock().len(), 1, "cleared hook must not fire");
    }
}
