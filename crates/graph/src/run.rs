//! Run preparation: what a node does to a drained run before handing it to
//! an operator's run-level entry point.
//!
//! Two normalizations happen between [`crate::Edge::pop_run`] and
//! [`crate::Operator::on_run`]:
//!
//! 1. **Close splitting** — `Close` is the terminal message of an edge, so
//!    if present it is the run's last message; the node strips it and does
//!    the port bookkeeping itself. Runs handed to operators never contain
//!    `Close`.
//! 2. **Heartbeat coalescing** — *adjacent* heartbeats collapse to the
//!    last (strongest) of each consecutive group. Heartbeats are monotone
//!    promises, so the last of an adjacent group subsumes the others; the
//!    per-instant snapshots of the output are unchanged (operators only
//!    flush *more* per heartbeat, never differently). Coalescing across an
//!    element would be unsound: moving a heartbeat `t` in front of an
//!    element starting before `t` breaks the watermark contract, so only
//!    adjacent groups are collapsed.

use pipes_time::Message;

/// Collapses every group of *adjacent* heartbeats to its last member,
/// in place and order-preserving. Returns how many were removed.
///
/// Edges already deduplicate non-monotone heartbeats, so within a drained
/// run each surviving group is increasing and its last member is the
/// strongest promise; the helper itself only relies on adjacency, not on
/// monotonicity.
pub fn coalesce_adjacent_heartbeats<T>(run: &mut Vec<Message<T>>) -> usize {
    let before = run.len();
    let mut write = 0;
    for read in 0..run.len() {
        let drop_prev = write > 0
            && matches!(run[write - 1], Message::Heartbeat(_))
            && matches!(run[read], Message::Heartbeat(_));
        if drop_prev {
            run.swap(write - 1, read);
        } else {
            run.swap(write, read);
            write += 1;
        }
    }
    run.truncate(write);
    before - run.len()
}

/// Splits a trailing `Close` off the run: returns `true` (and pops it)
/// when the run's last message is `Close`.
///
/// `Close` is published exactly once, after everything else on an edge,
/// and [`crate::Edge::pop_run`] ends a run at `Close` — so a drained run
/// contains at most one `Close`, in last position. The debug assertion
/// pins that invariant.
pub fn take_trailing_close<T>(run: &mut Vec<Message<T>>) -> bool {
    debug_assert!(
        run.iter()
            .position(|m| matches!(m, Message::Close))
            .is_none_or(|p| p == run.len() - 1),
        "Close must be the terminal message of a run"
    );
    if matches!(run.last(), Some(Message::Close)) {
        run.pop();
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipes_time::{Element, Timestamp};

    fn hb(t: u64) -> Message<i64> {
        Message::Heartbeat(Timestamp::new(t))
    }

    fn el(v: i64, s: u64) -> Message<i64> {
        Message::Element(Element::at(v, Timestamp::new(s)))
    }

    #[test]
    fn adjacent_groups_collapse_to_last() {
        let mut run = vec![hb(1), hb(2), el(7, 2), hb(3), hb(4), hb(6), el(8, 6), hb(9)];
        let removed = coalesce_adjacent_heartbeats(&mut run);
        assert_eq!(removed, 3);
        assert_eq!(run, vec![hb(2), el(7, 2), hb(6), el(8, 6), hb(9)]);
    }

    #[test]
    fn no_heartbeats_or_singletons_untouched() {
        let mut run = vec![el(1, 0), hb(1), el(2, 1), hb(2)];
        assert_eq!(coalesce_adjacent_heartbeats(&mut run), 0);
        assert_eq!(run, vec![el(1, 0), hb(1), el(2, 1), hb(2)]);
        let mut empty: Vec<Message<i64>> = Vec::new();
        assert_eq!(coalesce_adjacent_heartbeats(&mut empty), 0);
    }

    #[test]
    fn all_heartbeats_collapse_to_one() {
        let mut run = vec![hb(1), hb(2), hb(5)];
        assert_eq!(coalesce_adjacent_heartbeats(&mut run), 2);
        assert_eq!(run, vec![hb(5)]);
    }

    #[test]
    fn trailing_close_is_taken() {
        let mut run = vec![el(1, 0), hb(1), Message::Close];
        assert!(take_trailing_close(&mut run));
        assert_eq!(run, vec![el(1, 0), hb(1)]);
        assert!(!take_trailing_close(&mut run));
        let mut only_close: Vec<Message<i64>> = vec![Message::Close];
        assert!(take_trailing_close(&mut only_close));
        assert!(only_close.is_empty());
    }
}
