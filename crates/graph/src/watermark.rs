//! Multi-input watermark (heartbeat) bookkeeping.

use pipes_time::Timestamp;

/// Tracks per-port temporal progress for a multi-input operator.
///
/// An operator with several inputs may only certify downstream progress up to
/// the *minimum* progress across its inputs. `update` records a heartbeat for
/// one port and returns the new combined watermark if it advanced.
#[derive(Clone, Debug)]
pub struct Watermarks {
    per_port: Vec<Timestamp>,
    combined: Timestamp,
}

impl Watermarks {
    /// Creates bookkeeping for `ports` inputs, all starting at time zero.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "watermark tracking needs at least one port");
        Watermarks {
            per_port: vec![Timestamp::ZERO; ports],
            combined: Timestamp::ZERO,
        }
    }

    /// Records a heartbeat for `port`. Returns `Some(new_min)` when the
    /// combined watermark advanced, `None` otherwise. Regressing heartbeats
    /// are ignored (punctuations are promises; a weaker promise adds nothing).
    pub fn update(&mut self, port: usize, t: Timestamp) -> Option<Timestamp> {
        if t > self.per_port[port] {
            self.per_port[port] = t;
            let min = *self.per_port.iter().min().expect("at least one port");
            if min > self.combined {
                self.combined = min;
                return Some(min);
            }
        }
        None
    }

    /// Marks a port closed: it stops constraining progress.
    pub fn close_port(&mut self, port: usize) -> Option<Timestamp> {
        self.update(port, Timestamp::MAX)
    }

    /// The current combined watermark.
    pub fn combined(&self) -> Timestamp {
        self.combined
    }

    /// The progress recorded for one port.
    pub fn port(&self, port: usize) -> Timestamp {
        self.per_port[port]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_is_minimum() {
        let mut w = Watermarks::new(2);
        assert_eq!(w.update(0, Timestamp::new(10)), None); // port 1 still at 0
        assert_eq!(w.update(1, Timestamp::new(4)), Some(Timestamp::new(4)));
        assert_eq!(w.combined(), Timestamp::new(4));
        assert_eq!(w.update(1, Timestamp::new(20)), Some(Timestamp::new(10)));
        assert_eq!(w.port(0), Timestamp::new(10));
    }

    #[test]
    fn regressions_ignored() {
        let mut w = Watermarks::new(1);
        assert_eq!(w.update(0, Timestamp::new(5)), Some(Timestamp::new(5)));
        assert_eq!(w.update(0, Timestamp::new(3)), None);
        assert_eq!(w.combined(), Timestamp::new(5));
    }

    #[test]
    fn closed_port_stops_constraining() {
        let mut w = Watermarks::new(2);
        w.update(0, Timestamp::new(7));
        assert_eq!(w.close_port(1), Some(Timestamp::new(7)));
        assert_eq!(w.update(0, Timestamp::new(9)), Some(Timestamp::new(9)));
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = Watermarks::new(0);
    }
}
