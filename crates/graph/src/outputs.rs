//! The publishing side of a node: its set of subscribed edges.

use crate::edge::{Edge, EdgeId};
use crate::operator::Collector;
use pipes_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use pipes_sync::{Arc, RwLock};
use pipes_time::{Element, Message, Timestamp};

/// Default cap on how many messages a [`PublishCollector`] buffers before
/// flushing mid-quantum, bounding scratch memory for high-fan-out operators.
pub const DEFAULT_FLUSH_CAP: usize = 1024;

/// The output port of a node: publishes messages to all subscribed edges.
///
/// Subscriptions may be added and removed at runtime. A subscriber that
/// attaches after the stream closed immediately receives `Close`; one that
/// attaches mid-stream is primed with the last published heartbeat so its
/// consumer knows the temporal progress already made.
///
/// Publishing comes in two granularities: the per-message
/// [`publish_element`](Outputs::publish_element) /
/// [`publish_heartbeat`](Outputs::publish_heartbeat) pair, and
/// [`publish_batch`](Outputs::publish_batch), which allocates one contiguous
/// block of arrival sequences and takes each subscriber's queue lock once
/// for the whole batch.
pub struct Outputs<T> {
    subs: RwLock<Vec<Arc<Edge<T>>>>,
    seq: Arc<AtomicU64>,
    last_heartbeat: AtomicU64,
    closed: AtomicBool,
}

impl<T: Clone> Outputs<T> {
    /// Creates an output port drawing arrival sequence numbers from `seq`.
    pub fn new(seq: Arc<AtomicU64>) -> Self {
        Outputs {
            subs: RwLock::new(Vec::new()),
            seq,
            last_heartbeat: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Attaches a subscriber edge.
    pub fn subscribe(&self, edge: Arc<Edge<T>>) {
        // ordering: Relaxed — priming reads are best-effort snapshots; a
        // concurrent publisher delivers anything newer through the edge
        // itself once the subscription below is visible.
        let wm = self.last_heartbeat.load(Ordering::Relaxed);
        if wm > 0 {
            edge.push(
                // ordering: Relaxed — seq only needs atomicity: each
                // fetch_add yields a unique arrival number; ordering across
                // edges is established by the per-edge queue locks.
                self.seq.fetch_add(1, Ordering::Relaxed),
                Message::Heartbeat(Timestamp::new(wm)),
            );
        }
        // ordering: Relaxed — see priming comment above.
        if self.closed.load(Ordering::Relaxed) {
            edge.push(self.seq.fetch_add(1, Ordering::Relaxed), Message::Close);
        }
        self.subs.write().push(edge);
    }

    /// Detaches the subscriber edge with the given id; returns whether it
    /// was attached.
    pub fn unsubscribe(&self, id: EdgeId) -> bool {
        let mut subs = self.subs.write();
        let before = subs.len();
        subs.retain(|e| e.id() != id);
        subs.len() != before
    }

    /// Number of currently subscribed edges.
    pub fn subscriber_count(&self) -> usize {
        self.subs.read().len()
    }

    /// Publishes a data element to every subscriber.
    pub fn publish_element(&self, e: Element<T>) {
        // ordering: Relaxed — unique-id allocation; see subscribe().
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let subs = self.subs.read();
        match subs.split_last() {
            None => {}
            Some((last, rest)) => {
                for edge in rest {
                    edge.push(seq, Message::Element(e.clone()));
                }
                last.push(seq, Message::Element(e));
            }
        }
    }

    /// Publishes a heartbeat, suppressing non-monotonic duplicates.
    pub fn publish_heartbeat(&self, t: Timestamp) {
        // ordering: Relaxed — the fetch_max itself is the whole protocol:
        // exactly one publisher observes prev < t and forwards t, so a
        // given timestamp is delivered at most once regardless of order.
        let prev = self.last_heartbeat.fetch_max(t.ticks(), Ordering::Relaxed);
        if t.ticks() <= prev {
            return; // stale or duplicate punctuation: suppress
        }
        // ordering: Relaxed — unique-id allocation; see subscribe().
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        for edge in self.subs.read().iter() {
            edge.push(seq, Message::Heartbeat(t));
        }
        pipes_trace::instant(pipes_trace::names::HEARTBEAT, [t.ticks(), 0, 0]);
    }

    /// Publishes a whole batch of elements and heartbeats.
    ///
    /// Stale and duplicate heartbeats are dropped (same dedup rule as
    /// [`publish_heartbeat`](Outputs::publish_heartbeat)); the `k` surviving
    /// messages are stamped from one contiguous sequence block allocated
    /// with a single `fetch_add(k)`, and each subscriber's queue lock is
    /// taken once for the whole batch. `batch` is drained but keeps its
    /// capacity, so callers reuse it as a per-node scratch buffer.
    pub fn publish_batch(&self, batch: &mut Vec<Message<T>>) {
        batch.retain(|m| match m {
            Message::Heartbeat(t) => {
                // ordering: Relaxed — same single-winner fetch_max dedup
                // protocol as publish_heartbeat().
                let prev = self.last_heartbeat.fetch_max(t.ticks(), Ordering::Relaxed);
                t.ticks() > prev
            }
            _ => true,
        });
        let k = batch.len();
        if k == 0 {
            return;
        }
        // ordering: Relaxed — one fetch_add(k) claims the whole contiguous
        // block; uniqueness is all that is required (see subscribe()).
        let seq_base = self.seq.fetch_add(k as u64, Ordering::Relaxed);
        let subs = self.subs.read();
        let n_subs = subs.len();
        match subs.split_last() {
            None => batch.clear(),
            Some((last, rest)) => {
                for edge in rest {
                    edge.push_batch_cloned(seq_base, batch);
                }
                last.push_batch(seq_base, batch);
            }
        }
        drop(subs);
        // Coarse-timestamped: flushes fire once per batch inside the
        // publisher's node-step span; see EDGE_DRAIN in edge.rs.
        pipes_trace::instant_coarse(
            pipes_trace::names::FLUSH,
            [k as u64, n_subs as u64, seq_base],
        );
    }

    /// Publishes end-of-stream (idempotent).
    pub fn publish_close(&self) {
        // ordering: Relaxed — the swap makes exactly one caller the
        // closer; subscribers observe the close via the edge queues.
        if self.closed.swap(true, Ordering::Relaxed) {
            return;
        }
        // ordering: Relaxed — unique-id allocation; see subscribe().
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        for edge in self.subs.read().iter() {
            edge.push(seq, Message::Close);
        }
        pipes_trace::instant(pipes_trace::names::CLOSE, [0; 3]);
    }

    /// Whether `Close` has been published.
    pub fn is_closed(&self) -> bool {
        // ordering: Relaxed — advisory read; the authoritative close is
        // the Close message in each edge queue.
        self.closed.load(Ordering::Relaxed)
    }
}

/// Type-erased view of an output port, used by the graph for bookkeeping
/// that must not know the payload type (unsubscription, fan-out counting).
pub trait OutputPort: Send + Sync {
    /// Detaches the edge with the given id.
    fn detach(&self, id: EdgeId) -> bool;
    /// Number of subscribed edges.
    fn subscriber_count(&self) -> usize;
}

impl<T: Clone + Send + 'static> OutputPort for Outputs<T> {
    fn detach(&self, id: EdgeId) -> bool {
        self.unsubscribe(id)
    }
    fn subscriber_count(&self) -> usize {
        Outputs::subscriber_count(self)
    }
}

/// A [`Collector`] that buffers emitted messages in a node-owned scratch
/// buffer and publishes them as one batch per quantum (or whenever the
/// buffer reaches its flush cap).
///
/// The scratch buffer is borrowed from the node, so its capacity survives
/// across quanta — steady-state operation allocates nothing. Call
/// [`finish`](PublishCollector::finish) at the end of a quantum to flush
/// and read the produced-element count; dropping the collector also
/// flushes, so buffered messages can never be lost.
pub struct PublishCollector<'a, T: Clone> {
    outputs: &'a Outputs<T>,
    buf: &'a mut Vec<Message<T>>,
    flush_cap: usize,
    produced: usize,
}

impl<'a, T: Clone> PublishCollector<'a, T> {
    /// Creates a collector publishing to `outputs`, buffering into the
    /// caller-owned `buf` (expected empty).
    pub fn new(outputs: &'a Outputs<T>, buf: &'a mut Vec<Message<T>>) -> Self {
        debug_assert!(buf.is_empty(), "scratch buffer handed over non-empty");
        PublishCollector {
            outputs,
            buf,
            flush_cap: DEFAULT_FLUSH_CAP,
            produced: 0,
        }
    }

    /// Caps the buffer at `cap` messages; reaching the cap triggers a
    /// mid-quantum flush. A cap of 1 reproduces per-message publishing
    /// (one sequence allocation and one lock round per message), which the
    /// batching benchmarks use as their baseline.
    pub fn with_flush_cap(mut self, cap: usize) -> Self {
        self.flush_cap = cap.max(1);
        self
    }

    /// Elements published through this collector so far.
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// Publishes everything currently buffered.
    pub fn flush(&mut self) {
        self.outputs.publish_batch(self.buf);
    }

    /// Flushes and returns the produced-element count for the quantum.
    pub fn finish(&mut self) -> usize {
        self.flush();
        self.produced
    }
}

impl<T: Clone> Collector<T> for PublishCollector<'_, T> {
    fn element(&mut self, e: Element<T>) {
        self.produced += 1;
        self.buf.push(Message::Element(e));
        if self.buf.len() >= self.flush_cap {
            self.flush();
        }
    }
    fn heartbeat(&mut self, t: Timestamp) {
        self.buf.push(Message::Heartbeat(t));
        if self.buf.len() >= self.flush_cap {
            self.flush();
        }
    }
    fn reserve(&mut self, additional: usize) {
        // The buffer flushes at the cap, so capacity past it is dead weight.
        self.buf.reserve(additional.min(self.flush_cap));
    }
}

impl<T: Clone> Drop for PublishCollector<'_, T> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipes_time::Element;

    fn outputs() -> Outputs<i32> {
        Outputs::new(Arc::new(AtomicU64::new(0)))
    }

    #[test]
    fn fan_out_clones_to_all_subscribers() {
        let out = outputs();
        let e1 = Arc::new(Edge::new(1));
        let e2 = Arc::new(Edge::new(2));
        out.subscribe(Arc::clone(&e1));
        out.subscribe(Arc::clone(&e2));
        assert_eq!(out.subscriber_count(), 2);
        out.publish_element(Element::at(5, Timestamp::new(1)));
        assert_eq!(e1.len(), 1);
        assert_eq!(e2.len(), 1);
        // Both copies carry the same arrival sequence.
        assert_eq!(e1.pop().unwrap().0, e2.pop().unwrap().0);
    }

    #[test]
    fn heartbeat_deduplication() {
        let out = outputs();
        let e = Arc::new(Edge::new(1));
        out.subscribe(Arc::clone(&e));
        out.publish_heartbeat(Timestamp::new(5));
        out.publish_heartbeat(Timestamp::new(5)); // duplicate: suppressed
        out.publish_heartbeat(Timestamp::new(3)); // stale: suppressed
        out.publish_heartbeat(Timestamp::new(8));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn batch_publish_allocates_one_seq_block_and_dedups_heartbeats() {
        let seq = Arc::new(AtomicU64::new(0));
        let out: Outputs<i32> = Outputs::new(Arc::clone(&seq));
        let e1 = Arc::new(Edge::new(1));
        let e2 = Arc::new(Edge::new(2));
        out.subscribe(Arc::clone(&e1));
        out.subscribe(Arc::clone(&e2));
        out.publish_heartbeat(Timestamp::new(4)); // seq 0

        let mut batch = vec![
            Message::Element(Element::at(1, Timestamp::new(5))),
            Message::Heartbeat(Timestamp::new(6)),
            Message::Heartbeat(Timestamp::new(6)), // duplicate: dropped
            Message::Heartbeat(Timestamp::new(2)), // stale: dropped
            Message::Element(Element::at(2, Timestamp::new(7))),
        ];
        out.publish_batch(&mut batch);
        assert!(batch.is_empty(), "batch buffer must drain");
        // 3 survivors stamped with the contiguous block 1..=3.
        // ordering: Relaxed — single-threaded test readback.
        assert_eq!(seq.load(Ordering::Relaxed), 4);
        for edge in [&e1, &e2] {
            assert_eq!(edge.len(), 4); // priming heartbeat + 3 batch messages
            edge.pop(); // priming heartbeat (seq 0)
            assert_eq!(edge.pop().unwrap().0, 1);
            assert_eq!(edge.pop().unwrap().0, 2);
            assert_eq!(edge.pop().unwrap().0, 3);
        }
    }

    #[test]
    fn batch_publish_without_subscribers_discards() {
        let out = outputs();
        let mut batch = vec![Message::Element(Element::at(1, Timestamp::new(0)))];
        out.publish_batch(&mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn close_is_idempotent_and_primes_late_subscribers() {
        let out = outputs();
        let early = Arc::new(Edge::new(1));
        out.subscribe(Arc::clone(&early));
        out.publish_heartbeat(Timestamp::new(9));
        out.publish_close();
        out.publish_close();
        assert_eq!(early.len(), 2); // heartbeat + one close
        assert!(out.is_closed());

        let late = Arc::new(Edge::new(2));
        out.subscribe(Arc::clone(&late));
        // Late subscriber is primed with progress and the close.
        assert_eq!(late.pop().unwrap().1, Message::Heartbeat(Timestamp::new(9)));
        assert_eq!(late.pop().unwrap().1, Message::Close);
    }

    #[test]
    fn unsubscribe_detaches() {
        let out = outputs();
        let e = Arc::new(Edge::new(4));
        out.subscribe(Arc::clone(&e));
        assert!(out.unsubscribe(4));
        assert!(!out.unsubscribe(4));
        out.publish_element(Element::at(1, Timestamp::new(0)));
        assert!(e.is_empty());
    }

    #[test]
    fn publish_collector_buffers_until_finish() {
        let out = outputs();
        let e = Arc::new(Edge::new(1));
        out.subscribe(Arc::clone(&e));
        let mut scratch = Vec::new();
        let mut c = PublishCollector::new(&out, &mut scratch);
        c.element(Element::at(1, Timestamp::new(0)));
        c.element(Element::at(2, Timestamp::new(1)));
        c.heartbeat(Timestamp::new(2));
        // Nothing on the wire until the quantum flushes.
        assert_eq!(e.len(), 0);
        assert_eq!(c.produced(), 2);
        assert_eq!(c.finish(), 2);
        drop(c);
        assert_eq!(e.len(), 3);
        assert!(scratch.is_empty());
    }

    #[test]
    fn publish_collector_flushes_at_cap_and_on_drop() {
        let out = outputs();
        let e = Arc::new(Edge::new(1));
        out.subscribe(Arc::clone(&e));
        let mut scratch = Vec::new();
        {
            let mut c = PublishCollector::new(&out, &mut scratch).with_flush_cap(2);
            c.element(Element::at(1, Timestamp::new(0)));
            c.element(Element::at(2, Timestamp::new(1)));
            // Cap reached: flushed mid-quantum.
            assert_eq!(e.len(), 2);
            c.element(Element::at(3, Timestamp::new(2)));
            // Dropped without finish(): the drop flush publishes the rest.
        }
        assert_eq!(e.len(), 3);
    }
}
