//! The publishing side of a node: its set of subscribed edges.

use crate::edge::{Edge, EdgeId};
use crate::operator::Collector;
use parking_lot::RwLock;
use pipes_time::{Element, Message, Timestamp};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The output port of a node: publishes messages to all subscribed edges.
///
/// Subscriptions may be added and removed at runtime. A subscriber that
/// attaches after the stream closed immediately receives `Close`; one that
/// attaches mid-stream is primed with the last published heartbeat so its
/// consumer knows the temporal progress already made.
pub struct Outputs<T> {
    subs: RwLock<Vec<Arc<Edge<T>>>>,
    seq: Arc<AtomicU64>,
    last_heartbeat: AtomicU64,
    closed: AtomicBool,
}

impl<T: Clone> Outputs<T> {
    /// Creates an output port drawing arrival sequence numbers from `seq`.
    pub fn new(seq: Arc<AtomicU64>) -> Self {
        Outputs {
            subs: RwLock::new(Vec::new()),
            seq,
            last_heartbeat: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Attaches a subscriber edge.
    pub fn subscribe(&self, edge: Arc<Edge<T>>) {
        let wm = self.last_heartbeat.load(Ordering::Relaxed);
        if wm > 0 {
            edge.push(
                self.seq.fetch_add(1, Ordering::Relaxed),
                Message::Heartbeat(Timestamp::new(wm)),
            );
        }
        if self.closed.load(Ordering::Relaxed) {
            edge.push(self.seq.fetch_add(1, Ordering::Relaxed), Message::Close);
        }
        self.subs.write().push(edge);
    }

    /// Detaches the subscriber edge with the given id; returns whether it
    /// was attached.
    pub fn unsubscribe(&self, id: EdgeId) -> bool {
        let mut subs = self.subs.write();
        let before = subs.len();
        subs.retain(|e| e.id() != id);
        subs.len() != before
    }

    /// Number of currently subscribed edges.
    pub fn subscriber_count(&self) -> usize {
        self.subs.read().len()
    }

    /// Publishes a data element to every subscriber.
    pub fn publish_element(&self, e: Element<T>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let subs = self.subs.read();
        match subs.split_last() {
            None => {}
            Some((last, rest)) => {
                for edge in rest {
                    edge.push(seq, Message::Element(e.clone()));
                }
                last.push(seq, Message::Element(e));
            }
        }
    }

    /// Publishes a heartbeat, suppressing non-monotonic duplicates.
    pub fn publish_heartbeat(&self, t: Timestamp) {
        let prev = self.last_heartbeat.fetch_max(t.ticks(), Ordering::Relaxed);
        if t.ticks() <= prev {
            return; // stale or duplicate punctuation: suppress
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        for edge in self.subs.read().iter() {
            edge.push(seq, Message::Heartbeat(t));
        }
    }

    /// Publishes end-of-stream (idempotent).
    pub fn publish_close(&self) {
        if self.closed.swap(true, Ordering::Relaxed) {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        for edge in self.subs.read().iter() {
            edge.push(seq, Message::Close);
        }
    }

    /// Whether `Close` has been published.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Relaxed)
    }
}

/// Type-erased view of an output port, used by the graph for bookkeeping
/// that must not know the payload type (unsubscription, fan-out counting).
pub trait OutputPort: Send + Sync {
    /// Detaches the edge with the given id.
    fn detach(&self, id: EdgeId) -> bool;
    /// Number of subscribed edges.
    fn subscriber_count(&self) -> usize;
}

impl<T: Clone + Send + 'static> OutputPort for Outputs<T> {
    fn detach(&self, id: EdgeId) -> bool {
        self.unsubscribe(id)
    }
    fn subscriber_count(&self) -> usize {
        Outputs::subscriber_count(self)
    }
}

/// A [`Collector`] that publishes into an [`Outputs`] and counts produced
/// elements into node statistics.
pub struct PublishCollector<'a, T> {
    outputs: &'a Outputs<T>,
    produced: usize,
}

impl<'a, T: Clone> PublishCollector<'a, T> {
    /// Creates a collector publishing to `outputs`.
    pub fn new(outputs: &'a Outputs<T>) -> Self {
        PublishCollector {
            outputs,
            produced: 0,
        }
    }

    /// Elements published through this collector so far.
    pub fn produced(&self) -> usize {
        self.produced
    }
}

impl<T: Clone> Collector<T> for PublishCollector<'_, T> {
    fn element(&mut self, e: Element<T>) {
        self.produced += 1;
        self.outputs.publish_element(e);
    }
    fn heartbeat(&mut self, t: Timestamp) {
        self.outputs.publish_heartbeat(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipes_time::Element;

    fn outputs() -> Outputs<i32> {
        Outputs::new(Arc::new(AtomicU64::new(0)))
    }

    #[test]
    fn fan_out_clones_to_all_subscribers() {
        let out = outputs();
        let e1 = Arc::new(Edge::new(1));
        let e2 = Arc::new(Edge::new(2));
        out.subscribe(Arc::clone(&e1));
        out.subscribe(Arc::clone(&e2));
        assert_eq!(out.subscriber_count(), 2);
        out.publish_element(Element::at(5, Timestamp::new(1)));
        assert_eq!(e1.len(), 1);
        assert_eq!(e2.len(), 1);
        // Both copies carry the same arrival sequence.
        assert_eq!(e1.pop().unwrap().0, e2.pop().unwrap().0);
    }

    #[test]
    fn heartbeat_deduplication() {
        let out = outputs();
        let e = Arc::new(Edge::new(1));
        out.subscribe(Arc::clone(&e));
        out.publish_heartbeat(Timestamp::new(5));
        out.publish_heartbeat(Timestamp::new(5)); // duplicate: suppressed
        out.publish_heartbeat(Timestamp::new(3)); // stale: suppressed
        out.publish_heartbeat(Timestamp::new(8));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn close_is_idempotent_and_primes_late_subscribers() {
        let out = outputs();
        let early = Arc::new(Edge::new(1));
        out.subscribe(Arc::clone(&early));
        out.publish_heartbeat(Timestamp::new(9));
        out.publish_close();
        out.publish_close();
        assert_eq!(early.len(), 2); // heartbeat + one close
        assert!(out.is_closed());

        let late = Arc::new(Edge::new(2));
        out.subscribe(Arc::clone(&late));
        // Late subscriber is primed with progress and the close.
        assert_eq!(
            late.pop().unwrap().1,
            Message::Heartbeat(Timestamp::new(9))
        );
        assert_eq!(late.pop().unwrap().1, Message::Close);
    }

    #[test]
    fn unsubscribe_detaches() {
        let out = outputs();
        let e = Arc::new(Edge::new(4));
        out.subscribe(Arc::clone(&e));
        assert!(out.unsubscribe(4));
        assert!(!out.unsubscribe(4));
        out.publish_element(Element::at(1, Timestamp::new(0)));
        assert!(e.is_empty());
    }

    #[test]
    fn publish_collector_counts() {
        let out = outputs();
        let e = Arc::new(Edge::new(1));
        out.subscribe(Arc::clone(&e));
        let mut c = PublishCollector::new(&out);
        c.element(Element::at(1, Timestamp::new(0)));
        c.element(Element::at(2, Timestamp::new(1)));
        c.heartbeat(Timestamp::new(2));
        assert_eq!(c.produced(), 2);
        assert_eq!(e.len(), 3);
    }
}
