//! Operator fusion: virtual nodes with direct hand-over.
//!
//! The first layer of the PIPES scheduling architecture merges multiple
//! succeeding nodes of a query graph into one *virtual node*. Inside a
//! virtual node, an upstream operator's results are handed to the downstream
//! operator by a plain function call — **no inter-operator queue exists** —
//! which is the overhead reduction the paper attributes to its inherent
//! publish-subscribe architecture.
//!
//! [`Fused`] composes two operators statically; chains of any length are
//! built by repeated [`OperatorExt::then`]. A fused chain is itself an
//! [`Operator`] and can be registered as a single graph node.

use crate::operator::{Collector, Operator};
use pipes_time::{Element, Message, Timestamp};

/// Extension methods available on every operator.
pub trait OperatorExt: Operator + Sized {
    /// Fuses `self` with `next` into a virtual node: the output of `self`
    /// feeds `next` through direct calls, with no queue in between.
    fn then<B>(self, next: B) -> Fused<Self, B>
    where
        B: Operator<In = Self::Out>,
    {
        Fused {
            a: self,
            b: next,
            mid: Vec::new(),
        }
    }
}

impl<O: Operator + Sized> OperatorExt for O {}

/// Two operators fused into one virtual node.
pub struct Fused<A: Operator, B> {
    a: A,
    b: B,
    /// Scratch for run-to-run hand-over: the upstream's output run, handed
    /// to the downstream as its input run. Capacity persists across runs.
    mid: Vec<Message<A::Out>>,
}

impl<A: Operator, B> Fused<A, B> {
    /// The upstream half.
    pub fn upstream(&self) -> &A {
        &self.a
    }

    /// The downstream half.
    pub fn downstream(&self) -> &B {
        &self.b
    }
}

/// Collector that forwards everything operator `a` emits straight into
/// operator `b`, whose own results go to the outer collector.
struct HandOver<'a, B: Operator> {
    b: &'a mut B,
    out: &'a mut dyn Collector<B::Out>,
}

impl<B: Operator> Collector<B::In> for HandOver<'_, B> {
    fn element(&mut self, e: Element<B::In>) {
        self.b.on_element(0, e, self.out);
    }
    fn heartbeat(&mut self, t: Timestamp) {
        self.b.on_heartbeat(0, t, self.out);
    }
}

impl<A, B> Operator for Fused<A, B>
where
    A: Operator,
    B: Operator<In = A::Out>,
{
    type In = A::In;
    type Out = B::Out;

    fn on_element(
        &mut self,
        port: usize,
        elem: Element<Self::In>,
        out: &mut dyn Collector<Self::Out>,
    ) {
        let mut hand = HandOver {
            b: &mut self.b,
            out,
        };
        self.a.on_element(port, elem, &mut hand);
    }

    fn on_heartbeat(&mut self, port: usize, t: Timestamp, out: &mut dyn Collector<Self::Out>) {
        let mut hand = HandOver {
            b: &mut self.b,
            out,
        };
        self.a.on_heartbeat(port, t, &mut hand);
    }

    /// Run-to-run composition: the upstream's output *batch* becomes the
    /// downstream's input *run*, so both halves keep their native run paths
    /// and the hand-over costs zero per-element virtual dispatch.
    ///
    /// The mid run is not heartbeat-coalesced: the upstream already saw a
    /// coalesced run, and the downstream's contract only requires the
    /// watermark to hold, which any well-behaved upstream preserves. Output
    /// equivalence with the per-message path holds because `b` sees the
    /// identical message sequence either way — `a` never observes `b`'s
    /// output, so deferring `b` until `a` finished the run changes nothing.
    fn on_run(
        &mut self,
        port: usize,
        run: &mut Vec<Message<Self::In>>,
        out: &mut dyn Collector<Self::Out>,
    ) {
        self.a.on_run(port, run, &mut self.mid);
        self.b.on_run(0, &mut self.mid, out);
        self.mid.clear();
    }

    fn on_close(&mut self, out: &mut dyn Collector<Self::Out>) {
        let mut hand = HandOver {
            b: &mut self.b,
            out,
        };
        self.a.on_close(&mut hand);
        self.b.on_close(out);
    }

    fn memory(&self) -> usize {
        self.a.memory() + self.b.memory()
    }

    fn state_bytes(&self) -> usize {
        self.a.state_bytes() + self.b.state_bytes()
    }

    fn shed(&mut self, target: usize) -> usize {
        // Split the target proportionally to current usage.
        let (ma, mb) = (self.a.memory(), self.b.memory());
        let total = ma + mb;
        if total == 0 {
            return 0;
        }
        let ta = target * ma / total;
        let tb = target.saturating_sub(ta);
        self.a.shed(ta) + self.b.shed(tb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipes_time::Message;

    struct AddOne;
    impl Operator for AddOne {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            out.element(e.map(|v| v + 1));
        }
    }

    struct KeepEven;
    impl Operator for KeepEven {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            if e.payload % 2 == 0 {
                out.element(e);
            }
        }
    }

    /// Buffers one element until close, to exercise on_close flushing.
    struct HoldLast(Option<Element<i64>>);
    impl Operator for HoldLast {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            if let Some(prev) = self.0.replace(e) {
                out.element(prev);
            }
        }
        fn on_close(&mut self, out: &mut dyn Collector<i64>) {
            if let Some(e) = self.0.take() {
                out.element(e);
            }
        }
        fn memory(&self) -> usize {
            usize::from(self.0.is_some())
        }
    }

    #[test]
    fn chain_of_three() {
        let mut op = AddOne.then(KeepEven).then(AddOne);
        let mut out: Vec<Message<i64>> = Vec::new();
        for (i, v) in [1i64, 2, 3, 4].iter().enumerate() {
            op.on_element(0, Element::at(*v, Timestamp::new(i as u64)), &mut out);
        }
        // 1→2→even→3 ; 2→3→odd dropped ; 3→4→even→5 ; 4→5→odd dropped
        let vals: Vec<i64> = out
            .into_iter()
            .filter_map(Message::into_element)
            .map(|e| e.payload)
            .collect();
        assert_eq!(vals, vec![3, 5]);
    }

    #[test]
    fn heartbeats_flow_through() {
        let mut op = AddOne.then(AddOne);
        let mut out: Vec<Message<i64>> = Vec::new();
        op.on_heartbeat(0, Timestamp::new(9), &mut out);
        assert_eq!(out, vec![Message::Heartbeat(Timestamp::new(9))]);
    }

    #[test]
    fn close_flushes_upstream_through_downstream() {
        let mut op = HoldLast(None).then(AddOne);
        let mut out: Vec<Message<i64>> = Vec::new();
        op.on_element(0, Element::at(10, Timestamp::new(0)), &mut out);
        assert!(out.is_empty());
        assert_eq!(op.memory(), 1);
        op.on_close(&mut out);
        let vals: Vec<i64> = out
            .into_iter()
            .filter_map(Message::into_element)
            .map(|e| e.payload)
            .collect();
        assert_eq!(vals, vec![11]);
        assert_eq!(op.memory(), 0);
    }
}
