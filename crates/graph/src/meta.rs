//! The metadata plane's derivation and consumption layer.
//!
//! [`QueryGraph::meta_snapshot`](crate::QueryGraph::meta_snapshot) collects
//! every node's live [`NodeMetaSnapshot`] (seqlock reads — never blocking
//! the stepping threads) together with the graph topology, then runs one
//! topology-aware propagation pass that fills in estimates for *cold*
//! nodes — just spliced in by the optimizer, or idle so long their
//! measurements exceeded the staleness bound — from warm upstream ones:
//!
//! * a warm node (fresh measurement) keeps its measured values, tagged
//!   [`Confidence::Measured`];
//! * a cold operator inherits `in_rate = Σ upstream out_rate` and applies a
//!   selectivity prior (its own stale measurement when it has one, the
//!   configured default otherwise) to derive `out_rate`, tagged
//!   [`Confidence::Derived`] — unless every upstream contribution was
//!   itself a prior, in which case the value chain never touched a
//!   measurement and the tag degrades to [`Confidence::Prior`];
//! * a cold source falls back to [`MetaConfig::default_source_rate`],
//!   tagged [`Confidence::Prior`].
//!
//! Node ids are assigned in subscription order, so every upstream id is
//! smaller than its consumer's id and a single forward pass in id order
//! sees all upstream estimates before deriving from them.
//!
//! Consumers: `pipes-optimizer` costs candidate plans against a snapshot
//! (`LiveCostSource`), the work-stealing scheduler's rebalancer weighs
//! groups by measured rates, `Monitor`/`pipes-top` render the series, and
//! [`MetaSnapshot::to_json`] is the machine-readable introspection dump.

use crate::graph::NodeKind;
use crate::operator::NodeId;
pub use pipes_meta::{NodeMetaSnapshot, META_COMPILED_OUT};

/// Tuning knobs for snapshot derivation.
#[derive(Clone, Copy, Debug)]
pub struct MetaConfig {
    /// A measurement older than this (seconds) is treated as cold and
    /// re-derived from upstream estimates.
    pub staleness_bound_secs: f64,
    /// Output rate assumed for a source with no fresh measurement,
    /// messages per second.
    pub default_source_rate: f64,
    /// Selectivity assumed for an operator that has never measured one.
    pub default_selectivity: f64,
}

impl Default for MetaConfig {
    fn default() -> Self {
        MetaConfig {
            staleness_bound_secs: 1.0,
            default_source_rate: 1000.0,
            default_selectivity: 1.0,
        }
    }
}

/// How much a [`NodeEstimate`]'s values can be trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    /// Static prior only — no measurement anywhere in the value chain.
    Prior,
    /// Derived from at least one fresh upstream measurement.
    Derived,
    /// Fresh measurement of this node itself.
    Measured,
}

/// One node's estimates within a [`MetaSnapshot`].
#[derive(Clone, Debug)]
pub struct NodeEstimate {
    /// The node id.
    pub id: NodeId,
    /// Display name given at registration.
    pub name: String,
    /// Node role.
    pub kind: NodeKind,
    /// Input rate, messages per second.
    pub in_rate: f64,
    /// Output rate, messages per second.
    pub out_rate: f64,
    /// Run-level selectivity (output / input messages).
    pub selectivity: f64,
    /// Variance of the run-level selectivity samples (0 when derived).
    pub selectivity_var: f64,
    /// Variance of inter-quantum arrival gaps, s² (0 when derived).
    pub interarrival_var: f64,
    /// Messages queued at the node's inputs at snapshot time.
    pub queue_len: usize,
    /// Operator state footprint in bytes.
    pub state_bytes: usize,
    /// Age of the underlying measurement in seconds; `None` when the node
    /// has never measured anything.
    pub age_secs: Option<f64>,
    /// Trust level of the rate/selectivity values.
    pub confidence: Confidence,
}

/// A consistent point-in-time view of every node's estimates, indexed by
/// node id ([`None`] entries are removed nodes).
#[derive(Clone, Debug, Default)]
pub struct MetaSnapshot {
    estimates: Vec<Option<NodeEstimate>>,
}

impl MetaSnapshot {
    /// The estimate for `id`, if the node exists and is not removed.
    pub fn get(&self, id: NodeId) -> Option<&NodeEstimate> {
        self.estimates.get(id).and_then(|e| e.as_ref())
    }

    /// Iterates over the live nodes' estimates in id order.
    pub fn iter(&self) -> impl Iterator<Item = &NodeEstimate> {
        self.estimates.iter().flatten()
    }

    /// Number of id slots (including removed nodes; ids are stable).
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Whether the snapshot covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }

    /// Renders the snapshot as a machine-readable JSON array (one object
    /// per live node, id order) for external introspection tooling.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for e in self.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let kind = match e.kind {
                NodeKind::Source => "source",
                NodeKind::Operator => "operator",
                NodeKind::Sink => "sink",
            };
            let confidence = match e.confidence {
                Confidence::Measured => "measured",
                Confidence::Derived => "derived",
                Confidence::Prior => "prior",
            };
            out.push_str(&format!(
                "{{\"id\":{},\"name\":\"{}\",\"kind\":\"{}\",\"in_rate\":{},\
                 \"out_rate\":{},\"selectivity\":{},\"selectivity_var\":{},\
                 \"interarrival_var\":{},\"queue_len\":{},\"state_bytes\":{},\
                 \"age_secs\":{},\"confidence\":\"{}\"}}",
                e.id,
                escape_json(&e.name),
                kind,
                json_num(e.in_rate),
                json_num(e.out_rate),
                json_num(e.selectivity),
                json_num(e.selectivity_var),
                json_num(e.interarrival_var),
                e.queue_len,
                e.state_bytes,
                e.age_secs.map_or("null".to_string(), json_num),
                confidence,
            ));
        }
        out.push(']');
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity literals; clamp them to null-safe zero.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Per-node raw material the graph hands to [`derive`]: topology plus the
/// node's live measurement, if any.
pub(crate) struct RawNode {
    pub name: String,
    pub kind: NodeKind,
    pub removed: bool,
    pub upstream: Vec<NodeId>,
    pub queue_len: usize,
    pub state_bytes: usize,
    pub meta: Option<NodeMetaSnapshot>,
}

/// The propagation pass: one forward sweep in id order (topological — see
/// module docs) turning raw measurements into a complete estimate set.
pub(crate) fn derive(raw: Vec<RawNode>, cfg: &MetaConfig) -> MetaSnapshot {
    let mut estimates: Vec<Option<NodeEstimate>> = Vec::with_capacity(raw.len());
    for (id, node) in raw.into_iter().enumerate() {
        if node.removed {
            estimates.push(None);
            continue;
        }
        let fresh = node
            .meta
            .as_ref()
            .filter(|m| m.is_fresh(cfg.staleness_bound_secs));
        let est = if let Some(m) = fresh {
            // Warm: trust the measurement as-is. A node without a single
            // consuming quantum yet reports the unit-selectivity
            // placeholder; sinks produce nothing by definition.
            NodeEstimate {
                id,
                name: node.name,
                kind: node.kind,
                in_rate: m.in_rate,
                out_rate: if node.kind == NodeKind::Sink {
                    0.0
                } else {
                    m.out_rate
                },
                selectivity: m.selectivity,
                selectivity_var: m.selectivity_var,
                interarrival_var: m.interarrival_var,
                queue_len: node.queue_len,
                state_bytes: node.state_bytes,
                age_secs: Some(m.age_secs),
                confidence: Confidence::Measured,
            }
        } else {
            // Cold: derive from upstream estimates (all already computed —
            // upstream ids are smaller). The selectivity prior prefers the
            // node's own stale measurement over the configured default.
            let mut in_rate = 0.0;
            let mut any_measured_chain = false;
            for up in &node.upstream {
                if let Some(Some(u)) = estimates.get(*up) {
                    in_rate += u.out_rate;
                    if u.confidence != Confidence::Prior {
                        any_measured_chain = true;
                    }
                }
            }
            let stale_sel = node
                .meta
                .as_ref()
                .filter(|m| m.selectivity_samples > 0)
                .map(|m| m.selectivity);
            let selectivity = stale_sel.unwrap_or(cfg.default_selectivity);
            let (in_rate, out_rate) = match node.kind {
                NodeKind::Source => (0.0, cfg.default_source_rate),
                NodeKind::Operator => (in_rate, in_rate * selectivity),
                NodeKind::Sink => (in_rate, 0.0),
            };
            let confidence = if node.kind != NodeKind::Source && any_measured_chain {
                Confidence::Derived
            } else {
                Confidence::Prior
            };
            NodeEstimate {
                id,
                name: node.name,
                kind: node.kind,
                in_rate,
                out_rate,
                selectivity,
                selectivity_var: 0.0,
                interarrival_var: 0.0,
                queue_len: node.queue_len,
                state_bytes: node.state_bytes,
                age_secs: node.meta.as_ref().map(|m| m.age_secs),
                confidence,
            }
        };
        estimates.push(Some(est));
    }
    MetaSnapshot { estimates }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm(in_rate: f64, out_rate: f64, sel: f64, samples: u64) -> Option<NodeMetaSnapshot> {
        Some(NodeMetaSnapshot {
            in_rate,
            out_rate,
            selectivity: sel,
            selectivity_var: 0.01,
            selectivity_samples: samples,
            interarrival_var: 0.0,
            state_bytes: 0,
            age_secs: 0.0,
        })
    }

    fn stale(mut m: Option<NodeMetaSnapshot>) -> Option<NodeMetaSnapshot> {
        if let Some(s) = m.as_mut() {
            s.age_secs = 10.0;
        }
        m
    }

    fn raw(kind: NodeKind, upstream: Vec<NodeId>, meta: Option<NodeMetaSnapshot>) -> RawNode {
        RawNode {
            name: format!("{kind:?}"),
            kind,
            removed: false,
            upstream,
            queue_len: 0,
            state_bytes: 0,
            meta,
        }
    }

    #[test]
    fn warm_chain_is_all_measured() {
        let snap = derive(
            vec![
                raw(NodeKind::Source, vec![], warm(0.0, 100.0, 1.0, 0)),
                raw(NodeKind::Operator, vec![0], warm(100.0, 50.0, 0.5, 8)),
                raw(NodeKind::Sink, vec![1], warm(50.0, 50.0, 1.0, 8)),
            ],
            &MetaConfig::default(),
        );
        assert!(snap.iter().all(|e| e.confidence == Confidence::Measured));
        assert_eq!(snap.get(1).unwrap().out_rate, 50.0);
        assert_eq!(snap.get(2).unwrap().out_rate, 0.0, "sinks emit nothing");
        assert_eq!(snap.len(), 3);
        assert!(!snap.is_empty());
    }

    #[test]
    fn cold_child_derives_from_warm_parent() {
        let snap = derive(
            vec![
                raw(NodeKind::Source, vec![], warm(0.0, 200.0, 1.0, 0)),
                raw(NodeKind::Operator, vec![0], None), // just spliced in
            ],
            &MetaConfig::default(),
        );
        let child = snap.get(1).unwrap();
        assert_eq!(child.confidence, Confidence::Derived);
        assert_eq!(child.in_rate, 200.0);
        assert_eq!(child.out_rate, 200.0, "default selectivity 1.0");
        assert_eq!(child.age_secs, None);
    }

    #[test]
    fn stale_node_reuses_own_selectivity_prior() {
        let snap = derive(
            vec![
                raw(NodeKind::Source, vec![], warm(0.0, 100.0, 1.0, 0)),
                raw(
                    NodeKind::Operator,
                    vec![0],
                    stale(warm(80.0, 20.0, 0.25, 50)),
                ),
            ],
            &MetaConfig::default(),
        );
        let op = snap.get(1).unwrap();
        assert_eq!(op.confidence, Confidence::Derived);
        assert_eq!(op.selectivity, 0.25, "stale measurement beats default");
        assert_eq!(op.out_rate, 25.0);
        assert_eq!(op.age_secs, Some(10.0), "staleness still reported");
    }

    #[test]
    fn all_cold_subgraph_degrades_to_priors() {
        let cfg = MetaConfig::default();
        let snap = derive(
            vec![
                raw(NodeKind::Source, vec![], None),
                raw(NodeKind::Operator, vec![0], None),
                raw(NodeKind::Sink, vec![1], None),
            ],
            &cfg,
        );
        assert!(snap.iter().all(|e| e.confidence == Confidence::Prior));
        assert_eq!(snap.get(0).unwrap().out_rate, cfg.default_source_rate);
        assert_eq!(snap.get(1).unwrap().out_rate, cfg.default_source_rate);
        assert_eq!(snap.get(2).unwrap().in_rate, cfg.default_source_rate);
    }

    #[test]
    fn diamond_cold_child_sums_both_parents() {
        let snap = derive(
            vec![
                raw(NodeKind::Source, vec![], warm(0.0, 100.0, 1.0, 0)),
                raw(NodeKind::Operator, vec![0], warm(100.0, 40.0, 0.4, 9)),
                raw(NodeKind::Operator, vec![0], warm(100.0, 70.0, 0.7, 9)),
                raw(NodeKind::Operator, vec![1, 2], None), // cold join
            ],
            &MetaConfig::default(),
        );
        let join = snap.get(3).unwrap();
        assert_eq!(join.confidence, Confidence::Derived);
        assert_eq!(join.in_rate, 110.0, "sum of both warm parents");
        assert_eq!(join.out_rate, 110.0);
    }

    #[test]
    fn removed_nodes_leave_holes_and_feed_nothing() {
        let mut gone = raw(NodeKind::Operator, vec![0], warm(10.0, 10.0, 1.0, 3));
        gone.removed = true;
        let snap = derive(
            vec![
                raw(NodeKind::Source, vec![], warm(0.0, 100.0, 1.0, 0)),
                gone,
                raw(NodeKind::Sink, vec![1], None),
            ],
            &MetaConfig::default(),
        );
        assert!(snap.get(1).is_none());
        let sink = snap.get(2).unwrap();
        assert_eq!(sink.in_rate, 0.0, "removed parent contributes nothing");
        assert_eq!(sink.confidence, Confidence::Prior);
    }

    #[test]
    fn json_dump_is_wellformed_and_escaped() {
        let mut named = raw(NodeKind::Source, vec![], warm(0.0, 1.5, 1.0, 0));
        named.name = "we\"ird\\name".to_string();
        let snap = derive(vec![named], &MetaConfig::default());
        let js = snap.to_json();
        assert!(js.starts_with('[') && js.ends_with(']'));
        assert!(js.contains("\"name\":\"we\\\"ird\\\\name\""), "got {js}");
        assert!(js.contains("\"confidence\":\"measured\""));
        assert!(js.contains("\"out_rate\":1.5"));
        assert!(js.contains("\"age_secs\":0"));
    }
}
