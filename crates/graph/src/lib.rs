//! # pipes-graph
//!
//! The publish–subscribe query-graph kernel of PIPES.
//!
//! A query graph is a directed acyclic graph of three node kinds:
//!
//! 1. a **source** transfers its elements to a set of subscribed sinks,
//! 2. a **sink** subscribes (and unsubscribes) to multiple sources and
//!    consumes all incoming elements while its subscription holds,
//! 3. an **operator** (*pipe*) combines both: it consumes an incoming
//!    element, processes it, and transfers results to its subscribed sinks.
//!
//! Two transport modes realize a subscription:
//!
//! * **queued** — an edge with a message queue decouples producer and
//!   consumer; the scheduler (`pipes-sched`) drains queues according to an
//!   exchangeable strategy,
//! * **direct** — adjacent operators are *fused* into a virtual node
//!   ([`fuse::Fused`], built with [`OperatorExt::then`]); inside a virtual
//!   node results are handed over by plain function calls, with **no
//!   inter-operator queue** — the overhead reduction the paper claims for
//!   its "novel approach" of direct interoperability.
//!
//! Subscriptions can be added and removed while the graph runs; this is the
//! mechanism by which the multi-query optimizer (`pipes-optimizer`) splices
//! new queries into a running graph.
//!
//! The crate knows nothing about scheduling policies or operator semantics;
//! it provides the kernel on which `pipes-ops` (algebra), `pipes-sched`
//! (strategies), and `pipes-mem` (memory management) are built.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edge;
pub mod fuse;
mod graph;
pub mod io;
pub mod meta;
mod node;
mod operator;
mod outputs;
pub mod run;
pub mod shuffle;
pub mod watermark;

pub use edge::{Edge, EdgeId};
pub use fuse::{Fused, OperatorExt};
pub use graph::{NodeInfo, NodeKind, QueryGraph, StreamHandle, WakeHook};
pub use meta::{Confidence, MetaConfig, MetaSnapshot, NodeEstimate};
pub use node::{BinNode, OpNode, Runnable, SinkNode, SourceNode, StepReport};
pub use operator::{BinaryOperator, Collector, NodeId, Operator, SinkOp, SourceOp, SourceStatus};
pub use outputs::{OutputPort, Outputs, PublishCollector};
pub use shuffle::{key_hash, KeyFn, KeyedState, MergeTie, Rekey, ShuffleGroup};
