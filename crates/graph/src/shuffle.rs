//! Keyed data parallelism: partition-by-key shuffle edges.
//!
//! A single stateful operator node processes its input sequentially, so one
//! hot join or aggregation caps the whole plan at one core no matter how
//! many workers the scheduler runs. This module splits such an operator
//! into **N keyed instances** behind a *shuffle edge*:
//!
//! ```text
//!            ┌──────────► instance #0 ─────────┐
//!  producer ─► partition ─► instance #1 ─► merge ─► consumers
//!            └──────────► instance #2 ─────────┘
//! ```
//!
//! * The **partition** stage drains the producer's runs and routes every
//!   element to `key(payload) % N`, *preserving the original arrival
//!   sequence stamps* (see [`Edge::push_stamped_batch`]). Heartbeats and
//!   `Close` are broadcast to all instances at their original stamp, so
//!   every instance observes the same temporal progress.
//! * Each **instance** is a real graph node with its own [`NodeMeta`],
//!   statistics and operator state. It processes its input in *chunks of
//!   consecutive arrival sequences* and stamps every output with the
//!   chunk's first sequence — exact, because a consecutive-sequence chunk
//!   by construction contains no message routed elsewhere, so the
//!   single-instance plan would have processed exactly this chunk at this
//!   point in arrival order.
//! * The **merge** stage restores global arrival order with the same
//!   cross-port run-bound discipline the multi-port nodes use: it only
//!   advances to the smallest head stamp once every open port has a head
//!   (per-port stamps are non-decreasing, so a later arrival can never
//!   undercut an observed head), drains the tie group in port order, and
//!   republishes through a regular [`Outputs`] port. Broadcast stamps
//!   (heartbeat/close flushes) can tie across instances; a [`MergeTie`]
//!   comparator restores the deterministic flush order of the
//!   single-instance operator there.
//!
//! The result is **byte-identical element output** to the single-instance
//! plan (property-tested in `crates/graph/tests/` and `crates/ops/tests/`)
//! while the instances scale across cores as independently stealable
//! nodes. `QueryGraph::parallelize` re-sizes a group against a *running*
//! graph: it freezes routing by parking the partitioner out of its cell,
//! drains and retires the old generation, moves the keyed state over (see
//! [`Rekey`]), and splices the new instances in through the hot-topology
//! path (topology-epoch bump, no stop/restart).

use crate::edge::Edge;
use crate::graph::{NodeCell, NodeKind, QueryGraph, StreamHandle};
use crate::node::{Runnable, StepReport};
use crate::operator::{BinaryOperator, Collector, NodeId, Operator};
use crate::outputs::{OutputPort, Outputs, PublishCollector, DEFAULT_FLUSH_CAP};
use pipes_meta::{NodeMeta, NodeStats};
use pipes_sync::atomic::{AtomicBool, Ordering};
use pipes_sync::{Arc, Mutex};
use pipes_time::{Element, Message, Timestamp};
use std::hash::{Hash, Hasher};

/// Hashes a key with a deterministic, build-stable hasher.
///
/// Both the partitioner's key functions and [`Rekey::export_keyed`] must
/// derive their `u64` from the *same* function of the key, or a
/// [`QueryGraph::parallelize`] state hand-off would route moved state to a
/// different instance than future elements of that key. Using this helper
/// on the extracted key satisfies the contract.
pub fn key_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    // DefaultHasher::new() uses fixed keys (unlike RandomState), so the
    // mapping is stable across nodes, threads and reruns of one build.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Key extractor of a shuffle edge: maps a payload to the `u64` key space
/// that the partitioner reduces modulo the instance count.
pub type KeyFn<T> = Arc<dyn Fn(&T) -> u64 + Send + Sync>;

/// Tie-break comparator for the merge stage.
///
/// Element outputs triggered by a *broadcast* message (heartbeat or close
/// flushes of an aggregation) carry the broadcast's stamp on every
/// instance, so the merge sees them as one tie group. The comparator must
/// reproduce the flush order of the single-instance operator (e.g. sorted
/// by group key); the merge applies it with a stable sort over the group,
/// so per-instance emission order breaks remaining ties. Operators that
/// only emit while processing elements (e.g. joins — element stamps are
/// unique per instance) don't need one.
pub type MergeTie<T> = Arc<dyn Fn(&Element<T>, &Element<T>) -> std::cmp::Ordering + Send + Sync>;

/// Keyed operator state in transit during a [`QueryGraph::parallelize`]
/// hand-off: `(routing hash, boxed per-key state)` pairs. The routing hash
/// must equal the partitioner's key-function output for elements of that
/// key (see [`key_hash`]).
pub type KeyedState = Vec<(u64, Box<dyn std::any::Any + Send>)>;

/// State hand-off contract for operators that can run behind a shuffle
/// edge. `parallelize` drains the retiring instances, exports their per-key
/// state, re-routes each entry by `hash % new_instance_count` and imports
/// it into the fresh instances — all while the partitioner is frozen, so
/// no element of a key is ever processed against moved-away state.
pub trait Rekey {
    /// Drains this operator's state into per-key entries. The operator is
    /// left empty (it is about to be retired).
    fn export_keyed(&mut self) -> KeyedState;
    /// Absorbs entries previously produced by
    /// [`export_keyed`](Rekey::export_keyed) on an operator of the same
    /// concrete type. Called on a freshly constructed operator, once,
    /// before it processes any message.
    fn import_keyed(&mut self, entries: KeyedState);
}

// ---------------------------------------------------------------------------
// Stamped output collection
// ---------------------------------------------------------------------------

/// A [`Collector`] that buffers `(stamp, message)` pairs, stamping every
/// emission with one fixed arrival sequence (the processed chunk's first
/// sequence). The instance pushes the buffer downstream with
/// [`Edge::push_stamped_batch`], preserving the stamps for the merge.
struct StampedCollector<'a, T> {
    buf: &'a mut Vec<(u64, Message<T>)>,
    stamp: u64,
}

impl<T> Collector<T> for StampedCollector<'_, T> {
    fn element(&mut self, e: Element<T>) {
        self.buf.push((self.stamp, Message::Element(e)));
    }
    fn heartbeat(&mut self, t: Timestamp) {
        self.buf.push((self.stamp, Message::Heartbeat(t)));
    }
    fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }
}

/// Splits a drained `(seq, message)` run into maximal chunks of
/// *consecutive* arrival sequences and dispatches each chunk with its first
/// sequence as the output stamp. Heartbeats are always their own chunk (so
/// flush output triggered by a broadcast carries exactly the broadcast's
/// stamp on every instance); `Close` ends the run and is returned to the
/// caller instead of being dispatched.
///
/// `on_chunk(chunk, stamp)` must process *and clear* the chunk.
fn dispatch_chunks<I>(
    drained: &mut Vec<(u64, Message<I>)>,
    chunk: &mut Vec<Message<I>>,
    mut on_chunk: impl FnMut(&mut Vec<Message<I>>, u64),
) -> Option<u64> {
    let mut close = None;
    let mut start = 0u64;
    let mut next = 0u64;
    for (seq, msg) in drained.drain(..) {
        match msg {
            Message::Element(_) => {
                if !chunk.is_empty() && seq != next {
                    on_chunk(chunk, start);
                }
                if chunk.is_empty() {
                    start = seq;
                }
                chunk.push(msg);
                next = seq + 1;
            }
            Message::Heartbeat(_) => {
                if !chunk.is_empty() {
                    on_chunk(chunk, start);
                }
                chunk.push(msg);
                on_chunk(chunk, seq);
            }
            Message::Close => {
                if !chunk.is_empty() {
                    on_chunk(chunk, start);
                }
                close = Some(seq);
            }
        }
    }
    if !chunk.is_empty() {
        on_chunk(chunk, start);
    }
    close
}

// ---------------------------------------------------------------------------
// Partition node
// ---------------------------------------------------------------------------

/// Routes a producer's runs across the per-instance input edges by key,
/// preserving original arrival stamps. Not a public node kind: built by
/// [`QueryGraph::add_keyed_unary`] / [`QueryGraph::add_keyed_binary`].
pub(crate) struct PartitionNode<T> {
    input: Arc<Edge<T>>,
    key: KeyFn<T>,
    targets: Vec<Arc<Edge<T>>>,
    /// One routing buffer per target, flushed every step (so between steps
    /// all routed messages are on the wire and the buffers are empty —
    /// `parallelize` relies on this to drain a frozen group exactly).
    buffers: Vec<Vec<(u64, Message<T>)>>,
    scratch: Vec<(u64, Message<T>)>,
    batch_limit: usize,
    closed: bool,
}

impl<T> PartitionNode<T> {
    fn new(input: Arc<Edge<T>>, key: KeyFn<T>, targets: Vec<Arc<Edge<T>>>) -> Self {
        let mut buffers = Vec::new();
        buffers.resize_with(targets.len(), Vec::new);
        PartitionNode {
            input,
            key,
            targets,
            buffers,
            scratch: Vec::new(),
            batch_limit: usize::MAX,
            closed: false,
        }
    }

    /// Whether this partitioner has routed `Close` (its upstream ended).
    pub(crate) fn is_closed(&self) -> bool {
        self.closed
    }

    /// Replaces the routing targets (the expansion path of
    /// [`QueryGraph::parallelize`]; callers hold this node's runnable lock,
    /// which freezes routing for the whole splice).
    pub(crate) fn retarget(&mut self, targets: Vec<Arc<Edge<T>>>) {
        self.targets = targets;
        self.buffers.clear();
        self.buffers.resize_with(self.targets.len(), Vec::new);
    }
}

impl<T: Send + Clone + 'static> Runnable for PartitionNode<T> {
    fn step(&mut self, budget: usize) -> StepReport {
        let max = budget.min(self.batch_limit);
        let n = self.input.pop_run(max, u64::MAX, &mut self.scratch);
        if n == 0 {
            return StepReport::default();
        }
        let k = self.targets.len();
        let mut routed = 0usize;
        for (seq, msg) in self.scratch.drain(..) {
            match msg {
                Message::Element(e) => {
                    let slot = ((self.key)(&e.payload) % k as u64) as usize;
                    self.buffers[slot].push((seq, Message::Element(e)));
                    routed += 1;
                }
                Message::Heartbeat(t) => {
                    // Broadcast at the original stamp: every instance sees
                    // the same temporal progress, and the merge re-unifies
                    // the copies into one tie group.
                    for buf in &mut self.buffers {
                        buf.push((seq, Message::Heartbeat(t)));
                    }
                    routed += k;
                }
                Message::Close => {
                    for buf in &mut self.buffers {
                        buf.push((seq, Message::Close));
                    }
                    self.closed = true;
                    routed += k;
                }
            }
        }
        for (edge, buf) in self.targets.iter().zip(self.buffers.iter_mut()) {
            edge.push_stamped_batch(buf);
        }
        pipes_trace::instant(
            pipes_trace::names::SHUFFLE,
            [n as u64, k as u64, routed as u64],
        );
        StepReport {
            consumed: n,
            // Counts every routed message (elements once, broadcasts per
            // instance): this is what drives downstream wake hooks.
            produced: routed,
            batches: 1,
            peak_run: n,
        }
    }

    fn queued(&self) -> usize {
        self.input.len()
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        self.input.head_seq()
    }

    fn is_finished(&self) -> bool {
        self.closed && self.input.is_empty()
    }

    fn memory(&self) -> usize {
        0
    }

    fn shed(&mut self, _target: usize) -> usize {
        0
    }

    fn set_batch_limit(&mut self, limit: usize) {
        self.batch_limit = limit.max(1);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// Keyed instance nodes
// ---------------------------------------------------------------------------

/// One keyed instance of a unary operator behind a shuffle edge.
pub(crate) struct KeyedInstance<O: Operator> {
    pub(crate) op: O,
    input: Arc<Edge<O::In>>,
    out: Arc<Edge<O::Out>>,
    drained: Vec<(u64, Message<O::In>)>,
    chunk: Vec<Message<O::In>>,
    out_buf: Vec<(u64, Message<O::Out>)>,
    batch_limit: usize,
    closed: bool,
}

impl<O: Operator> KeyedInstance<O> {
    fn new(op: O, input: Arc<Edge<O::In>>, out: Arc<Edge<O::Out>>) -> Self {
        KeyedInstance {
            op,
            input,
            out,
            drained: Vec::new(),
            chunk: Vec::new(),
            out_buf: Vec::new(),
            batch_limit: usize::MAX,
            closed: false,
        }
    }
}

impl<O: Operator> Runnable for KeyedInstance<O> {
    fn step(&mut self, budget: usize) -> StepReport {
        if self.closed {
            return StepReport::default();
        }
        let max = budget.min(self.batch_limit);
        let n = self.input.pop_run(max, u64::MAX, &mut self.drained);
        if n == 0 {
            return StepReport::default();
        }
        let op = &mut self.op;
        let out_buf = &mut self.out_buf;
        let close = dispatch_chunks(&mut self.drained, &mut self.chunk, |chunk, stamp| {
            let mut col = StampedCollector {
                buf: out_buf,
                stamp,
            };
            op.on_run(0, chunk, &mut col);
            chunk.clear();
        });
        if let Some(c) = close {
            let mut col = StampedCollector {
                buf: out_buf,
                stamp: c,
            };
            op.on_close(&mut col);
            out_buf.push((c, Message::Close));
            self.closed = true;
        }
        let pushed = self.out_buf.len();
        self.out.push_stamped_batch(&mut self.out_buf);
        StepReport {
            consumed: n,
            // Counts all messages handed to the merge (incl. forwarded
            // heartbeats), so wake hooks fire whenever the merge gained
            // anything to order.
            produced: pushed,
            batches: 1,
            peak_run: n,
        }
    }

    fn queued(&self) -> usize {
        self.input.len()
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        self.input.head_seq()
    }

    fn is_finished(&self) -> bool {
        self.closed
    }

    fn memory(&self) -> usize {
        self.op.memory()
    }

    fn state_bytes(&self) -> usize {
        self.op.state_bytes()
    }

    fn shed(&mut self, target: usize) -> usize {
        self.op.shed(target)
    }

    fn set_batch_limit(&mut self, limit: usize) {
        self.batch_limit = limit.max(1);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// One keyed instance of a binary operator (both sides partitioned by the
/// join key) behind a pair of shuffle edges.
pub(crate) struct KeyedInstanceBin<B: BinaryOperator> {
    pub(crate) op: B,
    left: Arc<Edge<B::Left>>,
    right: Arc<Edge<B::Right>>,
    out: Arc<Edge<B::Out>>,
    l_drained: Vec<(u64, Message<B::Left>)>,
    l_chunk: Vec<Message<B::Left>>,
    r_drained: Vec<(u64, Message<B::Right>)>,
    r_chunk: Vec<Message<B::Right>>,
    out_buf: Vec<(u64, Message<B::Out>)>,
    left_close: Option<u64>,
    right_close: Option<u64>,
    batch_limit: usize,
    closed: bool,
}

impl<B: BinaryOperator> KeyedInstanceBin<B> {
    fn new(
        op: B,
        left: Arc<Edge<B::Left>>,
        right: Arc<Edge<B::Right>>,
        out: Arc<Edge<B::Out>>,
    ) -> Self {
        KeyedInstanceBin {
            op,
            left,
            right,
            out,
            l_drained: Vec::new(),
            l_chunk: Vec::new(),
            r_drained: Vec::new(),
            r_chunk: Vec::new(),
            out_buf: Vec::new(),
            left_close: None,
            right_close: None,
            batch_limit: usize::MAX,
            closed: false,
        }
    }
}

impl<B: BinaryOperator> Runnable for KeyedInstanceBin<B> {
    fn step(&mut self, budget: usize) -> StepReport {
        if self.closed {
            return StepReport::default();
        }
        let mut consumed = 0usize;
        let mut batches = 0usize;
        let mut peak = 0usize;
        while consumed < budget {
            // Smaller head first, ties to the left (same rule as the run
            // bounds below) — but unlike BinNode, an empty open port does
            // NOT license draining the other side: BinNode's ports are fed
            // at publish time, so everything still to come outranks what is
            // queued, while this instance's ports are fed by partitioners
            // that can lag behind the published stream. A smaller sequence
            // may still be in transit, so hold a strict frontier (same
            // discipline as the merge stage) until both ports have a head
            // or the silent side has delivered its Close.
            let l_closed = self.left_close.is_some();
            let r_closed = self.right_close.is_some();
            let ls = if l_closed { None } else { self.left.head_seq() };
            let rs = if r_closed {
                None
            } else {
                self.right.head_seq()
            };
            let take_left = match (ls, rs) {
                (Some(l), Some(r)) => l <= r,
                (Some(_), None) if r_closed => true,
                (None, Some(_)) if l_closed => false,
                _ => break,
            };
            let max = (budget - consumed).min(self.batch_limit);
            let op = &mut self.op;
            let out_buf = &mut self.out_buf;
            let n = if take_left {
                let bound = rs.unwrap_or(u64::MAX);
                let n = self.left.pop_run(max, bound, &mut self.l_drained);
                let close =
                    dispatch_chunks(&mut self.l_drained, &mut self.l_chunk, |chunk, stamp| {
                        op.on_run_left(
                            chunk,
                            &mut StampedCollector {
                                buf: out_buf,
                                stamp,
                            },
                        );
                        chunk.clear();
                    });
                if close.is_some() {
                    self.left_close = close;
                }
                n
            } else {
                let bound = ls.map_or(u64::MAX, |l| l.saturating_sub(1));
                let n = self.right.pop_run(max, bound, &mut self.r_drained);
                let close =
                    dispatch_chunks(&mut self.r_drained, &mut self.r_chunk, |chunk, stamp| {
                        op.on_run_right(
                            chunk,
                            &mut StampedCollector {
                                buf: out_buf,
                                stamp,
                            },
                        );
                        chunk.clear();
                    });
                if close.is_some() {
                    self.right_close = close;
                }
                n
            };
            if n == 0 {
                break;
            }
            consumed += n;
            peak = peak.max(n);
            batches += 1;
        }
        if let (Some(cl), Some(cr)) = (self.left_close, self.right_close) {
            // Both sides ended. The close stamp is the same on every
            // instance (closes are broadcast), so the merge unifies the
            // per-instance closes into one tie group.
            let c = cl.max(cr);
            self.op.on_close(&mut StampedCollector {
                buf: &mut self.out_buf,
                stamp: c,
            });
            self.out_buf.push((c, Message::Close));
            self.closed = true;
        }
        let pushed = self.out_buf.len();
        self.out.push_stamped_batch(&mut self.out_buf);
        StepReport {
            consumed,
            produced: pushed,
            batches,
            peak_run: peak,
        }
    }

    fn queued(&self) -> usize {
        // An empty open port blocks the strict frontier (see `step`):
        // reporting the other side's backlog would make seq-ordered
        // strategies spin on this instance while the node that feeds the
        // empty port starves.
        let l_blocked = self.left_close.is_none() && self.left.is_empty();
        let r_blocked = self.right_close.is_none() && self.right.is_empty();
        if l_blocked || r_blocked {
            return 0;
        }
        self.left.len() + self.right.len()
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        if self.queued() == 0 {
            return None;
        }
        match (self.left.head_seq(), self.right.head_seq()) {
            (Some(l), Some(r)) => Some(l.min(r)),
            (l, r) => l.or(r),
        }
    }

    fn is_finished(&self) -> bool {
        self.closed
    }

    fn memory(&self) -> usize {
        self.op.memory()
    }

    fn state_bytes(&self) -> usize {
        self.op.state_bytes()
    }

    fn shed(&mut self, target: usize) -> usize {
        self.op.shed(target)
    }

    fn set_batch_limit(&mut self, limit: usize) {
        self.batch_limit = limit.max(1);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// Merge node
// ---------------------------------------------------------------------------

struct MergePort<T> {
    edge: Arc<Edge<T>>,
    open: bool,
}

/// Restores global arrival order across the instance output edges and
/// republishes through a regular [`Outputs`] port.
pub(crate) struct MergeNode<T: Clone> {
    ports: Vec<MergePort<T>>,
    outputs: Arc<Outputs<T>>,
    tie: Option<MergeTie<T>>,
    scratch: Vec<(u64, Message<T>)>,
    elems: Vec<Element<T>>,
    out_scratch: Vec<Message<T>>,
    batch_limit: usize,
    closed_downstream: bool,
}

impl<T: Clone> MergeNode<T> {
    fn new(edges: Vec<Arc<Edge<T>>>, outputs: Arc<Outputs<T>>, tie: Option<MergeTie<T>>) -> Self {
        MergeNode {
            ports: edges
                .into_iter()
                .map(|edge| MergePort { edge, open: true })
                .collect(),
            outputs,
            tie,
            scratch: Vec::new(),
            elems: Vec::new(),
            out_scratch: Vec::new(),
            batch_limit: usize::MAX,
            closed_downstream: false,
        }
    }

    /// Attaches a new instance output port ([`QueryGraph::parallelize`]
    /// expansion; callers hold this node's runnable lock).
    pub(crate) fn add_port(&mut self, edge: Arc<Edge<T>>) {
        self.ports.push(MergePort { edge, open: true });
    }
}

impl<T: Clone + Send + 'static> Runnable for MergeNode<T> {
    fn step(&mut self, budget: usize) -> StepReport {
        if self.closed_downstream {
            return StepReport::default();
        }
        let outputs = Arc::clone(&self.outputs);
        let mut buf = std::mem::take(&mut self.out_scratch);
        let mut consumed = 0usize;
        let mut batches = 0usize;
        let mut peak = 0usize;
        let produced;
        {
            let mut col = PublishCollector::new(&outputs, &mut buf)
                .with_flush_cap(self.batch_limit.min(DEFAULT_FLUSH_CAP));
            // The budget may overrun by one tie group: a group must be
            // emitted atomically or a mid-group cut would interleave its
            // sorted flush output with the next stamp's.
            'quantum: while consumed < budget {
                let mut min: Option<u64> = None;
                for p in &self.ports {
                    if !p.open {
                        continue;
                    }
                    match p.edge.head_seq() {
                        // Strict rule: an open port without a head gates
                        // progress — its next delivery could still carry
                        // the smallest stamp. Liveness comes from
                        // broadcast heartbeats: every instance forwards
                        // them, so no open port stays empty while the
                        // stream advances.
                        None => break 'quantum,
                        Some(s) => {
                            if min.is_none_or(|m| s < m) {
                                min = Some(s);
                            }
                        }
                    }
                }
                let Some(min) = min else { break };
                let mut scratch = std::mem::take(&mut self.scratch);
                let mut elems = std::mem::take(&mut self.elems);
                let mut hb: Option<Timestamp> = None;
                for p in self.ports.iter_mut() {
                    if !p.open {
                        continue;
                    }
                    // Per-port stamps are non-decreasing, so everything at
                    // stamp `min` is drained by one bounded run; ports
                    // whose head is newer contribute nothing.
                    let n = p.edge.pop_run(usize::MAX, min, &mut scratch);
                    if n == 0 {
                        continue;
                    }
                    consumed += n;
                    peak = peak.max(n);
                    batches += 1;
                    for (_, msg) in scratch.drain(..) {
                        match msg {
                            Message::Element(e) => elems.push(e),
                            Message::Heartbeat(t) => {
                                hb = Some(hb.map_or(t, |h| h.max(t)));
                            }
                            Message::Close => p.open = false,
                        }
                    }
                }
                if let Some(tie) = &self.tie {
                    if elems.len() > 1 {
                        // Stable: per-port emission order breaks ties the
                        // comparator leaves open.
                        elems.sort_by(|a, b| tie(a, b));
                    }
                }
                for e in elems.drain(..) {
                    col.element(e);
                }
                if let Some(t) = hb {
                    col.heartbeat(t);
                }
                self.scratch = scratch;
                self.elems = elems;
            }
            produced = col.finish();
        }
        self.out_scratch = buf;
        if self.ports.iter().all(|p| !p.open) {
            self.outputs.publish_close();
            self.closed_downstream = true;
        }
        StepReport {
            consumed,
            produced,
            batches,
            peak_run: peak,
        }
    }

    /// Advertises runnable work only when the strict frontier can advance:
    /// with any open port empty a step consumes nothing, and the blocked
    /// head is the *globally oldest* queued seq — reporting it would make
    /// seq-ordered strategies (FIFO) spin on the merge for their whole
    /// idle valve instead of stepping the lagging instance that would
    /// unblock it.
    fn queued(&self) -> usize {
        let mut total = 0;
        for p in &self.ports {
            if !p.open {
                continue;
            }
            let len = p.edge.len();
            if len == 0 {
                return 0;
            }
            total += len;
        }
        total
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        if self.queued() == 0 {
            return None;
        }
        self.ports
            .iter()
            .filter(|p| p.open)
            .filter_map(|p| p.edge.head_seq())
            .min()
    }

    fn is_finished(&self) -> bool {
        self.closed_downstream
    }

    fn memory(&self) -> usize {
        0
    }

    fn shed(&mut self, _target: usize) -> usize {
        0
    }

    fn set_batch_limit(&mut self, limit: usize) {
        self.batch_limit = limit.max(1);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

type ExpandFn = dyn Fn(&QueryGraph, usize) -> Vec<NodeId> + Send + Sync;

struct GroupEntry {
    name: String,
    /// The merge node's id doubles as the group handle (it is the id on the
    /// [`StreamHandle`] the builder returned, so callers already hold it).
    handle: NodeId,
    partition_ids: Vec<NodeId>,
    instance_ids: Vec<NodeId>,
    expand: Arc<ExpandFn>,
}

/// Registered shuffle groups of one graph (see [`QueryGraph::parallelize`]).
pub(crate) struct ShuffleRegistry {
    groups: Mutex<Vec<GroupEntry>>,
}

impl Default for ShuffleRegistry {
    fn default() -> Self {
        ShuffleRegistry {
            groups: Mutex::new(Vec::new()),
        }
    }
}

impl ShuffleRegistry {
    fn register(&self, entry: GroupEntry) {
        self.groups.lock().push(entry);
    }

    fn expander(&self, handle: NodeId) -> Option<Arc<ExpandFn>> {
        self.groups
            .lock()
            .iter()
            .find(|g| g.handle == handle)
            .map(|g| Arc::clone(&g.expand))
    }

    fn set_instances(&self, handle: NodeId, ids: Vec<NodeId>) {
        if let Some(g) = self.groups.lock().iter_mut().find(|g| g.handle == handle) {
            g.instance_ids = ids;
        }
    }

    /// Ids of every node that belongs to a shuffle group (partition,
    /// instance and merge nodes). Partition/instance nodes publish through
    /// raw stamped edges rather than an output port, so topology passes
    /// that reason about `subscriber_count` (dangling-producer collection)
    /// must treat them as internally consumed.
    pub(crate) fn member_ids(&self) -> Vec<NodeId> {
        let groups = self.groups.lock();
        let mut out = Vec::new();
        for g in groups.iter() {
            out.extend_from_slice(&g.partition_ids);
            out.extend_from_slice(&g.instance_ids);
            out.push(g.handle);
        }
        out
    }

    fn snapshot(&self) -> Vec<ShuffleGroup> {
        self.groups
            .lock()
            .iter()
            .map(|g| ShuffleGroup {
                name: g.name.clone(),
                handle: g.handle,
                partition_ids: g.partition_ids.clone(),
                instance_ids: g.instance_ids.clone(),
            })
            .collect()
    }
}

/// Placeholder parked in a partition cell while `parallelize` owns the
/// real partitioner (see [`take_runnable`]). It reports an idle,
/// unfinished node: workers that reach it during the splice window see no
/// work, and upstream messages queue on the shared input edge with their
/// original stamps until the partitioner is restored.
struct ParkedPartition;

impl Runnable for ParkedPartition {
    fn step(&mut self, _budget: usize) -> StepReport {
        StepReport::default()
    }
    fn queued(&self) -> usize {
        0
    }
    fn oldest_pending_seq(&self) -> Option<u64> {
        None
    }
    fn is_finished(&self) -> bool {
        false
    }
    fn memory(&self) -> usize {
        0
    }
    fn shed(&mut self, _target: usize) -> usize {
        0
    }
}

/// Takes a node's runnable out of its cell, parking a [`ParkedPartition`]
/// in its place. Owning the box freezes routing as surely as holding the
/// cell's lock — nobody else can reach the partitioner — but leaves the
/// lock free, so the splice can lock instance and merge cells one at a
/// time instead of nesting runnable locks.
fn take_runnable(g: &QueryGraph, id: NodeId) -> Box<dyn Runnable> {
    let cell = g.cell(id);
    let mut guard = cell.runnable.lock();
    std::mem::replace(&mut *guard, Box::new(ParkedPartition))
}

/// Puts a runnable taken by [`take_runnable`] back into its cell.
fn restore_runnable(g: &QueryGraph, id: NodeId, runnable: Box<dyn Runnable>) {
    let cell = g.cell(id);
    *cell.runnable.lock() = runnable;
}

/// Replays a retiring generation's unprocessed input backlog through the
/// new routing at its original stamps, returning whether a `Close` was
/// among it. Everything still inside the (parked) partitioner has a larger
/// sequence — it routes in arrival order — so the fresh edges stay
/// monotonic. Equal stamps in the backlog are broadcast copies of one
/// heartbeat/Close gathered from several instances; the caller dedups.
fn replay_backlog<T: Send + Clone + 'static>(
    backlog: Vec<(u64, Message<T>)>,
    key: &crate::shuffle::KeyFn<T>,
    edges: &[Arc<Edge<T>>],
) -> bool {
    let mut saw_close = false;
    for (s, msg) in backlog {
        match msg {
            Message::Element(e) => {
                let slot = ((key)(&e.payload) % edges.len() as u64) as usize;
                edges[slot].push(s, Message::Element(e));
            }
            Message::Heartbeat(t) => {
                for e in edges {
                    e.push(s, Message::Heartbeat(t));
                }
            }
            Message::Close => {
                saw_close = true;
                for e in edges {
                    e.push(s, Message::Close);
                }
            }
        }
    }
    saw_close
}

/// Snapshot of one keyed-parallel group (see
/// [`QueryGraph::shuffle_groups`]).
#[derive(Clone, Debug)]
pub struct ShuffleGroup {
    /// The name the group was registered under.
    pub name: String,
    /// The merge node's id — the handle accepted by
    /// [`QueryGraph::parallelize`] and the node id on the group's output
    /// [`StreamHandle`].
    pub handle: NodeId,
    /// The partition node ids (one for unary groups, two for binary).
    pub partition_ids: Vec<NodeId>,
    /// The current generation's instance node ids.
    pub instance_ids: Vec<NodeId>,
}

// ---------------------------------------------------------------------------
// Graph builders + live expansion
// ---------------------------------------------------------------------------

/// One live instance: its node id, input edge and output edge.
type UnaryInstance<O> =
    (NodeId, Arc<Edge<<O as Operator>::In>>, Arc<Edge<<O as Operator>::Out>>);

struct UnaryGroup<O: Operator> {
    instances: Vec<UnaryInstance<O>>,
    next_idx: usize,
}

struct BinaryGroup<B: BinaryOperator> {
    #[allow(clippy::type_complexity)]
    instances: Vec<(
        NodeId,
        Arc<Edge<B::Left>>,
        Arc<Edge<B::Right>>,
        Arc<Edge<B::Out>>,
    )>,
    next_idx: usize,
}

fn instance_cell(
    name: String,
    runnable: Box<dyn Runnable>,
    incoming: Vec<(NodeId, crate::edge::EdgeId)>,
) -> NodeCell {
    let stats = Arc::new(NodeStats::new(&name));
    NodeCell {
        name,
        kind: NodeKind::Operator,
        runnable: Mutex::new(runnable),
        stats,
        meta: Arc::new(NodeMeta::new()),
        out_port: None,
        incoming: Mutex::new(incoming),
        removed: AtomicBool::new(false),
    }
}

impl QueryGraph {
    /// Registers a **keyed-parallel** unary operator: `instances` copies of
    /// the operator built by `factory`, fed through a hash-by-key partition
    /// stage and re-unified by an order-restoring merge stage. The returned
    /// handle publishes the merged stream; its node id is the group handle
    /// accepted by [`QueryGraph::parallelize`].
    ///
    /// Element output is byte-identical to
    /// `add_unary(name, factory(), input)` as long as the operator's
    /// per-key state is independent across keys (the premise of keyed
    /// parallelism) — see the module docs for the ordering argument. `tie`
    /// orders flush output that multiple instances emit at one broadcast
    /// stamp (see [`MergeTie`]); operators that only emit while processing
    /// elements may pass `None`.
    pub fn add_keyed_unary<O, F>(
        &self,
        name: &str,
        factory: F,
        key: KeyFn<O::In>,
        instances: usize,
        tie: Option<MergeTie<O::Out>>,
        input: &StreamHandle<O::In>,
    ) -> StreamHandle<O::Out>
    where
        O: Operator + Rekey,
        O::In: Sync,
        O::Out: Send + Sync,
        F: Fn() -> O + Send + Sync + 'static,
    {
        assert!(instances >= 1, "keyed operator needs at least one instance");
        let factory = Arc::new(factory);
        let part_edge = self.new_edge::<O::In>();
        input.outputs.subscribe(Arc::clone(&part_edge));
        let in_edges: Vec<_> = (0..instances).map(|_| self.new_edge::<O::In>()).collect();
        let out_edges: Vec<_> = (0..instances).map(|_| self.new_edge::<O::Out>()).collect();

        let part = PartitionNode::new(Arc::clone(&part_edge), Arc::clone(&key), in_edges.clone());
        let part_id = self.push_node(instance_cell(
            format!("{name}.part"),
            Box::new(part),
            vec![(input.node, part_edge.id())],
        ));

        let mut inst_list = Vec::with_capacity(instances);
        let mut instance_ids = Vec::with_capacity(instances);
        for i in 0..instances {
            let inst = KeyedInstance::new(
                (factory)(),
                Arc::clone(&in_edges[i]),
                Arc::clone(&out_edges[i]),
            );
            let id = self.push_node(instance_cell(
                format!("{name}#{i}"),
                Box::new(inst),
                vec![(part_id, in_edges[i].id())],
            ));
            inst_list.push((id, Arc::clone(&in_edges[i]), Arc::clone(&out_edges[i])));
            instance_ids.push(id);
        }

        let outputs = Arc::new(Outputs::new(Arc::clone(&self.seq)));
        let merge = MergeNode::new(out_edges, Arc::clone(&outputs), tie);
        let merge_name = format!("{name}.merge");
        let merge_id = self.push_node(NodeCell {
            name: merge_name.clone(),
            kind: NodeKind::Operator,
            runnable: Mutex::new(Box::new(merge)),
            stats: Arc::new(NodeStats::new(&merge_name)),
            meta: Arc::new(NodeMeta::new()),
            out_port: Some(Arc::clone(&outputs) as Arc<dyn OutputPort>),
            incoming: Mutex::new(
                inst_list
                    .iter()
                    .map(|(id, _, out_e)| (*id, out_e.id()))
                    .collect(),
            ),
            removed: AtomicBool::new(false),
        });
        self.refresh_subscriber_counts([input.node]);

        let state = Arc::new(Mutex::new(UnaryGroup::<O> {
            instances: inst_list,
            next_idx: instances,
        }));
        let gname = name.to_string();
        let expand: Arc<ExpandFn> = Arc::new(move |g: &QueryGraph, n_new: usize| {
            assert!(n_new >= 1, "parallelize needs at least one instance");
            let mut st = state.lock();
            // Freeze routing for the whole splice: take the partitioner
            // out of its cell and park a placeholder there. Owning the box
            // stops all routing while state is in transit — workers step
            // the placeholder, a no-op — without holding its runnable lock
            // across the instance and merge locks below, so no two
            // runnable locks are ever held at once.
            let mut part_box = take_runnable(g, part_id);
            let part = part_box
                .as_any_mut()
                .and_then(|a| a.downcast_mut::<PartitionNode<O::In>>())
                .expect("shuffle partition node changed type");
            // Drain the retiring generation: with routing frozen and the
            // partition buffers empty between steps, the instance queues
            // hold every routed-but-unprocessed message.
            for (id, _, _) in &st.instances {
                while g.queued(*id) > 0 {
                    g.step_node(*id, usize::MAX);
                }
            }
            let was_closed = part.is_closed();
            // Move the keyed state out of the old instances…
            let mut exported: KeyedState = Vec::new();
            for (id, _, _) in &st.instances {
                let cell = g.cell(*id);
                let mut guard = cell.runnable.lock();
                let inst = guard
                    .as_any_mut()
                    .and_then(|a| a.downcast_mut::<KeyedInstance<O>>())
                    .expect("shuffle instance node changed type");
                exported.append(&mut inst.op.export_keyed());
            }
            // …and re-route it across the new instance count.
            let mut split: Vec<KeyedState> = (0..n_new).map(|_| Vec::new()).collect();
            for entry in exported {
                let slot = (entry.0 % n_new as u64) as usize;
                split[slot].push(entry);
            }
            let mut new_ids = Vec::with_capacity(n_new);
            let mut new_in = Vec::with_capacity(n_new);
            let mut new_list = Vec::with_capacity(n_new);
            for part_state in split {
                let mut op = (factory)();
                op.import_keyed(part_state);
                let in_e = g.new_edge::<O::In>();
                let out_e = g.new_edge::<O::Out>();
                let idx = st.next_idx;
                st.next_idx += 1;
                let inst = KeyedInstance::new(op, Arc::clone(&in_e), Arc::clone(&out_e));
                let id = g.push_node(instance_cell(
                    format!("{gname}#{idx}"),
                    Box::new(inst),
                    vec![(part_id, in_e.id())],
                ));
                new_ids.push(id);
                new_in.push(Arc::clone(&in_e));
                new_list.push((id, in_e, out_e));
            }
            {
                let merge_cell = g.cell(merge_id);
                let mut mg = merge_cell.runnable.lock();
                let merge = mg
                    .as_any_mut()
                    .and_then(|a| a.downcast_mut::<MergeNode<O::Out>>())
                    .expect("shuffle merge node changed type");
                for (_, _, out_e) in &new_list {
                    merge.add_port(Arc::clone(out_e));
                }
                let old_ids: std::collections::HashSet<NodeId> =
                    st.instances.iter().map(|(id, _, _)| *id).collect();
                let mut inc = merge_cell.incoming.lock();
                inc.retain(|(up, _)| !old_ids.contains(up));
                inc.extend(new_list.iter().map(|(id, _, out_e)| (*id, out_e.id())));
            }
            // Retire the old generation at one fresh stamp: greater than
            // every stamp the old instances emitted, not greater than any
            // stamp the upstream will allocate from here on.
            // ordering: Relaxed — unique-stamp allocation only; per-edge
            // queue locks establish delivery order (see Outputs).
            let s = g.seq.fetch_add(1, Ordering::Relaxed);
            if was_closed {
                // The stream already ended: old instances closed themselves
                // when the broadcast Close reached them; the new instances
                // will never hear from the partitioner, so close their
                // inputs here or the group would never finish.
                for in_e in &new_in {
                    in_e.push(s, Message::Close);
                }
            } else {
                for (_, _, out_e) in &st.instances {
                    out_e.push(s, Message::Close);
                }
            }
            part.retarget(new_in);
            restore_runnable(g, part_id, part_box);
            let old: Vec<NodeId> = st.instances.iter().map(|(id, _, _)| *id).collect();
            for id in old {
                g.remove_node(id);
            }
            st.instances = new_list;
            new_ids
        });
        self.shuffle.register(GroupEntry {
            name: name.to_string(),
            handle: merge_id,
            partition_ids: vec![part_id],
            instance_ids,
            expand,
        });
        StreamHandle {
            node: merge_id,
            outputs,
        }
    }

    /// Registers a **keyed-parallel** binary operator (both inputs
    /// partitioned by the join key, which must agree: `key_left(l)` must
    /// equal `key_right(r)` whenever `l` and `r` can pair). See
    /// [`QueryGraph::add_keyed_unary`] for the group semantics.
    #[allow(clippy::too_many_arguments)]
    pub fn add_keyed_binary<B, F>(
        &self,
        name: &str,
        factory: F,
        key_left: KeyFn<B::Left>,
        key_right: KeyFn<B::Right>,
        instances: usize,
        tie: Option<MergeTie<B::Out>>,
        left: &StreamHandle<B::Left>,
        right: &StreamHandle<B::Right>,
    ) -> StreamHandle<B::Out>
    where
        B: BinaryOperator + Rekey,
        B::Left: Sync,
        B::Right: Sync,
        B::Out: Send + Sync,
        F: Fn() -> B + Send + Sync + 'static,
    {
        assert!(instances >= 1, "keyed operator needs at least one instance");
        let factory = Arc::new(factory);
        let l_edge = self.new_edge::<B::Left>();
        let r_edge = self.new_edge::<B::Right>();
        left.outputs.subscribe(Arc::clone(&l_edge));
        right.outputs.subscribe(Arc::clone(&r_edge));
        let l_in: Vec<_> = (0..instances).map(|_| self.new_edge::<B::Left>()).collect();
        let r_in: Vec<_> = (0..instances)
            .map(|_| self.new_edge::<B::Right>())
            .collect();
        let out_edges: Vec<_> = (0..instances).map(|_| self.new_edge::<B::Out>()).collect();

        let lpart = PartitionNode::new(Arc::clone(&l_edge), Arc::clone(&key_left), l_in.clone());
        let lpart_id = self.push_node(instance_cell(
            format!("{name}.lpart"),
            Box::new(lpart),
            vec![(left.node, l_edge.id())],
        ));
        let rpart = PartitionNode::new(Arc::clone(&r_edge), Arc::clone(&key_right), r_in.clone());
        let rpart_id = self.push_node(instance_cell(
            format!("{name}.rpart"),
            Box::new(rpart),
            vec![(right.node, r_edge.id())],
        ));

        let mut inst_list = Vec::with_capacity(instances);
        let mut instance_ids = Vec::with_capacity(instances);
        for i in 0..instances {
            let inst = KeyedInstanceBin::new(
                (factory)(),
                Arc::clone(&l_in[i]),
                Arc::clone(&r_in[i]),
                Arc::clone(&out_edges[i]),
            );
            let id = self.push_node(instance_cell(
                format!("{name}#{i}"),
                Box::new(inst),
                vec![(lpart_id, l_in[i].id()), (rpart_id, r_in[i].id())],
            ));
            inst_list.push((
                id,
                Arc::clone(&l_in[i]),
                Arc::clone(&r_in[i]),
                Arc::clone(&out_edges[i]),
            ));
            instance_ids.push(id);
        }

        let outputs = Arc::new(Outputs::new(Arc::clone(&self.seq)));
        let merge = MergeNode::new(out_edges, Arc::clone(&outputs), tie);
        let merge_name = format!("{name}.merge");
        let merge_id = self.push_node(NodeCell {
            name: merge_name.clone(),
            kind: NodeKind::Operator,
            runnable: Mutex::new(Box::new(merge)),
            stats: Arc::new(NodeStats::new(&merge_name)),
            meta: Arc::new(NodeMeta::new()),
            out_port: Some(Arc::clone(&outputs) as Arc<dyn OutputPort>),
            incoming: Mutex::new(
                inst_list
                    .iter()
                    .map(|(id, _, _, out_e)| (*id, out_e.id()))
                    .collect(),
            ),
            removed: AtomicBool::new(false),
        });
        self.refresh_subscriber_counts([left.node, right.node]);

        let state = Arc::new(Mutex::new(BinaryGroup::<B> {
            instances: inst_list,
            next_idx: instances,
        }));
        let gname = name.to_string();
        let route_l = Arc::clone(&key_left);
        let route_r = Arc::clone(&key_right);
        let expand: Arc<ExpandFn> = Arc::new(move |g: &QueryGraph, n_new: usize| {
            assert!(n_new >= 1, "parallelize needs at least one instance");
            let mut st = state.lock();
            // Freeze both routing tables by taking the partitioners out of
            // their cells (see the unary expander): owning the boxes stops
            // all routing without ever holding two runnable locks at once.
            let mut lpart_box = take_runnable(g, lpart_id);
            let mut rpart_box = take_runnable(g, rpart_id);
            let lpart = lpart_box
                .as_any_mut()
                .and_then(|a| a.downcast_mut::<PartitionNode<B::Left>>())
                .expect("shuffle partition node changed type");
            let rpart = rpart_box
                .as_any_mut()
                .and_then(|a| a.downcast_mut::<PartitionNode<B::Right>>())
                .expect("shuffle partition node changed type");
            // Pop the unprocessed backlog raw off the instance ports; it is
            // replayed through the new routing below. Forcing the old
            // operators to process it instead would break arrival order: a
            // port blocked by the strict frontier (see
            // `KeyedInstanceBin::step`) can still owe a smaller-sequence
            // message sitting in the lagging other-side partitioner, and
            // that message must probe the keyed state first.
            let mut l_backlog: Vec<(u64, Message<B::Left>)> = Vec::new();
            let mut r_backlog: Vec<(u64, Message<B::Right>)> = Vec::new();
            for (_, l_e, r_e, _) in &st.instances {
                while l_e.pop_run(usize::MAX, u64::MAX, &mut l_backlog) > 0 {}
                while r_e.pop_run(usize::MAX, u64::MAX, &mut r_backlog) > 0 {}
            }
            l_backlog.sort_by_key(|p| p.0);
            l_backlog.dedup_by_key(|p| p.0);
            r_backlog.sort_by_key(|p| p.0);
            r_backlog.dedup_by_key(|p| p.0);
            let l_closed = lpart.is_closed();
            let r_closed = rpart.is_closed();
            let mut exported: KeyedState = Vec::new();
            for (id, _, _, _) in &st.instances {
                let cell = g.cell(*id);
                let mut guard = cell.runnable.lock();
                let inst = guard
                    .as_any_mut()
                    .and_then(|a| a.downcast_mut::<KeyedInstanceBin<B>>())
                    .expect("shuffle instance node changed type");
                exported.append(&mut inst.op.export_keyed());
            }
            let mut split: Vec<KeyedState> = (0..n_new).map(|_| Vec::new()).collect();
            for entry in exported {
                let slot = (entry.0 % n_new as u64) as usize;
                split[slot].push(entry);
            }
            let mut new_ids = Vec::with_capacity(n_new);
            let mut new_l = Vec::with_capacity(n_new);
            let mut new_r = Vec::with_capacity(n_new);
            let mut new_list = Vec::with_capacity(n_new);
            for part_state in split {
                let mut op = (factory)();
                op.import_keyed(part_state);
                let l_e = g.new_edge::<B::Left>();
                let r_e = g.new_edge::<B::Right>();
                let out_e = g.new_edge::<B::Out>();
                let idx = st.next_idx;
                st.next_idx += 1;
                let inst = KeyedInstanceBin::new(
                    op,
                    Arc::clone(&l_e),
                    Arc::clone(&r_e),
                    Arc::clone(&out_e),
                );
                let id = g.push_node(instance_cell(
                    format!("{gname}#{idx}"),
                    Box::new(inst),
                    vec![(lpart_id, l_e.id()), (rpart_id, r_e.id())],
                ));
                new_ids.push(id);
                new_l.push(Arc::clone(&l_e));
                new_r.push(Arc::clone(&r_e));
                new_list.push((id, l_e, r_e, out_e));
            }
            {
                let merge_cell = g.cell(merge_id);
                let mut mg = merge_cell.runnable.lock();
                let merge = mg
                    .as_any_mut()
                    .and_then(|a| a.downcast_mut::<MergeNode<B::Out>>())
                    .expect("shuffle merge node changed type");
                for (_, _, _, out_e) in &new_list {
                    merge.add_port(Arc::clone(out_e));
                }
                let old_ids: std::collections::HashSet<NodeId> =
                    st.instances.iter().map(|(id, _, _, _)| *id).collect();
                let mut inc = merge_cell.incoming.lock();
                inc.retain(|(up, _)| !old_ids.contains(up));
                inc.extend(new_list.iter().map(|(id, _, _, out_e)| (*id, out_e.id())));
            }
            let l_backlog_closed = replay_backlog(l_backlog, &route_l, &new_l);
            let r_backlog_closed = replay_backlog(r_backlog, &route_r, &new_r);
            // ordering: Relaxed — unique-stamp allocation only; see the
            // unary expander.
            let s = g.seq.fetch_add(1, Ordering::Relaxed);
            // A side whose broadcast Close was already consumed by the old
            // instances needs a fresh one on the new edges; a Close still
            // in the backlog was just replayed at its original stamp.
            if l_closed && !l_backlog_closed {
                for in_e in &new_l {
                    in_e.push(s, Message::Close);
                }
            }
            if r_closed && !r_backlog_closed {
                for in_e in &new_r {
                    in_e.push(s, Message::Close);
                }
            }
            // Old instances that never processed their Close (it may have
            // been popped into the backlog above) end their output ports
            // here so the merge can retire them.
            for (id, _, _, out_e) in &st.instances {
                if !g.is_finished(*id) {
                    out_e.push(s, Message::Close);
                }
            }
            lpart.retarget(new_l);
            rpart.retarget(new_r);
            restore_runnable(g, lpart_id, lpart_box);
            restore_runnable(g, rpart_id, rpart_box);
            let old: Vec<NodeId> = st.instances.iter().map(|(id, _, _, _)| *id).collect();
            for id in old {
                g.remove_node(id);
            }
            st.instances = new_list;
            new_ids
        });
        self.shuffle.register(GroupEntry {
            name: name.to_string(),
            handle: merge_id,
            partition_ids: vec![lpart_id, rpart_id],
            instance_ids,
            expand,
        });
        StreamHandle {
            node: merge_id,
            outputs,
        }
    }

    /// Re-sizes the keyed-parallel group whose output node is `handle` to
    /// `instances` instances, **against the running graph**: routing is
    /// frozen, the retiring generation is drained and its keyed state moved
    /// ([`Rekey`]), the new instances are spliced in through the
    /// hot-topology path (topology-epoch bumps let executors re-plan) and
    /// the old ones retired. Returns the new instance node ids.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is not the output node of a group built with
    /// [`QueryGraph::add_keyed_unary`] / [`QueryGraph::add_keyed_binary`],
    /// or if `instances` is zero.
    pub fn parallelize(&self, handle: NodeId, instances: usize) -> Vec<NodeId> {
        let expand = self
            .shuffle
            .expander(handle)
            .expect("parallelize: no keyed-parallel group registered under this node");
        let new_ids = expand(self, instances);
        self.shuffle.set_instances(handle, new_ids.clone());
        new_ids
    }

    /// Snapshots the registered keyed-parallel groups (for introspection
    /// surfaces: the Prometheus `pipes_node_instances` gauge and
    /// `pipes_top`).
    pub fn shuffle_groups(&self) -> Vec<ShuffleGroup> {
        self.shuffle.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{CollectSink, VecSource};
    use pipes_time::Timestamp;

    /// Pass-through operator with a trivial (empty) keyed-state hand-off.
    struct Relay;
    impl Operator for Relay {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            out.element(e);
        }
    }
    impl Rekey for Relay {
        fn export_keyed(&mut self) -> KeyedState {
            Vec::new()
        }
        fn import_keyed(&mut self, entries: KeyedState) {
            assert!(entries.is_empty());
        }
    }

    /// Running per-key sum: emits the updated sum for the element's key.
    /// State moves across generations through `Rekey`.
    struct KeyedSum {
        sums: std::collections::HashMap<i64, i64>,
    }
    impl KeyedSum {
        fn key_of(v: i64) -> u64 {
            (v.rem_euclid(8)) as u64
        }
    }
    impl Operator for KeyedSum {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            let k = e.payload.rem_euclid(8);
            let sum = self.sums.entry(k).or_insert(0);
            *sum += e.payload;
            let s = *sum;
            out.element(e.map(|_| s));
        }
        fn memory(&self) -> usize {
            self.sums.len()
        }
    }
    impl Rekey for KeyedSum {
        fn export_keyed(&mut self) -> KeyedState {
            self.sums
                .drain()
                .map(|(k, v)| {
                    (
                        KeyedSum::key_of(k),
                        Box::new((k, v)) as Box<dyn std::any::Any + Send>,
                    )
                })
                .collect()
        }
        fn import_keyed(&mut self, entries: KeyedState) {
            for (_, boxed) in entries {
                let (k, v) = *boxed.downcast::<(i64, i64)>().expect("keyed-sum state");
                self.sums.insert(k, v);
            }
        }
    }

    fn inputs(n: i64) -> Vec<Element<i64>> {
        (0..n)
            .map(|i| Element::at(i * 13 % 97, Timestamp::new(i as u64)))
            .collect()
    }

    fn single_plan_elements(n: i64) -> Vec<Element<i64>> {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(inputs(n)));
        let out = g.add_unary(
            "sum",
            KeyedSum {
                sums: Default::default(),
            },
            &src,
        );
        let (sink, collected) = CollectSink::new();
        g.add_sink("sink", sink, &out);
        g.run_to_completion(7);
        let out = collected.lock().clone();
        out
    }

    #[test]
    fn keyed_unary_matches_single_instance_plan() {
        let expected = single_plan_elements(200);
        for instances in [1usize, 2, 3, 5] {
            let g = QueryGraph::new();
            let src = g.add_source("src", VecSource::new(inputs(200)));
            let out = g.add_keyed_unary(
                "sum",
                || KeyedSum {
                    sums: Default::default(),
                },
                Arc::new(|v: &i64| KeyedSum::key_of(*v)),
                instances,
                None,
                &src,
            );
            let (sink, collected) = CollectSink::new();
            g.add_sink("sink", sink, &out);
            g.run_to_completion(7);
            assert_eq!(
                *collected.lock(),
                expected,
                "keyed plan with {instances} instances diverged"
            );
        }
    }

    #[test]
    fn parallelize_mid_stream_preserves_output_and_moves_state() {
        let expected = single_plan_elements(300);
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(inputs(300)));
        let out = g.add_keyed_unary(
            "sum",
            || KeyedSum {
                sums: Default::default(),
            },
            Arc::new(|v: &i64| KeyedSum::key_of(*v)),
            2,
            None,
            &src,
        );
        let (sink, collected) = CollectSink::new();
        g.add_sink("sink", sink, &out);
        // Run part of the stream through the 2-instance generation…
        for _ in 0..10 {
            for id in g.node_ids() {
                g.step_node(id, 5);
            }
        }
        let before = g.shuffle_groups()[0].instance_ids.clone();
        assert_eq!(before.len(), 2);
        // …splice a 3-instance generation into the running graph…
        let new_ids = g.parallelize(out.node(), 3);
        assert_eq!(new_ids.len(), 3);
        let groups = g.shuffle_groups();
        assert_eq!(groups[0].instance_ids, new_ids);
        for old in &before {
            assert!(g.is_removed(*old), "old instance {old} must be retired");
        }
        // …and finish. Output must match the single-instance plan exactly,
        // which requires the per-key sums to have moved generations.
        g.run_to_completion(7);
        assert_eq!(*collected.lock(), expected);
    }

    #[test]
    fn parallelize_after_close_still_finishes() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(inputs(50)));
        let out = g.add_keyed_unary(
            "relay",
            || Relay,
            Arc::new(|v: &i64| *v as u64),
            2,
            None,
            &src,
        );
        let (sink, collected) = CollectSink::new();
        g.add_sink("sink", sink, &out);
        g.run_to_completion(16);
        assert_eq!(collected.lock().len(), 50);
        // The stream already ended; re-sizing must not wedge the graph.
        let new_ids = g.parallelize(out.node(), 4);
        assert_eq!(new_ids.len(), 4);
        g.run_to_completion(16);
        assert_eq!(collected.lock().len(), 50);
    }

    #[test]
    fn skewed_keys_route_to_one_instance() {
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(inputs(64)));
        // Constant key: every element lands on instance 0.
        let out = g.add_keyed_unary("relay", || Relay, Arc::new(|_: &i64| 0u64), 3, None, &src);
        let (sink, collected) = CollectSink::new();
        g.add_sink("sink", sink, &out);
        g.run_to_completion(8);
        assert_eq!(collected.lock().len(), 64);
        let group = &g.shuffle_groups()[0];
        let hot = group.instance_ids[0];
        let cold = &group.instance_ids[1..];
        let hot_in = g.stats(hot).snapshot().in_count;
        for &c in cold {
            let cold_in = g.stats(c).snapshot().in_count;
            // Cold instances see only broadcast control traffic
            // (heartbeats + close), never elements.
            assert!(
                cold_in < hot_in && (cold_in as usize) < 64,
                "cold instance {c} consumed {cold_in} (hot {hot_in})"
            );
        }
    }
}
