//! Queued edges between nodes.

use parking_lot::Mutex;
use pipes_time::Message;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Identifies an edge (subscription) within one graph.
pub type EdgeId = u64;

/// A queued subscription: the buffer between a publishing node and one
/// subscribed consumer port.
///
/// Each enqueued message carries a graph-global arrival sequence number,
/// which the FIFO scheduling strategy and multi-port nodes use to process
/// messages in arrival order.
pub struct Edge<T> {
    id: EdgeId,
    queue: Mutex<VecDeque<(u64, Message<T>)>>,
    len: AtomicUsize,
    high_water: AtomicUsize,
}

impl<T> Edge<T> {
    /// Creates an empty edge with the given id.
    pub fn new(id: EdgeId) -> Self {
        Edge {
            id,
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
        }
    }

    /// This edge's id.
    pub fn id(&self) -> EdgeId {
        self.id
    }

    /// Enqueues a message stamped with arrival sequence `seq`.
    pub fn push(&self, seq: u64, msg: Message<T>) {
        let mut q = self.queue.lock();
        q.push_back((seq, msg));
        let len = q.len();
        drop(q);
        self.len.store(len, Ordering::Relaxed);
        self.high_water.fetch_max(len, Ordering::Relaxed);
    }

    /// Dequeues the oldest message, if any.
    pub fn pop(&self) -> Option<(u64, Message<T>)> {
        let mut q = self.queue.lock();
        let item = q.pop_front();
        self.len.store(q.len(), Ordering::Relaxed);
        item
    }

    /// Arrival sequence of the oldest queued message, if any.
    pub fn head_seq(&self) -> Option<u64> {
        self.queue.lock().front().map(|(s, _)| *s)
    }

    /// Current queue length (racy but monotonic enough for scheduling).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The largest queue length ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipes_time::{Element, Timestamp};

    #[test]
    fn fifo_order_and_lengths() {
        let e: Edge<i32> = Edge::new(7);
        assert_eq!(e.id(), 7);
        assert!(e.is_empty());
        e.push(1, Message::Element(Element::at(10, Timestamp::new(0))));
        e.push(2, Message::Heartbeat(Timestamp::new(1)));
        e.push(3, Message::Close);
        assert_eq!(e.len(), 3);
        assert_eq!(e.high_water(), 3);
        assert_eq!(e.head_seq(), Some(1));
        let (s1, m1) = e.pop().unwrap();
        assert_eq!(s1, 1);
        assert!(m1.is_element());
        assert_eq!(e.len(), 2);
        assert_eq!(e.head_seq(), Some(2));
        e.pop();
        assert_eq!(e.pop().unwrap().1, Message::Close);
        assert!(e.pop().is_none());
        assert_eq!(e.high_water(), 3);
    }

    #[test]
    fn concurrent_producers() {
        use std::sync::Arc;
        let e: Arc<Edge<u64>> = Arc::new(Edge::new(0));
        let handles: Vec<_> = (0..4u64)
            .map(|tid| {
                let e = Arc::clone(&e);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        e.push(tid * 1000 + i, Message::Heartbeat(Timestamp::new(i)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(e.len(), 2000);
        let mut n = 0;
        while e.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 2000);
    }
}
