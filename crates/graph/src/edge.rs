//! Queued edges between nodes.

use pipes_sync::atomic::{AtomicUsize, Ordering};
use pipes_sync::Mutex;
use pipes_time::Message;
use std::collections::VecDeque;

/// Identifies an edge (subscription) within one graph.
pub type EdgeId = u64;

/// A queued subscription: the buffer between a publishing node and one
/// subscribed consumer port.
///
/// Each enqueued message carries a graph-global arrival sequence number,
/// which the FIFO scheduling strategy and multi-port nodes use to process
/// messages in arrival order.
///
/// Besides the per-message [`push`](Edge::push)/[`pop`](Edge::pop) pair, the
/// edge offers batch transfers ([`push_batch`](Edge::push_batch),
/// [`pop_run`](Edge::pop_run)) that move many messages under a single lock
/// acquisition — the foundation of the batched data path.
pub struct Edge<T> {
    id: EdgeId,
    queue: Mutex<VecDeque<(u64, Message<T>)>>,
    len: AtomicUsize,
    high_water: AtomicUsize,
}

impl<T> Edge<T> {
    /// Creates an empty edge with the given id.
    pub fn new(id: EdgeId) -> Self {
        Edge {
            id,
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
        }
    }

    /// This edge's id.
    pub fn id(&self) -> EdgeId {
        self.id
    }

    /// Enqueues a message stamped with arrival sequence `seq`.
    pub fn push(&self, seq: u64, msg: Message<T>) {
        let len = {
            let mut q = self.queue.lock();
            q.push_back((seq, msg));
            let len = q.len();
            // The cached length must be stored while the lock is still held.
            // If it were stored after the guard drops, two concurrent critical
            // sections could interleave as
            //   A: push -> len 1, unlock        B: push -> len 2, unlock
            //   B: len.store(2)                 A: len.store(1)
            // leaving `len` stuck below the true queue length (and symmetrically
            // above it when racing a pop) until the next mutation repaired it.
            // ordering: Relaxed — the queue mutex is the synchronization; the
            // cached len/high_water are monotonicity-free scheduling hints and
            // no other data is published through them.
            self.len.store(len, Ordering::Relaxed);
            self.high_water.fetch_max(len, Ordering::Relaxed);
            len
        };
        // Recorded outside the critical section: contended consumers must
        // not wait on the recorder.
        pipes_trace::instant(pipes_trace::names::EDGE_PUSH, [self.id, len as u64, 0]);
    }

    /// Enqueues a batch under one lock acquisition. `msgs` is drained (its
    /// capacity is retained, so callers can reuse it as a scratch buffer);
    /// message `i` is stamped with arrival sequence `seq_base + i`.
    pub fn push_batch(&self, seq_base: u64, msgs: &mut Vec<Message<T>>) {
        if msgs.is_empty() {
            return;
        }
        let mut q = self.queue.lock();
        for (i, msg) in msgs.drain(..).enumerate() {
            q.push_back((seq_base + i as u64, msg));
        }
        let len = q.len();
        // ordering: Relaxed — stored inside the critical section; the queue
        // mutex synchronizes, the cached values are scheduling hints.
        self.len.store(len, Ordering::Relaxed);
        self.high_water.fetch_max(len, Ordering::Relaxed);
    }

    /// Enqueues a batch of **pre-stamped** messages under one lock
    /// acquisition, preserving the arrival sequence each message already
    /// carries. `msgs` is drained (capacity retained for reuse).
    ///
    /// This is the shuffle-edge transport: a partition node routes a drained
    /// run across per-instance edges without re-stamping, so the merge stage
    /// downstream can restore global arrival order from the original
    /// sequences. Callers must push stamps in non-decreasing order per edge,
    /// or run bounds downstream would be violated.
    pub fn push_stamped_batch(&self, msgs: &mut Vec<(u64, Message<T>)>) {
        if msgs.is_empty() {
            return;
        }
        let mut q = self.queue.lock();
        debug_assert!(
            q.back().is_none_or(|(last, _)| *last <= msgs[0].0),
            "stamped batch would regress the edge's sequence order"
        );
        q.extend(msgs.drain(..));
        let len = q.len();
        // ordering: Relaxed — stored inside the critical section; see push().
        self.len.store(len, Ordering::Relaxed);
        self.high_water.fetch_max(len, Ordering::Relaxed);
    }

    /// Dequeues the oldest message, if any.
    pub fn pop(&self) -> Option<(u64, Message<T>)> {
        let mut q = self.queue.lock();
        let item = q.pop_front();
        // ordering: Relaxed — stored inside the critical section; see push().
        self.len.store(q.len(), Ordering::Relaxed);
        item
    }

    /// Dequeues up to `max` oldest messages under one lock acquisition,
    /// appending them to `out`. Returns the number of messages moved.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<(u64, Message<T>)>) -> usize {
        self.pop_run(max, u64::MAX, out)
    }

    /// Dequeues a *run*: up to `max` oldest messages whose arrival sequence
    /// is at most `seq_bound`, under one lock acquisition. A `Close` message
    /// ends the run (it is included), so consumers observe end-of-stream at
    /// a run boundary. Appends to `out`; returns the number moved.
    ///
    /// Multi-port nodes bound each run by the head sequence of their other
    /// ports, which preserves cross-port arrival order while still draining
    /// long same-port stretches in one lock.
    pub fn pop_run(&self, max: usize, seq_bound: u64, out: &mut Vec<(u64, Message<T>)>) -> usize {
        if max == 0 {
            return 0;
        }
        let (n, remaining) = {
            let mut q = self.queue.lock();
            let mut n = 0;
            while n < max {
                match q.front() {
                    Some((seq, _)) if *seq <= seq_bound => {
                        let (seq, msg) = q.pop_front().expect("front() guaranteed a message");
                        let is_close = matches!(msg, Message::Close);
                        out.push((seq, msg));
                        n += 1;
                        if is_close {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            // ordering: Relaxed — stored inside the critical section; see push().
            self.len.store(q.len(), Ordering::Relaxed);
            (n, q.len())
        };
        if n > 0 {
            // Recorded outside the critical section (one event per drained
            // run, not per message — the batched path's cost model).
            // Coarse-timestamped: a drain always runs inside its consumer's
            // node-step span, and skipping the clock read keeps this site
            // off the hot path's budget.
            pipes_trace::instant_coarse(
                pipes_trace::names::EDGE_DRAIN,
                [self.id, n as u64, remaining as u64],
            );
        }
        n
    }

    /// Arrival sequence of the oldest queued message, if any.
    pub fn head_seq(&self) -> Option<u64> {
        self.queue.lock().front().map(|(s, _)| *s)
    }

    /// Current queue length (racy but monotonic enough for scheduling).
    pub fn len(&self) -> usize {
        // ordering: Relaxed — advisory read for scheduling; callers that
        // need the exact length take the queue lock instead.
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The largest queue length ever observed.
    pub fn high_water(&self) -> usize {
        // ordering: Relaxed — advisory statistic.
        self.high_water.load(Ordering::Relaxed)
    }
}

impl<T: Clone> Edge<T> {
    /// Like [`push_batch`](Edge::push_batch), but clones from a borrowed
    /// slice instead of draining — used to fan the same batch out to all but
    /// the last subscriber of an output port.
    pub fn push_batch_cloned(&self, seq_base: u64, msgs: &[Message<T>]) {
        if msgs.is_empty() {
            return;
        }
        let mut q = self.queue.lock();
        for (i, msg) in msgs.iter().enumerate() {
            q.push_back((seq_base + i as u64, msg.clone()));
        }
        let len = q.len();
        // ordering: Relaxed — stored inside the critical section; see push().
        self.len.store(len, Ordering::Relaxed);
        self.high_water.fetch_max(len, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipes_time::{Element, Timestamp};

    #[test]
    fn fifo_order_and_lengths() {
        let e: Edge<i32> = Edge::new(7);
        assert_eq!(e.id(), 7);
        assert!(e.is_empty());
        e.push(1, Message::Element(Element::at(10, Timestamp::new(0))));
        e.push(2, Message::Heartbeat(Timestamp::new(1)));
        e.push(3, Message::Close);
        assert_eq!(e.len(), 3);
        assert_eq!(e.high_water(), 3);
        assert_eq!(e.head_seq(), Some(1));
        let (s1, m1) = e.pop().unwrap();
        assert_eq!(s1, 1);
        assert!(m1.is_element());
        assert_eq!(e.len(), 2);
        assert_eq!(e.head_seq(), Some(2));
        e.pop();
        assert_eq!(e.pop().unwrap().1, Message::Close);
        assert!(e.pop().is_none());
        assert_eq!(e.high_water(), 3);
    }

    #[test]
    fn concurrent_producers() {
        use pipes_sync::Arc;
        let e: Arc<Edge<u64>> = Arc::new(Edge::new(0));
        let handles: Vec<_> = (0..4u64)
            .map(|tid| {
                let e = Arc::clone(&e);
                pipes_sync::thread::spawn(move || {
                    for i in 0..500 {
                        e.push(tid * 1000 + i, Message::Heartbeat(Timestamp::new(i)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(e.len(), 2000);
        let mut n = 0;
        while e.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 2000);
    }

    /// Regression test for the stale-length race: `push` used to store the
    /// cached length *after* releasing the queue lock, so a concurrent
    /// push/pop pair could publish their lengths in the opposite order of
    /// their critical sections, leaving `len()` permanently out of sync with
    /// the queue. With the store moved inside the critical section the cached
    /// length always reflects the most recent mutation once all threads join.
    #[test]
    fn len_consistent_after_concurrent_push_and_pop() {
        use pipes_sync::Arc;
        for _ in 0..50 {
            let e: Arc<Edge<u64>> = Arc::new(Edge::new(0));
            let pushers: Vec<_> = (0..2u64)
                .map(|tid| {
                    let e = Arc::clone(&e);
                    pipes_sync::thread::spawn(move || {
                        for i in 0..200 {
                            e.push(tid * 1000 + i, Message::Heartbeat(Timestamp::new(i)));
                        }
                    })
                })
                .collect();
            let popper = {
                let e = Arc::clone(&e);
                pipes_sync::thread::spawn(move || {
                    let mut got = 0;
                    while got < 100 {
                        if e.pop().is_some() {
                            got += 1;
                        } else {
                            pipes_sync::hint::spin_loop();
                        }
                    }
                })
            };
            for h in pushers {
                h.join().unwrap();
            }
            popper.join().unwrap();
            let reported = e.len();
            let mut actual = 0;
            while e.pop().is_some() {
                actual += 1;
            }
            assert_eq!(reported, actual, "cached len diverged from queue");
            assert_eq!(actual, 300);
        }
    }

    #[test]
    fn push_batch_stamps_sequential_seqs_and_reuses_buffer() {
        let e: Edge<i32> = Edge::new(1);
        let mut batch = vec![
            Message::Element(Element::at(1, Timestamp::new(0))),
            Message::Heartbeat(Timestamp::new(1)),
            Message::Element(Element::at(2, Timestamp::new(2))),
        ];
        let cap = batch.capacity();
        e.push_batch(10, &mut batch);
        assert!(batch.is_empty());
        assert!(batch.capacity() >= cap, "scratch capacity must survive");
        assert_eq!(e.len(), 3);
        assert_eq!(e.high_water(), 3);
        assert_eq!(e.pop().unwrap().0, 10);
        assert_eq!(e.pop().unwrap().0, 11);
        assert_eq!(e.pop().unwrap().0, 12);
    }

    #[test]
    fn push_batch_cloned_fans_out_same_seqs() {
        let a: Edge<i32> = Edge::new(1);
        let b: Edge<i32> = Edge::new(2);
        let mut batch = vec![
            Message::Element(Element::at(5, Timestamp::new(0))),
            Message::Element(Element::at(6, Timestamp::new(1))),
        ];
        a.push_batch_cloned(7, &batch);
        b.push_batch(7, &mut batch);
        assert_eq!(a.pop().unwrap(), b.pop().unwrap());
        assert_eq!(a.pop().unwrap(), b.pop().unwrap());
    }

    #[test]
    fn push_stamped_batch_preserves_given_seqs() {
        let e: Edge<i32> = Edge::new(3);
        let mut batch = vec![
            (4u64, Message::Element(Element::at(1, Timestamp::new(0)))),
            (9u64, Message::Heartbeat(Timestamp::new(1))),
            (9u64, Message::Element(Element::at(2, Timestamp::new(1)))),
        ];
        let cap = batch.capacity();
        e.push_stamped_batch(&mut batch);
        assert!(batch.is_empty());
        assert!(batch.capacity() >= cap, "scratch capacity must survive");
        assert_eq!(e.len(), 3);
        assert_eq!(e.pop().unwrap().0, 4);
        assert_eq!(e.pop().unwrap().0, 9);
        assert_eq!(e.pop().unwrap().0, 9);
    }

    #[test]
    fn pop_batch_drains_up_to_max() {
        let e: Edge<i32> = Edge::new(1);
        for i in 0..5 {
            e.push(i, Message::Heartbeat(Timestamp::new(i)));
        }
        let mut out = Vec::new();
        assert_eq!(e.pop_batch(3, &mut out), 3);
        assert_eq!(out.iter().map(|(s, _)| *s).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(e.len(), 2);
        out.clear();
        assert_eq!(e.pop_batch(10, &mut out), 2);
        assert_eq!(e.pop_batch(10, &mut out), 0);
    }

    #[test]
    fn pop_run_respects_seq_bound_and_stops_after_close() {
        let e: Edge<i32> = Edge::new(1);
        e.push(1, Message::Heartbeat(Timestamp::new(0)));
        e.push(3, Message::Heartbeat(Timestamp::new(1)));
        e.push(8, Message::Heartbeat(Timestamp::new(2)));
        let mut out = Vec::new();
        // Bound 5: only seqs 1 and 3 may move.
        assert_eq!(e.pop_run(10, 5, &mut out), 2);
        assert_eq!(e.head_seq(), Some(8));

        let c: Edge<i32> = Edge::new(2);
        c.push(1, Message::Heartbeat(Timestamp::new(0)));
        c.push(2, Message::Close);
        c.push(3, Message::Heartbeat(Timestamp::new(1)));
        out.clear();
        // Close ends the run even though more messages are within bounds.
        assert_eq!(c.pop_run(10, u64::MAX, &mut out), 2);
        assert_eq!(out.last().unwrap().1, Message::Close);
        assert_eq!(c.len(), 1);
    }
}
