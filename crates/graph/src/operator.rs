//! The node-type traits: sources, sinks and operators (pipes).
//!
//! Besides the per-message callbacks, operators expose a **run-level**
//! entry point ([`Operator::on_run`] and the
//! [`BinaryOperator::on_run_left`]/[`BinaryOperator::on_run_right`] pair):
//! the runtime hands an operator the whole run it drained from an input
//! edge in one call. The default implementations loop over the per-message
//! callbacks, so every operator works unmodified; hot operators override
//! the run entry point to amortize state lookups and allocations across
//! the run (see `DESIGN.md` § "Run-at-a-time algebra" for the contract).

use pipes_time::{Element, Message, Timestamp};

/// Identifies a node within one [`crate::QueryGraph`].
pub type NodeId = usize;

/// Receives the results an operator or source produces.
///
/// A collector is passed *into* the processing callbacks, so the same
/// operator code runs unchanged whether its results cross a queued edge, are
/// handed to a fused downstream operator in the same virtual node, or are
/// captured by a test harness.
pub trait Collector<T> {
    /// Emits a data element.
    fn element(&mut self, e: Element<T>);
    /// Emits a heartbeat: no element produced later will start before `t`.
    fn heartbeat(&mut self, t: Timestamp);
    /// Hints that roughly `additional` further messages are coming, so a
    /// buffering collector can grow its storage once per run instead of
    /// once per emission. Purely advisory; the default does nothing.
    fn reserve(&mut self, additional: usize) {
        let _ = additional;
    }
}

/// A [`Collector`] that appends into a `Vec<Message<T>>`; convenient for
/// tests and for driving operators outside a graph.
impl<T> Collector<T> for Vec<Message<T>> {
    fn element(&mut self, e: Element<T>) {
        self.push(Message::Element(e));
    }
    fn heartbeat(&mut self, t: Timestamp) {
        self.push(Message::Heartbeat(t));
    }
    fn reserve(&mut self, additional: usize) {
        Vec::reserve(self, additional);
    }
}

/// Result of one [`SourceOp::produce`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceStatus {
    /// Produced at least one message; call again for more.
    Active,
    /// Nothing available right now (e.g. rate-limited), but not finished.
    Idle,
    /// The source will never produce again.
    Exhausted,
}

/// A stream source: the origin of data in a query graph.
///
/// Sources are *pulled* by the scheduler in budgeted quanta, which is how
/// PIPES adapts source pressure to downstream capacity. A source must emit
/// elements non-decreasing in start timestamp and should interleave
/// heartbeats so that stateful downstream operators can make progress.
pub trait SourceOp: Send + 'static {
    /// Payload type of produced elements.
    type Out: Send + Clone + 'static;

    /// Produces up to `budget` messages into `out`.
    fn produce(&mut self, budget: usize, out: &mut dyn Collector<Self::Out>) -> SourceStatus;
}

/// An operator (*pipe*): consumes elements, processes them, produces results.
///
/// Operators are driven by the runtime: `on_element`/`on_heartbeat` are
/// invoked per incoming message, `on_close` once after **all** input ports
/// have delivered end-of-stream. The `port` argument identifies which
/// upstream subscription delivered the message (an n-ary operator such as
/// union has one port per upstream).
///
/// The default `on_heartbeat` forwards the punctuation unchanged, which is
/// correct for unary operators that do not reorder or retime elements.
/// Multi-input or retiming operators must override it (see
/// [`crate::watermark::Watermarks`]).
pub trait Operator: Send + 'static {
    /// Input payload type (all ports carry the same type; use
    /// [`BinaryOperator`] for heterogeneous inputs).
    type In: Send + Clone + 'static;
    /// Output payload type.
    type Out: Send + Clone + 'static;

    /// Processes one element from `port`.
    fn on_element(
        &mut self,
        port: usize,
        elem: Element<Self::In>,
        out: &mut dyn Collector<Self::Out>,
    );

    /// Processes a heartbeat from `port`. Default: forward.
    fn on_heartbeat(&mut self, port: usize, t: Timestamp, out: &mut dyn Collector<Self::Out>) {
        let _ = port;
        out.heartbeat(t);
    }

    /// Processes one whole drained run from `port`. The run is drained
    /// (emptied, capacity retained) by the callee.
    ///
    /// Contract (see `DESIGN.md` § "Run-at-a-time algebra"):
    ///
    /// * the run is in arrival order and never contains `Close`;
    /// * heartbeats inside the run are non-decreasing, and no element in
    ///   the run starts before a heartbeat that precedes it (the watermark
    ///   contract holds *within* the run);
    /// * a run is **not** necessarily start-ordered — only upstreams that
    ///   preserve start order (sources, stateless operators) produce
    ///   start-ordered runs, so stateful operators must not assume it;
    /// * processing the run must produce the same output sequence as
    ///   feeding its messages one by one through
    ///   `on_element`/`on_heartbeat` — the equivalence every override is
    ///   property-tested against.
    ///
    /// The default does exactly that loop, so existing operators work
    /// unmodified; overrides amortize lookups/allocations across the run.
    fn on_run(
        &mut self,
        port: usize,
        run: &mut Vec<Message<Self::In>>,
        out: &mut dyn Collector<Self::Out>,
    ) {
        for msg in run.drain(..) {
            match msg {
                Message::Element(e) => self.on_element(port, e, out),
                Message::Heartbeat(t) => self.on_heartbeat(port, t, out),
                Message::Close => {}
            }
        }
    }

    /// Flushes remaining state after all inputs closed. Default: nothing.
    fn on_close(&mut self, out: &mut dyn Collector<Self::Out>) {
        let _ = out;
    }

    /// Current state size in retained elements (for the memory manager).
    fn memory(&self) -> usize {
        0
    }

    /// Estimated byte footprint of the retained state (count × per-unit
    /// size estimate; see `pipes_meta::estimators::StateSize`). Unlike
    /// [`memory`](Operator::memory), which counts abstract units for
    /// shedding ratios, this is byte-denominated so heterogeneous
    /// operators are comparable. Default: 0 (unreported).
    fn state_bytes(&self) -> usize {
        0
    }

    /// Sheds state down to approximately `target` retained elements using
    /// the operator's load-shedding strategy; returns the new state size.
    /// Stateless operators ignore this.
    fn shed(&mut self, target: usize) -> usize {
        let _ = target;
        self.memory()
    }
}

/// A two-input operator with heterogeneous input types (joins, difference).
pub trait BinaryOperator: Send + 'static {
    /// Payload type of the left input.
    type Left: Send + Clone + 'static;
    /// Payload type of the right input.
    type Right: Send + Clone + 'static;
    /// Output payload type.
    type Out: Send + Clone + 'static;

    /// Processes one element from the left input.
    fn on_left(&mut self, elem: Element<Self::Left>, out: &mut dyn Collector<Self::Out>);
    /// Processes one element from the right input.
    fn on_right(&mut self, elem: Element<Self::Right>, out: &mut dyn Collector<Self::Out>);
    /// Processes a heartbeat from the left input.
    fn on_heartbeat_left(&mut self, t: Timestamp, out: &mut dyn Collector<Self::Out>);
    /// Processes a heartbeat from the right input.
    fn on_heartbeat_right(&mut self, t: Timestamp, out: &mut dyn Collector<Self::Out>);

    /// Processes one whole drained run from the left input. Same contract
    /// as [`Operator::on_run`]; the default loops over
    /// `on_left`/`on_heartbeat_left`.
    fn on_run_left(
        &mut self,
        run: &mut Vec<Message<Self::Left>>,
        out: &mut dyn Collector<Self::Out>,
    ) {
        for msg in run.drain(..) {
            match msg {
                Message::Element(e) => self.on_left(e, out),
                Message::Heartbeat(t) => self.on_heartbeat_left(t, out),
                Message::Close => {}
            }
        }
    }

    /// Processes one whole drained run from the right input. Same contract
    /// as [`Operator::on_run`]; the default loops over
    /// `on_right`/`on_heartbeat_right`.
    fn on_run_right(
        &mut self,
        run: &mut Vec<Message<Self::Right>>,
        out: &mut dyn Collector<Self::Out>,
    ) {
        for msg in run.drain(..) {
            match msg {
                Message::Element(e) => self.on_right(e, out),
                Message::Heartbeat(t) => self.on_heartbeat_right(t, out),
                Message::Close => {}
            }
        }
    }

    /// Flushes remaining state after both inputs closed. Default: nothing.
    fn on_close(&mut self, out: &mut dyn Collector<Self::Out>) {
        let _ = out;
    }

    /// Current state size in retained elements.
    fn memory(&self) -> usize {
        0
    }

    /// Estimated byte footprint of the retained state (see
    /// [`Operator::state_bytes`]). Default: 0 (unreported).
    fn state_bytes(&self) -> usize {
        0
    }

    /// Sheds state down to approximately `target` retained elements.
    fn shed(&mut self, target: usize) -> usize {
        let _ = target;
        self.memory()
    }
}

impl<T: Send + Clone + 'static> SourceOp for Box<dyn SourceOp<Out = T>> {
    type Out = T;
    fn produce(&mut self, budget: usize, out: &mut dyn Collector<T>) -> SourceStatus {
        (**self).produce(budget, out)
    }
}

impl<I: Send + Clone + 'static, O: Send + Clone + 'static> Operator
    for Box<dyn Operator<In = I, Out = O>>
{
    type In = I;
    type Out = O;
    fn on_element(&mut self, port: usize, elem: Element<I>, out: &mut dyn Collector<O>) {
        (**self).on_element(port, elem, out)
    }
    fn on_heartbeat(&mut self, port: usize, t: Timestamp, out: &mut dyn Collector<O>) {
        (**self).on_heartbeat(port, t, out)
    }
    // Forwarded so a boxed operator keeps its native run path: without
    // this, planner-built graphs would silently fall back to the default
    // per-message loop of the blanket `Box` impl.
    fn on_run(&mut self, port: usize, run: &mut Vec<Message<I>>, out: &mut dyn Collector<O>) {
        (**self).on_run(port, run, out)
    }
    fn on_close(&mut self, out: &mut dyn Collector<O>) {
        (**self).on_close(out)
    }
    fn memory(&self) -> usize {
        (**self).memory()
    }
    fn state_bytes(&self) -> usize {
        (**self).state_bytes()
    }
    fn shed(&mut self, target: usize) -> usize {
        (**self).shed(target)
    }
}

/// A terminal sink: consumes messages, produces nothing downstream.
pub trait SinkOp: Send + 'static {
    /// Input payload type.
    type In: Send + Clone + 'static;

    /// Consumes one message from `port`.
    fn on_message(&mut self, port: usize, msg: Message<Self::In>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipes_time::TimeInterval;

    struct Doubler;
    impl Operator for Doubler {
        type In = i64;
        type Out = i64;
        fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
            out.element(e.map(|v| v * 2));
        }
    }

    #[test]
    fn vec_collector_and_default_heartbeat() {
        let mut op = Doubler;
        let mut out: Vec<Message<i64>> = Vec::new();
        op.on_element(0, Element::at(21, Timestamp::new(3)), &mut out);
        op.on_heartbeat(0, Timestamp::new(5), &mut out);
        op.on_close(&mut out);
        assert_eq!(
            out,
            vec![
                Message::Element(Element::new(
                    42,
                    TimeInterval::new(Timestamp::new(3), Timestamp::new(4))
                )),
                Message::Heartbeat(Timestamp::new(5)),
            ]
        );
        assert_eq!(op.memory(), 0);
        assert_eq!(op.shed(0), 0);
    }
}
