//! Ready-to-use sources and sinks.
//!
//! PIPES is a toolkit: besides the node-type interfaces it ships a collection
//! of ready-to-use components. These are the ones every test, example and
//! benchmark needs — materialized sources, collecting/counting sinks, and
//! closure adapters for wrapping application callbacks.

use crate::operator::{Collector, SinkOp, SourceOp, SourceStatus};
use pipes_sync::{Arc, Mutex};
use pipes_time::{Element, Message, Timestamp};

/// A source replaying a materialized, start-ordered vector of elements.
///
/// After each produced batch the source emits a heartbeat at the last
/// element's start (the stream is start-ordered, so this is the strongest
/// valid punctuation). Batching punctuations per scheduling quantum keeps
/// the per-element overhead of stateful downstream operators low.
pub struct VecSource<T> {
    elems: std::vec::IntoIter<Element<T>>,
}

impl<T: Send + Clone + 'static> VecSource<T> {
    /// Creates a source from `elems`, sorting them by start timestamp.
    pub fn new(mut elems: Vec<Element<T>>) -> Self {
        elems.sort_by_key(|e| e.start());
        VecSource {
            elems: elems.into_iter(),
        }
    }
}

impl<T: Send + Clone + 'static> SourceOp for VecSource<T> {
    type Out = T;

    fn produce(&mut self, budget: usize, out: &mut dyn Collector<T>) -> SourceStatus {
        let mut produced = 0;
        let mut last_start = None;
        let status = loop {
            if produced >= budget {
                break SourceStatus::Active;
            }
            match self.elems.next() {
                Some(e) => {
                    last_start = Some(e.start());
                    out.element(e);
                    produced += 1;
                }
                None => break SourceStatus::Exhausted,
            }
        };
        if let Some(hb) = last_start {
            out.heartbeat(hb);
        }
        status
    }
}

/// A source driven by a closure returning the next element, or `None` when
/// exhausted. Useful for generators.
pub struct GenSource<T, F> {
    gen: F,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T, F> GenSource<T, F>
where
    F: FnMut() -> Option<Element<T>> + Send + 'static,
{
    /// Creates a generator-backed source. The closure must yield elements
    /// non-decreasing in start timestamp.
    pub fn new(gen: F) -> Self {
        GenSource {
            gen,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T, F> SourceOp for GenSource<T, F>
where
    T: Send + Clone + 'static,
    F: FnMut() -> Option<Element<T>> + Send + 'static,
{
    type Out = T;

    fn produce(&mut self, budget: usize, out: &mut dyn Collector<T>) -> SourceStatus {
        let mut last_start = None;
        let mut status = SourceStatus::Active;
        for _ in 0..budget {
            match (self.gen)() {
                Some(e) => {
                    last_start = Some(e.start());
                    out.element(e);
                }
                None => {
                    status = SourceStatus::Exhausted;
                    break;
                }
            }
        }
        if let Some(hb) = last_start {
            out.heartbeat(hb);
        }
        status
    }
}

/// Shared buffer filled by a [`CollectSink`].
pub type Collected<T> = Arc<Mutex<Vec<Element<T>>>>;

/// A sink that collects all received elements into a shared buffer.
pub struct CollectSink<T> {
    buf: Collected<T>,
}

impl<T: Send + Clone + 'static> CollectSink<T> {
    /// Creates the sink and the shared handle for reading results.
    pub fn new() -> (Self, Collected<T>) {
        let buf: Collected<T> = Arc::new(Mutex::new(Vec::new()));
        (
            CollectSink {
                buf: Arc::clone(&buf),
            },
            buf,
        )
    }
}

impl<T: Send + Clone + 'static> SinkOp for CollectSink<T> {
    type In = T;

    fn on_message(&mut self, _port: usize, msg: Message<T>) {
        if let Message::Element(e) = msg {
            self.buf.lock().push(e);
        }
    }
}

/// A sink that only counts elements and tracks the latest watermark.
pub struct CountSink<T> {
    count: Arc<Mutex<(u64, Timestamp)>>,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T: Send + Clone + 'static> CountSink<T> {
    /// Creates the sink and a shared `(count, last_watermark)` cell.
    pub fn new() -> (Self, Arc<Mutex<(u64, Timestamp)>>) {
        let cell = Arc::new(Mutex::new((0, Timestamp::ZERO)));
        (
            CountSink {
                count: Arc::clone(&cell),
                _marker: std::marker::PhantomData,
            },
            cell,
        )
    }
}

impl<T: Send + Clone + 'static> SinkOp for CountSink<T> {
    type In = T;

    fn on_message(&mut self, _port: usize, msg: Message<T>) {
        let mut cell = self.count.lock();
        match msg {
            Message::Element(_) => cell.0 += 1,
            Message::Heartbeat(t) => cell.1 = cell.1.max(t),
            Message::Close => {}
        }
    }
}

/// A sink invoking a closure for every message.
pub struct FnSink<T, F> {
    f: F,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T, F> FnSink<T, F>
where
    F: FnMut(Message<T>) + Send + 'static,
{
    /// Creates a closure-backed sink.
    pub fn new(f: F) -> Self {
        FnSink {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T, F> SinkOp for FnSink<T, F>
where
    T: Send + Clone + 'static,
    F: FnMut(Message<T>) + Send + 'static,
{
    type In = T;

    fn on_message(&mut self, _port: usize, msg: Message<T>) {
        (self.f)(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_sorts_and_heartbeats_per_batch() {
        let mut src = VecSource::new(vec![
            Element::at(2, Timestamp::new(5)),
            Element::at(1, Timestamp::new(3)),
        ]);
        let mut out: Vec<Message<i32>> = Vec::new();
        assert_eq!(src.produce(10, &mut out), SourceStatus::Exhausted);
        assert_eq!(
            out,
            vec![
                Message::Element(Element::at(1, Timestamp::new(3))),
                Message::Element(Element::at(2, Timestamp::new(5))),
                Message::Heartbeat(Timestamp::new(5)),
            ]
        );
    }

    #[test]
    fn vec_source_respects_budget_and_punctuates_each_batch() {
        let mut src = VecSource::new(vec![
            Element::at(1, Timestamp::new(1)),
            Element::at(2, Timestamp::new(2)),
        ]);
        let mut out: Vec<Message<i32>> = Vec::new();
        assert_eq!(src.produce(1, &mut out), SourceStatus::Active);
        assert_eq!(out.iter().filter(|m| m.is_element()).count(), 1);
        assert_eq!(out.last(), Some(&Message::Heartbeat(Timestamp::new(1))));
    }

    #[test]
    fn gen_source_exhausts() {
        let mut n = 0;
        let mut src = GenSource::new(move || {
            n += 1;
            if n <= 3 {
                Some(Element::at(n, Timestamp::new(n as u64)))
            } else {
                None
            }
        });
        let mut out: Vec<Message<i32>> = Vec::new();
        assert_eq!(src.produce(10, &mut out), SourceStatus::Exhausted);
        assert_eq!(out.iter().filter(|m| m.is_element()).count(), 3);
        assert_eq!(out.last(), Some(&Message::Heartbeat(Timestamp::new(3))));
    }

    #[test]
    fn collect_sink_gathers_elements_only() {
        let (mut sink, buf) = CollectSink::new();
        sink.on_message(0, Message::Element(Element::at(7, Timestamp::new(1))));
        sink.on_message(0, Message::Heartbeat(Timestamp::new(2)));
        sink.on_message(0, Message::Close);
        assert_eq!(buf.lock().len(), 1);
        assert_eq!(buf.lock()[0].payload, 7);
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let seen = Arc::new(Mutex::new(0));
        let seen2 = Arc::clone(&seen);
        let mut sink = FnSink::new(move |m: Message<i32>| {
            if m.is_element() {
                *seen2.lock() += 1;
            }
        });
        sink.on_message(0, Message::Element(Element::at(1, Timestamp::new(0))));
        sink.on_message(0, Message::Close);
        assert_eq!(*seen.lock(), 1);
    }
}
