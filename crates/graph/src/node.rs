//! Type-erased runnable nodes wrapping typed operators.
//!
//! All four node kinds run a *batched* data path: input edges are drained in
//! runs via [`Edge::pop_run`] (one lock per run, not per message) into a
//! node-owned scratch buffer, and produced output is buffered by a
//! [`PublishCollector`] and flushed once per quantum. Multi-port nodes bound
//! each run by the head sequence of their other ports, so cross-port arrival
//! order is identical to per-message processing.
//!
//! Operator and binary nodes dispatch **whole runs**: after stripping the
//! terminal `Close` and coalescing adjacent heartbeats (see [`crate::run`]),
//! the drained run goes to the operator's run-level entry point
//! ([`Operator::on_run`] / the [`BinaryOperator`] run pair) in one call.
//! Sinks consume per message — they record every message anyway, so
//! heartbeat coalescing would change what tests observe for no gain.

use crate::edge::Edge;
use crate::operator::{BinaryOperator, Collector, Operator, SinkOp, SourceOp, SourceStatus};
use crate::outputs::{Outputs, PublishCollector, DEFAULT_FLUSH_CAP};
use crate::run::{coalesce_adjacent_heartbeats, take_trailing_close};
use pipes_meta::NodeStats;
use pipes_sync::Arc;
use pipes_time::{Element, Message, Timestamp};
use pipes_trace::LatencyTracker;

/// Sinks on the latency pipeline observe every Nth element rather than all
/// of them: the P² update and stamp lookup stay off the per-tuple path.
const LATENCY_SAMPLE_EVERY: u64 = 32;

/// What one scheduling quantum accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Messages consumed from input queues (sources: always 0).
    pub consumed: usize,
    /// Elements produced downstream.
    pub produced: usize,
    /// Input runs drained in one lock acquisition each (sources: always 0).
    /// `consumed / batches` is the mean batch size of the quantum.
    pub batches: usize,
    /// Largest single run (in messages) drained from one input edge this
    /// quantum (sources: always 0).
    pub peak_run: usize,
}

/// The type-erased face of a node, as seen by schedulers and the memory
/// manager. Payload types are hidden inside; strategies operate purely on
/// queue lengths, arrival order, statistics and memory counts.
pub trait Runnable: Send {
    /// Runs one scheduling quantum of at most `budget` messages.
    fn step(&mut self, budget: usize) -> StepReport;
    /// Total messages currently queued on the input edges.
    fn queued(&self) -> usize;
    /// Arrival sequence of the oldest queued message, if any.
    fn oldest_pending_seq(&self) -> Option<u64>;
    /// Whether the node will never produce work again.
    fn is_finished(&self) -> bool;
    /// Current operator state size in retained elements.
    fn memory(&self) -> usize;
    /// Estimated operator state footprint in bytes (see
    /// `Operator::state_bytes`). Default: 0 (unreported).
    fn state_bytes(&self) -> usize {
        0
    }
    /// Sheds operator state to roughly `target` elements; returns new size.
    fn shed(&mut self, target: usize) -> usize;
    /// Caps how many messages one input run may drain (and how many output
    /// messages are buffered before a flush). A limit of 1 degenerates to
    /// the per-message data path; the default is effectively unbounded.
    fn set_batch_limit(&mut self, limit: usize) {
        let _ = limit;
    }
    /// Joins the node to a source-to-sink latency pipeline. Sources stamp
    /// `(logical start, wall clock)` pairs into `tracker` as they produce;
    /// sinks look elements up against those stamps and record the observed
    /// latency into `stats`. Interior nodes ignore the call.
    fn attach_latency(&mut self, tracker: Arc<LatencyTracker>, stats: Arc<NodeStats>) {
        let _ = (tracker, stats);
    }
    /// Typed access for live reconfiguration: shuffle nodes (partition,
    /// keyed instance, merge — see [`crate::shuffle`]) return themselves so
    /// `QueryGraph::parallelize` can retarget routing tables and move keyed
    /// operator state while the graph runs. Everything else returns `None`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Wraps a collector to track the largest element-start timestamp that
/// passed through during one produce quantum, so the source can stamp the
/// latency tracker once per quantum instead of once per element.
struct StampingCollector<'a, 'b, T> {
    inner: &'a mut dyn Collector<T>,
    max_ticks: &'b mut Option<u64>,
}

impl<T> Collector<T> for StampingCollector<'_, '_, T> {
    fn element(&mut self, e: Element<T>) {
        let t = e.start().ticks();
        if self.max_ticks.is_none_or(|m| t > m) {
            *self.max_ticks = Some(t);
        }
        self.inner.element(e);
    }
    fn heartbeat(&mut self, t: Timestamp) {
        self.inner.heartbeat(t);
    }
}

/// Picks the input edge whose head message arrived earliest. Processing in
/// global arrival order keeps multi-port operators fair and lets watermarks
/// advance promptly.
fn earliest_port<T>(edges: &[Arc<Edge<T>>]) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (i, e) in edges.iter().enumerate() {
        if let Some(seq) = e.head_seq() {
            if best.is_none_or(|(s, _)| seq < s) {
                best = Some((seq, i));
            }
        }
    }
    best.map(|(_, i)| i)
}

/// The largest arrival sequence a run from `port` may consume without
/// overtaking any other port: messages on `port` with seq *at most* the
/// returned bound sort before (or, on ties, at the position chosen by
/// [`earliest_port`]'s lowest-index rule relative to) every other head.
fn run_bound<T>(edges: &[Arc<Edge<T>>], port: usize) -> u64 {
    let mut bound = u64::MAX;
    for (i, e) in edges.iter().enumerate() {
        if i == port {
            continue;
        }
        if let Some(seq) = e.head_seq() {
            // Equal sequences (fan-out copies of one publish reaching two
            // ports of the same node) go to the lower-indexed port first.
            let b = if port < i { seq } else { seq.saturating_sub(1) };
            bound = bound.min(b);
        }
    }
    bound
}

/// Output flush cap for a given batch limit: batch-limit-1 must flush per
/// message; otherwise the cap bounds scratch growth for expansive operators.
fn flush_cap(batch_limit: usize) -> usize {
    batch_limit.min(DEFAULT_FLUSH_CAP)
}

// ---------------------------------------------------------------------------
// Source node
// ---------------------------------------------------------------------------

/// Wraps a [`SourceOp`] as a runnable node.
pub struct SourceNode<S: SourceOp> {
    op: S,
    outputs: Arc<Outputs<S::Out>>,
    exhausted: bool,
    batch_limit: usize,
    out_scratch: Vec<Message<S::Out>>,
    latency: Option<Arc<LatencyTracker>>,
}

impl<S: SourceOp> SourceNode<S> {
    /// Creates a source node publishing to `outputs`.
    pub fn new(op: S, outputs: Arc<Outputs<S::Out>>) -> Self {
        SourceNode {
            op,
            outputs,
            exhausted: false,
            batch_limit: usize::MAX,
            out_scratch: Vec::new(),
            latency: None,
        }
    }
}

impl<S: SourceOp> Runnable for SourceNode<S> {
    fn step(&mut self, budget: usize) -> StepReport {
        if self.exhausted {
            return StepReport::default();
        }
        let mut collector = PublishCollector::new(&self.outputs, &mut self.out_scratch)
            .with_flush_cap(flush_cap(self.batch_limit));
        let status;
        if let Some(tracker) = &self.latency {
            let mut max_ticks = None;
            let mut stamping = StampingCollector {
                inner: &mut collector,
                max_ticks: &mut max_ticks,
            };
            status = self.op.produce(budget, &mut stamping);
            if let Some(logical) = max_ticks {
                // One stamp per quantum, taken before the final flush. The
                // stamp covers every element of the quantum, so per-element
                // latencies are slight overestimates (conservative for SLO
                // monitoring). Elements flushed mid-quantum by the output
                // cap may briefly outrun their stamp; sinks simply skip
                // samples with no covering stamp.
                tracker.stamp(logical, pipes_trace::now_ns());
            }
        } else {
            status = self.op.produce(budget, &mut collector);
        }
        let produced = collector.finish();
        drop(collector);
        if status == SourceStatus::Exhausted {
            self.exhausted = true;
            self.outputs.publish_close();
        }
        StepReport {
            consumed: 0,
            produced,
            batches: 0,
            peak_run: 0,
        }
    }

    fn queued(&self) -> usize {
        0
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        None
    }

    fn is_finished(&self) -> bool {
        self.exhausted
    }

    fn memory(&self) -> usize {
        0
    }

    fn shed(&mut self, _target: usize) -> usize {
        0
    }

    fn set_batch_limit(&mut self, limit: usize) {
        self.batch_limit = limit.max(1);
    }

    fn attach_latency(&mut self, tracker: Arc<LatencyTracker>, _stats: Arc<NodeStats>) {
        self.latency = Some(tracker);
    }
}

// ---------------------------------------------------------------------------
// Operator node (n-ary, homogeneous input type)
// ---------------------------------------------------------------------------

/// Wraps an [`Operator`] with its input edges and output port.
pub struct OpNode<O: Operator> {
    op: O,
    inputs: Vec<Arc<Edge<O::In>>>,
    open_ports: Vec<bool>,
    outputs: Arc<Outputs<O::Out>>,
    closed_downstream: bool,
    batch_limit: usize,
    in_scratch: Vec<(u64, Message<O::In>)>,
    run_scratch: Vec<Message<O::In>>,
    out_scratch: Vec<Message<O::Out>>,
}

impl<O: Operator> OpNode<O> {
    /// Creates an operator node reading from `inputs` (one edge per port).
    pub fn new(op: O, inputs: Vec<Arc<Edge<O::In>>>, outputs: Arc<Outputs<O::Out>>) -> Self {
        let open_ports = vec![true; inputs.len()];
        OpNode {
            op,
            inputs,
            open_ports,
            outputs,
            closed_downstream: false,
            batch_limit: usize::MAX,
            in_scratch: Vec::new(),
            run_scratch: Vec::new(),
            out_scratch: Vec::new(),
        }
    }
}

impl<O: Operator> Runnable for OpNode<O> {
    fn step(&mut self, budget: usize) -> StepReport {
        let mut report = StepReport::default();
        if self.closed_downstream {
            return report;
        }
        let mut drained = std::mem::take(&mut self.in_scratch);
        let mut run = std::mem::take(&mut self.run_scratch);
        let mut out_buf = std::mem::take(&mut self.out_scratch);
        let mut collector = PublishCollector::new(&self.outputs, &mut out_buf)
            .with_flush_cap(flush_cap(self.batch_limit));
        while report.consumed < budget {
            let Some(port) = earliest_port(&self.inputs) else {
                break;
            };
            let bound = run_bound(&self.inputs, port);
            let max = (budget - report.consumed).min(self.batch_limit);
            let n = self.inputs[port].pop_run(max, bound, &mut drained);
            if n == 0 {
                break;
            }
            report.batches += 1;
            report.consumed += n;
            report.peak_run = report.peak_run.max(n);
            run.extend(drained.drain(..).map(|(_, msg)| msg));
            let closed = take_trailing_close(&mut run);
            if !run.is_empty() {
                let coalesced = coalesce_adjacent_heartbeats(&mut run);
                pipes_trace::instant_coarse(
                    pipes_trace::names::OP_RUN,
                    [run.len() as u64, port as u64, coalesced as u64],
                );
                self.op.on_run(port, &mut run, &mut collector);
                run.clear();
            }
            if closed {
                self.open_ports[port] = false;
                if self.open_ports.iter().all(|o| !o) {
                    self.op.on_close(&mut collector);
                    self.closed_downstream = true;
                    break;
                }
            }
        }
        report.produced = collector.finish();
        drop(collector);
        self.in_scratch = drained;
        self.run_scratch = run;
        self.out_scratch = out_buf;
        if self.closed_downstream {
            self.outputs.publish_close();
        }
        report
    }

    fn queued(&self) -> usize {
        self.inputs.iter().map(|e| e.len()).sum()
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        self.inputs.iter().filter_map(|e| e.head_seq()).min()
    }

    fn is_finished(&self) -> bool {
        self.closed_downstream
    }

    fn memory(&self) -> usize {
        self.op.memory()
    }

    fn state_bytes(&self) -> usize {
        self.op.state_bytes()
    }

    fn shed(&mut self, target: usize) -> usize {
        self.op.shed(target)
    }

    fn set_batch_limit(&mut self, limit: usize) {
        self.batch_limit = limit.max(1);
    }
}

// ---------------------------------------------------------------------------
// Binary operator node
// ---------------------------------------------------------------------------

/// Wraps a [`BinaryOperator`] with one edge per side.
pub struct BinNode<B: BinaryOperator> {
    op: B,
    left: Arc<Edge<B::Left>>,
    right: Arc<Edge<B::Right>>,
    left_open: bool,
    right_open: bool,
    outputs: Arc<Outputs<B::Out>>,
    closed_downstream: bool,
    batch_limit: usize,
    left_scratch: Vec<(u64, Message<B::Left>)>,
    right_scratch: Vec<(u64, Message<B::Right>)>,
    left_run: Vec<Message<B::Left>>,
    right_run: Vec<Message<B::Right>>,
    out_scratch: Vec<Message<B::Out>>,
}

impl<B: BinaryOperator> BinNode<B> {
    /// Creates a binary node reading from `left` and `right`.
    pub fn new(
        op: B,
        left: Arc<Edge<B::Left>>,
        right: Arc<Edge<B::Right>>,
        outputs: Arc<Outputs<B::Out>>,
    ) -> Self {
        BinNode {
            op,
            left,
            right,
            left_open: true,
            right_open: true,
            outputs,
            closed_downstream: false,
            batch_limit: usize::MAX,
            left_scratch: Vec::new(),
            right_scratch: Vec::new(),
            left_run: Vec::new(),
            right_run: Vec::new(),
            out_scratch: Vec::new(),
        }
    }
}

impl<B: BinaryOperator> Runnable for BinNode<B> {
    fn step(&mut self, budget: usize) -> StepReport {
        let mut report = StepReport::default();
        if self.closed_downstream {
            return report;
        }
        let mut left_drained = std::mem::take(&mut self.left_scratch);
        let mut right_drained = std::mem::take(&mut self.right_scratch);
        let mut left_run = std::mem::take(&mut self.left_run);
        let mut right_run = std::mem::take(&mut self.right_run);
        let mut out_buf = std::mem::take(&mut self.out_scratch);
        let mut collector = PublishCollector::new(&self.outputs, &mut out_buf)
            .with_flush_cap(flush_cap(self.batch_limit));
        while report.consumed < budget {
            // Process in arrival order across the two sides; the side whose
            // head arrived first drains a run bounded by the other head.
            let ls = self.left.head_seq();
            let rs = self.right.head_seq();
            let take_left = match (ls, rs) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(l), Some(r)) => l <= r,
            };
            let max = (budget - report.consumed).min(self.batch_limit);
            let closed_side = if take_left {
                // Left wins sequence ties, so its run may include the
                // right head's sequence itself.
                let bound = rs.unwrap_or(u64::MAX);
                let n = self.left.pop_run(max, bound, &mut left_drained);
                if n == 0 {
                    break;
                }
                report.batches += 1;
                report.consumed += n;
                report.peak_run = report.peak_run.max(n);
                left_run.extend(left_drained.drain(..).map(|(_, msg)| msg));
                let closed = take_trailing_close(&mut left_run);
                if !left_run.is_empty() {
                    let coalesced = coalesce_adjacent_heartbeats(&mut left_run);
                    pipes_trace::instant_coarse(
                        pipes_trace::names::OP_RUN,
                        [left_run.len() as u64, 0, coalesced as u64],
                    );
                    self.op.on_run_left(&mut left_run, &mut collector);
                    left_run.clear();
                }
                if closed {
                    self.left_open = false;
                }
                closed
            } else {
                // Right loses sequence ties: stop strictly before the left
                // head's sequence.
                let bound = ls.map_or(u64::MAX, |l| l.saturating_sub(1));
                let n = self.right.pop_run(max, bound, &mut right_drained);
                if n == 0 {
                    break;
                }
                report.batches += 1;
                report.consumed += n;
                report.peak_run = report.peak_run.max(n);
                right_run.extend(right_drained.drain(..).map(|(_, msg)| msg));
                let closed = take_trailing_close(&mut right_run);
                if !right_run.is_empty() {
                    let coalesced = coalesce_adjacent_heartbeats(&mut right_run);
                    pipes_trace::instant_coarse(
                        pipes_trace::names::OP_RUN,
                        [right_run.len() as u64, 1, coalesced as u64],
                    );
                    self.op.on_run_right(&mut right_run, &mut collector);
                    right_run.clear();
                }
                if closed {
                    self.right_open = false;
                }
                closed
            };
            if closed_side && !self.left_open && !self.right_open {
                self.op.on_close(&mut collector);
                self.closed_downstream = true;
                break;
            }
        }
        report.produced = collector.finish();
        drop(collector);
        self.left_scratch = left_drained;
        self.right_scratch = right_drained;
        self.left_run = left_run;
        self.right_run = right_run;
        self.out_scratch = out_buf;
        if self.closed_downstream {
            self.outputs.publish_close();
        }
        report
    }

    fn queued(&self) -> usize {
        self.left.len() + self.right.len()
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        match (self.left.head_seq(), self.right.head_seq()) {
            (None, None) => None,
            (Some(l), None) => Some(l),
            (None, Some(r)) => Some(r),
            (Some(l), Some(r)) => Some(l.min(r)),
        }
    }

    fn is_finished(&self) -> bool {
        self.closed_downstream
    }

    fn memory(&self) -> usize {
        self.op.memory()
    }

    fn state_bytes(&self) -> usize {
        self.op.state_bytes()
    }

    fn shed(&mut self, target: usize) -> usize {
        self.op.shed(target)
    }

    fn set_batch_limit(&mut self, limit: usize) {
        self.batch_limit = limit.max(1);
    }
}

// ---------------------------------------------------------------------------
// Sink node
// ---------------------------------------------------------------------------

/// Wraps a [`SinkOp`] with its input edges.
pub struct SinkNode<K: SinkOp> {
    op: K,
    inputs: Vec<Arc<Edge<K::In>>>,
    open_ports: Vec<bool>,
    batch_limit: usize,
    in_scratch: Vec<(u64, Message<K::In>)>,
    latency: Option<(Arc<LatencyTracker>, Arc<NodeStats>)>,
    latency_ctr: u64,
}

impl<K: SinkOp> SinkNode<K> {
    /// Creates a sink node reading from `inputs` (one edge per port).
    pub fn new(op: K, inputs: Vec<Arc<Edge<K::In>>>) -> Self {
        let open_ports = vec![true; inputs.len()];
        SinkNode {
            op,
            inputs,
            open_ports,
            batch_limit: usize::MAX,
            in_scratch: Vec::new(),
            latency: None,
            latency_ctr: 0,
        }
    }
}

impl<K: SinkOp> Runnable for SinkNode<K> {
    fn step(&mut self, budget: usize) -> StepReport {
        let mut report = StepReport::default();
        let mut run = std::mem::take(&mut self.in_scratch);
        // Latency samples observed this quantum; folded into the node's
        // quantile estimators in one batch (one stats lock per quantum).
        let mut lat_samples: Vec<u64> = Vec::new();
        while report.consumed < budget {
            let Some(port) = earliest_port(&self.inputs) else {
                break;
            };
            let bound = run_bound(&self.inputs, port);
            let max = (budget - report.consumed).min(self.batch_limit);
            let n = self.inputs[port].pop_run(max, bound, &mut run);
            if n == 0 {
                break;
            }
            report.batches += 1;
            report.consumed += n;
            report.peak_run = report.peak_run.max(n);
            for (_, msg) in run.drain(..) {
                match &msg {
                    Message::Close => self.open_ports[port] = false,
                    Message::Element(e) => {
                        if let Some((tracker, _)) = &self.latency {
                            self.latency_ctr += 1;
                            // `== 1` so the very first element is sampled:
                            // short streams still produce a summary.
                            if self.latency_ctr % LATENCY_SAMPLE_EVERY == 1 {
                                let logical = e.start().ticks();
                                if let Some(lat) = tracker.observe(logical, pipes_trace::now_ns()) {
                                    lat_samples.push(lat);
                                }
                            }
                        }
                    }
                    Message::Heartbeat(_) => {}
                }
                self.op.on_message(port, msg);
            }
        }
        self.in_scratch = run;
        if let Some((_, stats)) = &self.latency {
            stats.record_latency_ns(&lat_samples);
        }
        report
    }

    fn queued(&self) -> usize {
        self.inputs.iter().map(|e| e.len()).sum()
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        self.inputs.iter().filter_map(|e| e.head_seq()).min()
    }

    fn is_finished(&self) -> bool {
        self.open_ports.iter().all(|o| !o) && self.queued() == 0
    }

    fn memory(&self) -> usize {
        0
    }

    fn shed(&mut self, _target: usize) -> usize {
        0
    }

    fn set_batch_limit(&mut self, limit: usize) {
        self.batch_limit = limit.max(1);
    }

    fn attach_latency(&mut self, tracker: Arc<LatencyTracker>, stats: Arc<NodeStats>) {
        self.latency = Some((tracker, stats));
    }
}
