//! Type-erased runnable nodes wrapping typed operators.

use crate::edge::Edge;
use crate::operator::{BinaryOperator, Operator, SinkOp, SourceOp, SourceStatus};
use crate::outputs::{Outputs, PublishCollector};
use pipes_time::Message;
use std::sync::Arc;

/// What one scheduling quantum accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Messages consumed from input queues (sources: always 0).
    pub consumed: usize,
    /// Elements produced downstream.
    pub produced: usize,
}

/// The type-erased face of a node, as seen by schedulers and the memory
/// manager. Payload types are hidden inside; strategies operate purely on
/// queue lengths, arrival order, statistics and memory counts.
pub trait Runnable: Send {
    /// Runs one scheduling quantum of at most `budget` messages.
    fn step(&mut self, budget: usize) -> StepReport;
    /// Total messages currently queued on the input edges.
    fn queued(&self) -> usize;
    /// Arrival sequence of the oldest queued message, if any.
    fn oldest_pending_seq(&self) -> Option<u64>;
    /// Whether the node will never produce work again.
    fn is_finished(&self) -> bool;
    /// Current operator state size in retained elements.
    fn memory(&self) -> usize;
    /// Sheds operator state to roughly `target` elements; returns new size.
    fn shed(&mut self, target: usize) -> usize;
}

/// Picks the input edge whose head message arrived earliest. Processing in
/// global arrival order keeps multi-port operators fair and lets watermarks
/// advance promptly.
fn earliest_port<T>(edges: &[Arc<Edge<T>>]) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (i, e) in edges.iter().enumerate() {
        if let Some(seq) = e.head_seq() {
            if best.is_none_or(|(s, _)| seq < s) {
                best = Some((seq, i));
            }
        }
    }
    best.map(|(_, i)| i)
}

// ---------------------------------------------------------------------------
// Source node
// ---------------------------------------------------------------------------

/// Wraps a [`SourceOp`] as a runnable node.
pub struct SourceNode<S: SourceOp> {
    op: S,
    outputs: Arc<Outputs<S::Out>>,
    exhausted: bool,
}

impl<S: SourceOp> SourceNode<S> {
    /// Creates a source node publishing to `outputs`.
    pub fn new(op: S, outputs: Arc<Outputs<S::Out>>) -> Self {
        SourceNode {
            op,
            outputs,
            exhausted: false,
        }
    }
}

impl<S: SourceOp> Runnable for SourceNode<S> {
    fn step(&mut self, budget: usize) -> StepReport {
        if self.exhausted {
            return StepReport::default();
        }
        let mut collector = PublishCollector::new(&self.outputs);
        let status = self.op.produce(budget, &mut collector);
        let produced = collector.produced();
        if status == SourceStatus::Exhausted {
            self.exhausted = true;
            self.outputs.publish_close();
        }
        StepReport {
            consumed: 0,
            produced,
        }
    }

    fn queued(&self) -> usize {
        0
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        None
    }

    fn is_finished(&self) -> bool {
        self.exhausted
    }

    fn memory(&self) -> usize {
        0
    }

    fn shed(&mut self, _target: usize) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// Operator node (n-ary, homogeneous input type)
// ---------------------------------------------------------------------------

/// Wraps an [`Operator`] with its input edges and output port.
pub struct OpNode<O: Operator> {
    op: O,
    inputs: Vec<Arc<Edge<O::In>>>,
    open_ports: Vec<bool>,
    outputs: Arc<Outputs<O::Out>>,
    closed_downstream: bool,
}

impl<O: Operator> OpNode<O> {
    /// Creates an operator node reading from `inputs` (one edge per port).
    pub fn new(op: O, inputs: Vec<Arc<Edge<O::In>>>, outputs: Arc<Outputs<O::Out>>) -> Self {
        let open_ports = vec![true; inputs.len()];
        OpNode {
            op,
            inputs,
            open_ports,
            outputs,
            closed_downstream: false,
        }
    }
}

impl<O: Operator> Runnable for OpNode<O> {
    fn step(&mut self, budget: usize) -> StepReport {
        let mut report = StepReport::default();
        if self.closed_downstream {
            return report;
        }
        let mut collector = PublishCollector::new(&self.outputs);
        for _ in 0..budget {
            let Some(port) = earliest_port(&self.inputs) else {
                break;
            };
            let Some((_, msg)) = self.inputs[port].pop() else {
                break;
            };
            report.consumed += 1;
            match msg {
                Message::Element(e) => self.op.on_element(port, e, &mut collector),
                Message::Heartbeat(t) => self.op.on_heartbeat(port, t, &mut collector),
                Message::Close => {
                    self.open_ports[port] = false;
                    if self.open_ports.iter().all(|o| !o) {
                        self.op.on_close(&mut collector);
                        self.closed_downstream = true;
                        break;
                    }
                }
            }
        }
        report.produced = collector.produced();
        if self.closed_downstream {
            self.outputs.publish_close();
        }
        report
    }

    fn queued(&self) -> usize {
        self.inputs.iter().map(|e| e.len()).sum()
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        self.inputs.iter().filter_map(|e| e.head_seq()).min()
    }

    fn is_finished(&self) -> bool {
        self.closed_downstream
    }

    fn memory(&self) -> usize {
        self.op.memory()
    }

    fn shed(&mut self, target: usize) -> usize {
        self.op.shed(target)
    }
}

// ---------------------------------------------------------------------------
// Binary operator node
// ---------------------------------------------------------------------------

/// Wraps a [`BinaryOperator`] with one edge per side.
pub struct BinNode<B: BinaryOperator> {
    op: B,
    left: Arc<Edge<B::Left>>,
    right: Arc<Edge<B::Right>>,
    left_open: bool,
    right_open: bool,
    outputs: Arc<Outputs<B::Out>>,
    closed_downstream: bool,
}

impl<B: BinaryOperator> BinNode<B> {
    /// Creates a binary node reading from `left` and `right`.
    pub fn new(
        op: B,
        left: Arc<Edge<B::Left>>,
        right: Arc<Edge<B::Right>>,
        outputs: Arc<Outputs<B::Out>>,
    ) -> Self {
        BinNode {
            op,
            left,
            right,
            left_open: true,
            right_open: true,
            outputs,
            closed_downstream: false,
        }
    }
}

impl<B: BinaryOperator> Runnable for BinNode<B> {
    fn step(&mut self, budget: usize) -> StepReport {
        let mut report = StepReport::default();
        if self.closed_downstream {
            return report;
        }
        let mut collector = PublishCollector::new(&self.outputs);
        for _ in 0..budget {
            // Process in arrival order across the two sides.
            let ls = self.left.head_seq();
            let rs = self.right.head_seq();
            let take_left = match (ls, rs) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(l), Some(r)) => l <= r,
            };
            report.consumed += 1;
            if take_left {
                let (_, msg) = self.left.pop().expect("head_seq guaranteed a message");
                match msg {
                    Message::Element(e) => self.op.on_left(e, &mut collector),
                    Message::Heartbeat(t) => self.op.on_heartbeat_left(t, &mut collector),
                    Message::Close => self.left_open = false,
                }
            } else {
                let (_, msg) = self.right.pop().expect("head_seq guaranteed a message");
                match msg {
                    Message::Element(e) => self.op.on_right(e, &mut collector),
                    Message::Heartbeat(t) => self.op.on_heartbeat_right(t, &mut collector),
                    Message::Close => self.right_open = false,
                }
            }
            if !self.left_open && !self.right_open {
                self.op.on_close(&mut collector);
                self.closed_downstream = true;
                break;
            }
        }
        report.produced = collector.produced();
        if self.closed_downstream {
            self.outputs.publish_close();
        }
        report
    }

    fn queued(&self) -> usize {
        self.left.len() + self.right.len()
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        match (self.left.head_seq(), self.right.head_seq()) {
            (None, None) => None,
            (Some(l), None) => Some(l),
            (None, Some(r)) => Some(r),
            (Some(l), Some(r)) => Some(l.min(r)),
        }
    }

    fn is_finished(&self) -> bool {
        self.closed_downstream
    }

    fn memory(&self) -> usize {
        self.op.memory()
    }

    fn shed(&mut self, target: usize) -> usize {
        self.op.shed(target)
    }
}

// ---------------------------------------------------------------------------
// Sink node
// ---------------------------------------------------------------------------

/// Wraps a [`SinkOp`] with its input edges.
pub struct SinkNode<K: SinkOp> {
    op: K,
    inputs: Vec<Arc<Edge<K::In>>>,
    open_ports: Vec<bool>,
}

impl<K: SinkOp> SinkNode<K> {
    /// Creates a sink node reading from `inputs` (one edge per port).
    pub fn new(op: K, inputs: Vec<Arc<Edge<K::In>>>) -> Self {
        let open_ports = vec![true; inputs.len()];
        SinkNode {
            op,
            inputs,
            open_ports,
        }
    }
}

impl<K: SinkOp> Runnable for SinkNode<K> {
    fn step(&mut self, budget: usize) -> StepReport {
        let mut report = StepReport::default();
        for _ in 0..budget {
            let Some(port) = earliest_port(&self.inputs) else {
                break;
            };
            let Some((_, msg)) = self.inputs[port].pop() else {
                break;
            };
            report.consumed += 1;
            if matches!(msg, Message::Close) {
                self.open_ports[port] = false;
            }
            self.op.on_message(port, msg);
        }
        report
    }

    fn queued(&self) -> usize {
        self.inputs.iter().map(|e| e.len()).sum()
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        self.inputs.iter().filter_map(|e| e.head_seq()).min()
    }

    fn is_finished(&self) -> bool {
        self.open_ports.iter().all(|o| !o) && self.queued() == 0
    }

    fn memory(&self) -> usize {
        0
    }

    fn shed(&mut self, _target: usize) -> usize {
        0
    }
}
