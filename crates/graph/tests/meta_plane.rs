//! The metadata plane observed through the public graph API: warm nodes
//! report measured estimates, cold nodes inherit topology-derived ones,
//! all-cold subgraphs fall back to priors, and measured selectivity
//! composes through `Fused` chains.

use pipes_graph::io::{CollectSink, VecSource};
use pipes_graph::{Collector, Confidence, MetaConfig, Operator, OperatorExt, QueryGraph};
use pipes_time::{Element, Timestamp};

/// Keeps every `k`-th element (selectivity 1/k over elements).
struct Keep(i64);

impl Operator for Keep {
    type In = i64;
    type Out = i64;
    fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
        if e.payload % self.0 == 0 {
            out.element(e);
        }
    }
}

fn elems(n: i64) -> Vec<Element<i64>> {
    (0..n)
        .map(|v| Element::at(v, Timestamp::new(v as u64)))
        .collect()
}

const N: i64 = 4096;

/// Message-level selectivity of `Keep(k)` over `elems(N)` drained with a
/// generous budget: the source emits one heartbeat per quantum plus one
/// close, so the ratio sits near 1/k but not exactly on it.
fn sel_tolerance(observed: f64, ideal: f64) {
    assert!(
        (observed - ideal).abs() < 0.05,
        "selectivity {observed} not within 0.05 of {ideal}"
    );
}

#[test]
fn warm_pipeline_reports_measured_estimates() {
    if pipes_meta::META_COMPILED_OUT {
        return;
    }
    let g = QueryGraph::new();
    let src = g.add_source("src", VecSource::new(elems(N)));
    let half = g.add_unary("half", Keep(2), &src);
    let (sink, _) = CollectSink::new();
    let k = g.add_sink("sink", sink, &half);
    g.run_to_completion(256);

    let snap = g.meta_snapshot(&MetaConfig::default());
    assert_eq!(snap.len(), 3);
    for e in snap.iter() {
        assert_eq!(e.confidence, Confidence::Measured, "{} is warm", e.name);
        assert!(e.age_secs.unwrap() < 1.0);
    }
    let filter = snap.get(half.node()).unwrap();
    sel_tolerance(filter.selectivity, 0.5);
    assert!(filter.in_rate > 0.0);
    assert!(
        (filter.out_rate / filter.in_rate - filter.selectivity).abs() < 0.05,
        "rates and selectivity must agree: {} / {} vs {}",
        filter.out_rate,
        filter.in_rate,
        filter.selectivity
    );
    let sink_est = snap.get(k).unwrap();
    assert_eq!(sink_est.out_rate, 0.0, "sinks emit nothing");
    assert!(sink_est.in_rate > 0.0);
    // The JSON introspection dump covers every live node.
    let js = snap.to_json();
    for name in ["src", "half", "sink"] {
        assert!(js.contains(&format!("\"name\":\"{name}\"")), "{js}");
    }
}

#[test]
fn cold_spliced_consumer_derives_from_warm_diamond_parents() {
    if pipes_meta::META_COMPILED_OUT {
        return;
    }
    let g = QueryGraph::new();
    // Infinite-ish warm section: drain a large prefix without finishing.
    let src = g.add_source("src", VecSource::new(elems(N)));
    let a = g.add_unary("a", Keep(2), &src);
    let b = g.add_unary("b", Keep(4), &src);
    for _ in 0..8 {
        g.step_node(src.node(), 256);
        g.step_node(a.node(), 512);
        g.step_node(b.node(), 512);
    }
    // Splice in a cold child over both warm parents, never stepped.
    let (sink, _) = CollectSink::new();
    let joined = g.add_sink_nary("joined", sink, &[a.clone(), b.clone()]);

    let snap = g.meta_snapshot(&MetaConfig::default());
    let (ea, eb) = (snap.get(a.node()).unwrap(), snap.get(b.node()).unwrap());
    assert_eq!(ea.confidence, Confidence::Measured);
    assert_eq!(eb.confidence, Confidence::Measured);
    sel_tolerance(ea.selectivity, 0.5);
    sel_tolerance(eb.selectivity, 0.25);

    let cold = snap.get(joined).unwrap();
    assert_eq!(cold.confidence, Confidence::Derived);
    assert!(
        (cold.in_rate - (ea.out_rate + eb.out_rate)).abs() < 1e-9,
        "diamond child in_rate {} must be the sum of parents {} + {}",
        cold.in_rate,
        ea.out_rate,
        eb.out_rate
    );
    assert_eq!(cold.age_secs, None, "never measured");
}

#[test]
fn all_cold_subgraph_falls_back_to_priors() {
    let g = QueryGraph::new();
    let src = g.add_source("src", VecSource::new(elems(16)));
    let f = g.add_unary("f", Keep(2), &src);
    let (sink, _) = CollectSink::new();
    let k = g.add_sink("sink", sink, &f);
    // Never stepped: the whole subgraph is cold.
    let cfg = MetaConfig::default();
    let snap = g.meta_snapshot(&cfg);
    for e in snap.iter() {
        assert_eq!(e.confidence, Confidence::Prior, "{} has no data", e.name);
    }
    assert_eq!(
        snap.get(src.node()).unwrap().out_rate,
        cfg.default_source_rate
    );
    let fe = snap.get(f.node()).unwrap();
    assert_eq!(fe.in_rate, cfg.default_source_rate);
    assert_eq!(
        fe.out_rate,
        cfg.default_source_rate * cfg.default_selectivity
    );
    assert_eq!(snap.get(k).unwrap().out_rate, 0.0);
}

#[test]
fn stale_measurement_survives_as_selectivity_prior() {
    if pipes_meta::META_COMPILED_OUT {
        return;
    }
    let g = QueryGraph::new();
    let src = g.add_source("src", VecSource::new(elems(N)));
    let f = g.add_unary("f", Keep(2), &src);
    let (sink, _) = CollectSink::new();
    g.add_sink("sink", sink, &f);
    g.run_to_completion(256);

    // A negative bound declares every measurement stale, forcing the
    // derivation path without having to actually wait the staleness out.
    let cfg = MetaConfig {
        staleness_bound_secs: -1.0,
        ..MetaConfig::default()
    };
    let snap = g.meta_snapshot(&cfg);
    let src_est = snap.get(src.node()).unwrap();
    assert_eq!(src_est.confidence, Confidence::Prior, "stale source");
    assert_eq!(src_est.out_rate, cfg.default_source_rate);
    let fe = snap.get(f.node()).unwrap();
    assert_eq!(fe.confidence, Confidence::Prior, "no fresh link anywhere");
    sel_tolerance(fe.selectivity, 0.5); // own stale measurement, not 1.0
    assert!(
        (fe.out_rate - cfg.default_source_rate * fe.selectivity).abs() < 1e-9,
        "stale selectivity prior must shape the derived rate"
    );
    assert!(fe.age_secs.is_some(), "staleness still reported");
}

#[test]
fn fused_chain_measures_composed_selectivity_with_variance() {
    if pipes_meta::META_COMPILED_OUT {
        return;
    }
    let g = QueryGraph::new();
    let src = g.add_source("src", VecSource::new(elems(N)));
    // Keep(2) ∘ Keep(4) fused into one virtual node: element-level
    // selectivity 1/4 end to end (multiples of 4 survive both).
    let fused = g.add_unary("fused", Keep(2).then(Keep(4)), &src);
    let (sink, buf) = CollectSink::new();
    g.add_sink("sink", sink, &fused);
    g.run_to_completion(256);
    assert_eq!(buf.lock().len() as i64, N / 4, "semantic ground truth");

    let snap = g.meta_snapshot(&MetaConfig::default());
    let e = snap.get(fused.node()).unwrap();
    assert_eq!(e.confidence, Confidence::Measured);
    sel_tolerance(e.selectivity, 0.25);
    assert!(
        e.selectivity_var > 0.0,
        "per-quantum selectivity fluctuates across runs (close/heartbeat \
         tails), so the variance estimator must have picked up spread"
    );
}

#[test]
fn removed_nodes_vanish_from_snapshots() {
    let g = QueryGraph::new();
    let src = g.add_source("src", VecSource::new(elems(16)));
    let (s1, _) = CollectSink::new();
    let doomed = g.add_sink("doomed", s1, &src);
    g.remove_node(doomed);
    let snap = g.meta_snapshot(&MetaConfig::default());
    assert!(snap.get(doomed).is_none());
    assert!(snap.get(src.node()).is_some());
    assert_eq!(snap.iter().count(), 1);
}
