//! Batched execution must be observationally identical to per-message
//! execution.
//!
//! The batched data path (edge runs, buffered publishing, one sequence block
//! per flush) is a pure cost optimization: with `batch_limit = 1` every node
//! degenerates to the per-message code path (runs of one message, flush cap
//! of one). These properties drive the same graph under both regimes with an
//! identical deterministic schedule and assert that the sink observes the
//! *exact same message sequence* — elements, heartbeats, and `Close`, in the
//! same cross-port order.

use pipes_graph::io::VecSource;
use pipes_graph::{BinaryOperator, Collector, NodeId, Operator, QueryGraph, SinkOp};
use pipes_sync::{Arc, Mutex};
use pipes_time::{Element, Message, Timestamp};
use proptest::prelude::*;

/// Every message a sink saw, with the port it arrived on.
type Recorded = Arc<Mutex<Vec<(usize, Message<i64>)>>>;

/// A topology constructor: two input streams in, driving order and sink
/// recording out.
type Build = fn(&[i64], &[i64]) -> (QueryGraph, Vec<NodeId>, Recorded);

struct RecordingSink {
    buf: Recorded,
}

impl RecordingSink {
    fn new() -> (Self, Recorded) {
        let buf: Recorded = Arc::new(Mutex::new(Vec::new()));
        (
            RecordingSink {
                buf: Arc::clone(&buf),
            },
            buf,
        )
    }
}

impl SinkOp for RecordingSink {
    type In = i64;
    fn on_message(&mut self, port: usize, msg: Message<i64>) {
        self.buf.lock().push((port, msg));
    }
}

/// Multi-port pass-through: a union whose output order *is* the cross-port
/// arrival order, making it maximally sensitive to run-boundary mistakes.
struct Union;

impl Operator for Union {
    type In = i64;
    type Out = i64;
    fn on_element(&mut self, _port: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
        out.element(e);
    }
}

/// Binary merge tagging each side, so left/right interleaving is visible in
/// the payloads, not just the order.
struct TaggedMerge;

impl BinaryOperator for TaggedMerge {
    type Left = i64;
    type Right = i64;
    type Out = i64;
    fn on_left(&mut self, e: Element<i64>, out: &mut dyn Collector<i64>) {
        out.element(e.map(|v| v * 2));
    }
    fn on_right(&mut self, e: Element<i64>, out: &mut dyn Collector<i64>) {
        out.element(e.map(|v| v * 2 + 1));
    }
    fn on_heartbeat_left(&mut self, t: Timestamp, out: &mut dyn Collector<i64>) {
        out.heartbeat(t);
    }
    fn on_heartbeat_right(&mut self, t: Timestamp, out: &mut dyn Collector<i64>) {
        out.heartbeat(t);
    }
}

/// Union tagging each element with its arrival port, so reordering two
/// fan-out copies of the *same* element (same payload, same global sequence
/// number on both ports) still changes the observable output.
struct PortTagUnion;

impl Operator for PortTagUnion {
    type In = i64;
    type Out = i64;
    fn on_element(&mut self, port: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
        out.element(e.map(|v| v * 10 + port as i64));
    }
}

fn elems(payloads: &[i64]) -> Vec<Element<i64>> {
    payloads
        .iter()
        .enumerate()
        .map(|(i, &v)| Element::at(v, Timestamp::new(i as u64 + 1)))
        .collect()
}

fn build_union(left: &[i64], right: &[i64]) -> (QueryGraph, Vec<NodeId>, Recorded) {
    let g = QueryGraph::new();
    let a = g.add_source("a", VecSource::new(elems(left)));
    let b = g.add_source("b", VecSource::new(elems(right)));
    let (a_id, b_id) = (a.node(), b.node());
    let u = g.add_nary("union", Union, &[a, b]);
    let (sink, buf) = RecordingSink::new();
    let sink_id = g.add_sink("sink", sink, &u);
    (g, vec![a_id, b_id, u.node(), sink_id], buf)
}

fn build_merge(left: &[i64], right: &[i64]) -> (QueryGraph, Vec<NodeId>, Recorded) {
    let g = QueryGraph::new();
    let a = g.add_source("a", VecSource::new(elems(left)));
    let b = g.add_source("b", VecSource::new(elems(right)));
    let (a_id, b_id) = (a.node(), b.node());
    let m = g.add_binary("merge", TaggedMerge, &a, &b);
    let (sink, buf) = RecordingSink::new();
    let sink_id = g.add_sink("sink", sink, &m);
    (g, vec![a_id, b_id, m.node(), sink_id], buf)
}

/// Diamond: one source fans out to *both* ports of the consumer, so the two
/// copies of each message carry the same arrival sequence number — the only
/// way to produce genuine cross-port ties, which must resolve to the lowest
/// port index.
fn build_diamond_union(left: &[i64], _right: &[i64]) -> (QueryGraph, Vec<NodeId>, Recorded) {
    let g = QueryGraph::new();
    let a = g.add_source("a", VecSource::new(elems(left)));
    let a_id = a.node();
    let u = g.add_nary("union", PortTagUnion, &[a.clone(), a]);
    let (sink, buf) = RecordingSink::new();
    let sink_id = g.add_sink("sink", sink, &u);
    (g, vec![a_id, u.node(), sink_id], buf)
}

/// Diamond into a binary operator: ties between the left and right queue.
fn build_diamond_merge(left: &[i64], _right: &[i64]) -> (QueryGraph, Vec<NodeId>, Recorded) {
    let g = QueryGraph::new();
    let a = g.add_source("a", VecSource::new(elems(left)));
    let a_id = a.node();
    let m = g.add_binary("merge", TaggedMerge, &a, &a);
    let (sink, buf) = RecordingSink::new();
    let sink_id = g.add_sink("sink", sink, &m);
    (g, vec![a_id, m.node(), sink_id], buf)
}

/// Drives the graph to completion with a deterministic round-robin schedule
/// whose per-step budgets cycle through `budgets`. The schedule depends only
/// on its inputs, so two graphs driven with the same `order`/`budgets` see
/// identical quanta — any output difference is the batching's fault.
fn run(g: &QueryGraph, order: &[NodeId], budgets: &[usize], batch_limit: Option<usize>) {
    if let Some(limit) = batch_limit {
        g.set_batch_limit(limit);
    }
    let mut step = 0usize;
    let mut rounds = 0usize;
    while !g.all_finished() {
        for &id in order {
            g.step_node(id, budgets[step % budgets.len()]);
            step += 1;
        }
        rounds += 1;
        assert!(rounds < 100_000, "schedule did not converge");
    }
}

/// Runs `build` output under the given batch limit and returns everything the
/// sink recorded.
fn observe(
    build: Build,
    left: &[i64],
    right: &[i64],
    budgets: &[usize],
    batch_limit: Option<usize>,
) -> Vec<(usize, Message<i64>)> {
    let (g, order, buf) = build(left, right);
    run(&g, &order, budgets, batch_limit);
    let out = buf.lock().clone();
    assert!(
        matches!(out.last(), Some((_, Message::Close))),
        "sink must end with Close"
    );
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Union (multi-port unary): batched == per-message, for the default
    /// (unbounded) limit and an arbitrary intermediate one.
    #[test]
    fn union_batched_equals_per_message(
        left in prop::collection::vec(-1000i64..1000, 0..40),
        right in prop::collection::vec(-1000i64..1000, 0..40),
        budgets in prop::collection::vec(1usize..8, 1..6),
        mid_limit in 2usize..32,
    ) {
        let reference = observe(build_union, &left, &right, &budgets, Some(1));
        let batched = observe(build_union, &left, &right, &budgets, None);
        let mid = observe(build_union, &left, &right, &budgets, Some(mid_limit));
        prop_assert_eq!(&batched, &reference);
        prop_assert_eq!(&mid, &reference);
    }

    /// Binary merge (join-shaped): batched == per-message.
    #[test]
    fn merge_batched_equals_per_message(
        left in prop::collection::vec(-1000i64..1000, 0..40),
        right in prop::collection::vec(-1000i64..1000, 0..40),
        budgets in prop::collection::vec(1usize..8, 1..6),
        mid_limit in 2usize..32,
    ) {
        let reference = observe(build_merge, &left, &right, &budgets, Some(1));
        let batched = observe(build_merge, &left, &right, &budgets, None);
        let mid = observe(build_merge, &left, &right, &budgets, Some(mid_limit));
        prop_assert_eq!(&batched, &reference);
        prop_assert_eq!(&mid, &reference);
    }

    /// Diamond fan-out: every element arrives on both ports with the same
    /// sequence number, so batched runs must stop exactly at ties and yield
    /// to the lower port.
    #[test]
    fn diamond_batched_equals_per_message(
        payloads in prop::collection::vec(-1000i64..1000, 0..40),
        budgets in prop::collection::vec(1usize..8, 1..6),
        mid_limit in 2usize..32,
    ) {
        for build in [build_diamond_union, build_diamond_merge] {
            let reference = observe(build, &payloads, &[], &budgets, Some(1));
            let batched = observe(build, &payloads, &[], &budgets, None);
            let mid = observe(build, &payloads, &[], &budgets, Some(mid_limit));
            prop_assert_eq!(&batched, &reference);
            prop_assert_eq!(&mid, &reference);
        }
    }
}

/// Pin one concrete interleaving so a property-test regression has a readable
/// sibling failure.
#[test]
fn union_concrete_case_matches() {
    let left = [10, 20, 30, 40, 50];
    let right = [1, 2, 3];
    let budgets = [3, 1, 2];
    let reference = observe(build_union, &left, &right, &budgets, Some(1));
    let batched = observe(build_union, &left, &right, &budgets, None);
    assert_eq!(batched, reference);
    let payloads: Vec<i64> = reference
        .iter()
        .filter_map(|(_, m)| match m {
            Message::Element(e) => Some(e.payload),
            _ => None,
        })
        .collect();
    let mut sorted = payloads.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![1, 2, 3, 10, 20, 30, 40, 50]);
}
