//! Shuffle edges must be observationally invisible: a keyed-parallel plan
//! has to produce **byte-identical** output to the single-instance plan —
//! same payloads, same intervals, same order — for every element sequence,
//! instance count and node-stepping schedule, including a `parallelize`
//! landing mid-run and a fully skewed key distribution that leaves all but
//! one instance cold.
//!
//! The probe operator is a per-key running sum: its output depends on the
//! exact per-key processing order, so any cross-shuffle reordering or a
//! state hand-off that drops/duplicates an accumulator shows up as a wrong
//! payload, not just a wrong position.

use pipes_graph::io::{CollectSink, VecSource};
use pipes_graph::{key_hash, Collector, KeyedState, NodeId, Operator, QueryGraph, Rekey};
use pipes_sync::Arc;
use pipes_time::{Element, Timestamp};
use proptest::prelude::*;
use std::collections::HashMap;

/// Per-key running sum over `(key, value)` pairs, emitting `(key, sum)`.
struct KeyedSum {
    sums: HashMap<i64, i64>,
}

impl KeyedSum {
    fn new() -> Self {
        KeyedSum {
            sums: HashMap::new(),
        }
    }
}

impl Operator for KeyedSum {
    type In = (i64, i64);
    type Out = (i64, i64);
    fn on_element(
        &mut self,
        _p: usize,
        e: Element<(i64, i64)>,
        out: &mut dyn Collector<(i64, i64)>,
    ) {
        let (k, v) = e.payload;
        let sum = self.sums.entry(k).or_insert(0);
        *sum += v;
        out.element(Element::new((k, *sum), e.interval));
    }
}

impl Rekey for KeyedSum {
    fn export_keyed(&mut self) -> KeyedState {
        self.sums
            .drain()
            .map(|(k, s)| {
                (
                    key_hash(&k),
                    Box::new((k, s)) as Box<dyn std::any::Any + Send>,
                )
            })
            .collect()
    }
    fn import_keyed(&mut self, entries: KeyedState) {
        for (_, entry) in entries {
            let (k, s) = *entry.downcast::<(i64, i64)>().expect("KeyedSum state");
            self.sums.insert(k, s);
        }
    }
}

/// The source budget must match between the plans under comparison:
/// `VecSource` punctuates per produced batch, so the heartbeat stream (and
/// with it every flush boundary downstream) is a function of the budget.
const SRC_BUDGET: usize = 7;

/// Start-ordered `(key, value)` elements over a small key universe.
fn arb_elems(max_len: usize, keys: i64) -> impl Strategy<Value = Vec<Element<(i64, i64)>>> {
    prop::collection::vec((0..keys, -8i64..8, 0u64..32), 0..max_len).prop_map(|raw| {
        let mut ts: Vec<u64> = raw.iter().map(|&(_, _, t)| t).collect();
        ts.sort_unstable();
        raw.into_iter()
            .zip(ts)
            .map(|((k, v, _), t)| Element::at((k, v), Timestamp::new(t)))
            .collect()
    })
}

/// The oracle: running sums in source order (`VecSource` start-sorts its
/// input with a stable sort, so this is the exact single-stream order).
fn expected(mut elems: Vec<Element<(i64, i64)>>) -> Vec<Element<(i64, i64)>> {
    elems.sort_by_key(|e| e.start());
    let mut sums: HashMap<i64, i64> = HashMap::new();
    elems
        .into_iter()
        .map(|e| {
            let (k, v) = e.payload;
            let sum = sums.entry(k).or_insert(0);
            *sum += v;
            Element::new((k, *sum), e.interval)
        })
        .collect()
}

struct KeyedPlan {
    graph: Arc<QueryGraph>,
    src: NodeId,
    out: pipes_graph::io::Collected<(i64, i64)>,
}

fn keyed_plan(elems: Vec<Element<(i64, i64)>>, instances: usize) -> KeyedPlan {
    let g = QueryGraph::new();
    let src = g.add_source("src", VecSource::new(elems));
    let h = g.add_keyed_unary(
        "sum",
        KeyedSum::new,
        Arc::new(|&(k, _): &(i64, i64)| key_hash(&k)),
        instances,
        None,
        &src,
    );
    let (sink, out) = CollectSink::new();
    g.add_sink("sink", sink, &h);
    KeyedPlan {
        graph: Arc::new(g),
        src: src.node(),
        out,
    }
}

/// Steps every node once per round — source at the pinned budget, the rest
/// at schedule-chosen budgets and a schedule-chosen rotation — until the
/// graph drains. Rotation + budgets vary the interleaving across the
/// shuffle stages without starving any node.
fn drive(graph: &QueryGraph, src: NodeId, sched: &[usize]) {
    let mut round = 0usize;
    while !graph.all_finished() {
        let ids: Vec<NodeId> = graph.node_ids().collect();
        let pick = |i: usize| {
            if sched.is_empty() {
                0
            } else {
                sched[i % sched.len()]
            }
        };
        let off = pick(round) % ids.len().max(1);
        for i in 0..ids.len() {
            let id = ids[(i + off) % ids.len()];
            if graph.is_finished(id) {
                continue;
            }
            let budget = if id == src {
                SRC_BUDGET
            } else {
                1 + pick(round + i) % 13
            };
            graph.step_node(id, budget);
        }
        round += 1;
        assert!(round < 10_000, "graph wedged");
    }
}

fn payloads(out: &pipes_graph::io::Collected<(i64, i64)>) -> Vec<Element<(i64, i64)>> {
    out.lock().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Keyed plan ≡ oracle, for every instance count and schedule.
    #[test]
    fn keyed_plan_is_byte_identical_to_single_instance(
        elems in arb_elems(48, 6),
        instances in 1usize..5,
        sched in prop::collection::vec(0usize..97, 1..24),
    ) {
        let want = expected(elems.clone());
        let plan = keyed_plan(elems, instances);
        drive(&plan.graph, plan.src, &sched);
        prop_assert_eq!(payloads(&plan.out), want);
    }

    /// Per-key subsequences each preserve their own processing order (the
    /// running sums of that key alone), independent of the global check.
    #[test]
    fn every_partitioned_key_keeps_its_order(
        elems in arb_elems(48, 6),
        instances in 2usize..5,
        sched in prop::collection::vec(0usize..97, 1..24),
    ) {
        let want = expected(elems.clone());
        let plan = keyed_plan(elems, instances);
        drive(&plan.graph, plan.src, &sched);
        let got = payloads(&plan.out);
        for k in 0..6 {
            let got_k: Vec<_> = got.iter().filter(|e| e.payload.0 == k).collect();
            let want_k: Vec<_> = want.iter().filter(|e| e.payload.0 == k).collect();
            prop_assert_eq!(got_k, want_k, "key {} lost its order", k);
        }
    }

    /// Full key skew: every element routes to one instance; its siblings
    /// stay cold, and the stream is still exact.
    #[test]
    fn skewed_keys_starve_instances_but_not_the_stream(
        values in prop::collection::vec(-8i64..8, 0..48),
        instances in 2usize..5,
        sched in prop::collection::vec(0usize..97, 1..24),
    ) {
        let elems: Vec<Element<(i64, i64)>> = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| Element::at((0, v), Timestamp::new(i as u64)))
            .collect();
        let want = expected(elems.clone());
        let plan = keyed_plan(elems, instances);
        drive(&plan.graph, plan.src, &sched);
        prop_assert_eq!(payloads(&plan.out), want);
        // All per-key state lives on one instance: at most one of them
        // ever retained an accumulator.
        let group = plan.graph.shuffle_groups().pop().expect("group");
        prop_assert_eq!(group.instance_ids.len(), instances);
    }

    /// `parallelize` landing mid-run (after `warm` scheduling rounds) must
    /// leave the stream byte-identical: no loss, no reorder, no stale or
    /// duplicated accumulator after the state hand-off.
    #[test]
    fn parallelize_mid_run_is_invisible(
        elems in arb_elems(48, 6),
        instances in 1usize..4,
        widen_to in 1usize..6,
        warm in 0usize..6,
        sched in prop::collection::vec(0usize..97, 1..24),
    ) {
        let want = expected(elems.clone());
        let plan = keyed_plan(elems, instances);
        let group = plan.graph.shuffle_groups().pop().expect("group");
        // Warm-up: a few scheduling rounds so elements are in flight in
        // the partition/instance/merge stages when the splice lands.
        let mut rounds = 0;
        let ids: Vec<NodeId> = plan.graph.node_ids().collect();
        'warmup: while rounds < warm {
            for &id in &ids {
                if plan.graph.all_finished() {
                    break 'warmup;
                }
                if !plan.graph.is_finished(id) {
                    let budget = if id == plan.src { SRC_BUDGET } else { 2 };
                    plan.graph.step_node(id, budget);
                }
            }
            rounds += 1;
        }
        let fresh = plan.graph.parallelize(group.handle, widen_to);
        prop_assert_eq!(fresh.len(), widen_to);
        drive(&plan.graph, plan.src, &sched);
        prop_assert_eq!(payloads(&plan.out), want);
        let group = plan.graph.shuffle_groups().pop().expect("group");
        prop_assert_eq!(group.instance_ids.len(), widen_to);
    }
}
