//! Run-level dispatch must be observationally identical to per-message
//! dispatch, and nodes must uphold the run contract they promise operators.
//!
//! Covers the `Fused` virtual node's native `on_run` (run-to-run hand-over
//! between the two halves) against the default per-message loop, and checks
//! through a real graph that every run an operator receives is already
//! Close-stripped and free of adjacent heartbeats.

use pipes_graph::io::VecSource;
use pipes_graph::run::coalesce_adjacent_heartbeats;
use pipes_graph::{Collector, Fused, Operator, OperatorExt, QueryGraph, SinkOp};
use pipes_sync::{Arc, Mutex};
use pipes_time::{Element, Message, Timestamp};
use proptest::prelude::*;

/// Forwards per-message callbacks but *not* `on_run`, so the wrapped
/// operator is driven by the trait's default per-message loop — the
/// baseline for run-dispatch equivalence.
struct PerMessage<O>(O);

impl<O: Operator> Operator for PerMessage<O> {
    type In = O::In;
    type Out = O::Out;
    fn on_element(&mut self, port: usize, e: Element<O::In>, out: &mut dyn Collector<O::Out>) {
        self.0.on_element(port, e, out)
    }
    fn on_heartbeat(&mut self, port: usize, t: Timestamp, out: &mut dyn Collector<O::Out>) {
        self.0.on_heartbeat(port, t, out)
    }
    fn on_close(&mut self, out: &mut dyn Collector<O::Out>) {
        self.0.on_close(out)
    }
}

/// A map with a native `on_run` (reserve + tight loop), so fusing it
/// exercises run-to-run composition rather than default loops only.
struct BatchMap(fn(i64) -> i64);

impl Operator for BatchMap {
    type In = i64;
    type Out = i64;
    fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
        out.element(e.map(self.0));
    }
    fn on_run(&mut self, _p: usize, run: &mut Vec<Message<i64>>, out: &mut dyn Collector<i64>) {
        out.reserve(run.len());
        for msg in run.drain(..) {
            match msg {
                Message::Element(e) => out.element(e.map(self.0)),
                Message::Heartbeat(t) => out.heartbeat(t),
                Message::Close => {}
            }
        }
    }
}

/// Stateful half: holds each element until the next arrives, flushing the
/// remainder on close — sensitive to both run boundaries and close order.
struct HoldLast(Option<Element<i64>>);

impl Operator for HoldLast {
    type In = i64;
    type Out = i64;
    fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
        if let Some(prev) = self.0.replace(e) {
            out.element(prev);
        }
    }
    fn on_close(&mut self, out: &mut dyn Collector<i64>) {
        if let Some(e) = self.0.take() {
            out.element(e);
        }
    }
}

/// A watermark-valid message trace: elements at non-decreasing timestamps,
/// optional (sometimes duplicated) heartbeats, horizon heartbeat last.
fn arb_trace() -> impl Strategy<Value = Vec<Message<i64>>> {
    prop::collection::vec((0i64..100, 0u64..50, any::<bool>(), any::<bool>()), 0..24).prop_map(
        |mut raw| {
            raw.sort_by_key(|&(_, t, ..)| t);
            let mut msgs: Vec<Message<i64>> = Vec::new();
            for (p, t, hb, dup) in raw {
                msgs.push(Message::Element(Element::at(p, Timestamp::new(t))));
                if hb {
                    msgs.push(Message::Heartbeat(Timestamp::new(t)));
                    if dup {
                        msgs.push(Message::Heartbeat(Timestamp::new(t)));
                    }
                }
            }
            msgs.push(Message::Heartbeat(Timestamp::MAX));
            msgs
        },
    )
}

/// Feeds `msgs` to `op` as node-style runs (coalesced, Close-free) cut at
/// the cycled boundary pattern, returning every produced message.
fn feed_runs<O>(mut op: O, msgs: &[Message<O::In>], sizes: &[usize]) -> Vec<Message<O::Out>>
where
    O: Operator,
    O::In: Clone,
{
    let mut out: Vec<Message<O::Out>> = Vec::new();
    let mut run: Vec<Message<O::In>> = Vec::new();
    let (mut i, mut s) = (0, 0);
    while i < msgs.len() {
        let end = (i + sizes[s % sizes.len()]).min(msgs.len());
        s += 1;
        run.extend(msgs[i..end].iter().cloned());
        i = end;
        coalesce_adjacent_heartbeats(&mut run);
        op.on_run(0, &mut run, &mut out);
        run.clear();
    }
    op.on_close(&mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fused chains (run-native × stateful × run-native) produce the same
    /// sequence through `on_run` as through the per-message default loop,
    /// for every run-boundary pattern.
    #[test]
    fn fused_on_run_matches_per_message(
        msgs in arb_trace(),
        cuts in prop::collection::vec(1usize..6, 1..16),
    ) {
        fn fused() -> Fused<Fused<BatchMap, HoldLast>, BatchMap> {
            BatchMap(|v| v * 2).then(HoldLast(None)).then(BatchMap(|v| v - 1))
        }
        let native = feed_runs(fused(), &msgs, &cuts);
        let baseline = feed_runs(PerMessage(fused()), &msgs, &cuts);
        prop_assert_eq!(native, baseline);
    }
}

/// Records every run it is handed, so the node's dispatch contract can be
/// checked from the outside.
struct RunRecorder {
    runs: Arc<Mutex<Vec<Vec<Message<i64>>>>>,
}

impl Operator for RunRecorder {
    type In = i64;
    type Out = i64;
    fn on_element(&mut self, _p: usize, e: Element<i64>, out: &mut dyn Collector<i64>) {
        out.element(e);
    }
    fn on_run(&mut self, _p: usize, run: &mut Vec<Message<i64>>, out: &mut dyn Collector<i64>) {
        self.runs.lock().push(run.clone());
        for msg in run.drain(..) {
            match msg {
                Message::Element(e) => out.element(e),
                Message::Heartbeat(t) => out.heartbeat(t),
                Message::Close => {}
            }
        }
    }
}

struct NullSink;
impl SinkOp for NullSink {
    type In = i64;
    fn on_message(&mut self, _port: usize, _msg: Message<i64>) {}
}

/// Every run a real `OpNode` dispatches is Close-free and contains no
/// adjacent heartbeats, regardless of quantum budget.
#[test]
fn node_runs_are_close_stripped_and_coalesced() {
    let elems: Vec<Element<i64>> = (0..40)
        .map(|i| Element::at(i, Timestamp::new(i as u64 / 3)))
        .collect();
    for budget in [1usize, 2, 5, 64] {
        let runs = Arc::new(Mutex::new(Vec::new()));
        let g = QueryGraph::new();
        let src = g.add_source("src", VecSource::new(elems.clone()));
        let src_id = src.node();
        let rec = g.add_unary(
            "rec",
            RunRecorder {
                runs: Arc::clone(&runs),
            },
            &src,
        );
        let sink_id = g.add_sink("sink", NullSink, &rec);
        let order = [src_id, rec.node(), sink_id];
        let mut rounds = 0;
        while !g.all_finished() {
            for &id in &order {
                g.step_node(id, budget);
            }
            rounds += 1;
            assert!(rounds < 100_000, "schedule did not converge");
        }
        let runs = runs.lock();
        assert!(!runs.is_empty(), "operator saw at least one run");
        for run in runs.iter() {
            assert!(!run.is_empty(), "empty runs are never dispatched");
            assert!(
                !run.iter().any(|m| matches!(m, Message::Close)),
                "Close must be stripped before on_run"
            );
            for pair in run.windows(2) {
                assert!(
                    !matches!(
                        (&pair[0], &pair[1]),
                        (Message::Heartbeat(_), Message::Heartbeat(_))
                    ),
                    "adjacent heartbeats must be coalesced before on_run"
                );
            }
        }
    }
}
