//! Model-checked concurrency tests for the graph kernel's data path.
//!
//! Compiled only under `RUSTFLAGS="--cfg pipes_model_check"` (see
//! `scripts/ci.sh`), where `pipes_sync` resolves to the in-tree `loom`
//! shim: every lock and atomic operation becomes a deterministic
//! scheduling point and [`pipes_sync::model`] exhaustively explores
//! thread interleavings up to a preemption bound, reporting failing
//! schedules with a `PIPES_MC_REPLAY` recipe.
//!
//! These cover the PR-1 batched-data-path invariants deterministically;
//! `tests/concurrency.rs` at the workspace root keeps the wall-clock
//! stress form of the same scenarios.

#![cfg(pipes_model_check)]

use pipes_graph::{Collector, Edge, Outputs, PublishCollector};
use pipes_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use pipes_sync::{Arc, Mutex};
use pipes_time::{Element, Message, Timestamp};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn hb(t: u64) -> Message<i32> {
    Message::Heartbeat(Timestamp::new(t))
}

fn el(p: i32, t: u64) -> Message<i32> {
    Message::Element(Element::at(p, Timestamp::new(t)))
}

/// PR-1 invariant: the cached length is stored *inside* the queue's
/// critical section, so once all threads join it exactly matches the queue
/// — no interleaving of a racing push and pop can leave it stale.
#[test]
fn cached_len_matches_queue_under_push_pop_race() {
    let report = pipes_sync::model(|| {
        let e: Arc<Edge<i32>> = Arc::new(Edge::new(0));
        e.push(1, hb(1));
        let pusher = {
            let e = Arc::clone(&e);
            pipes_sync::thread::spawn(move || e.push(2, hb(2)))
        };
        let popper = {
            let e = Arc::clone(&e);
            pipes_sync::thread::spawn(move || e.pop().is_some())
        };
        pusher.join().unwrap();
        let popped = popper.join().unwrap();
        let expected = if popped { 1 } else { 2 };
        assert_eq!(e.len(), expected, "cached len diverged from queue");
        let mut actual = 0;
        while e.pop().is_some() {
            actual += 1;
        }
        assert_eq!(actual, expected, "queue content diverged");
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}

/// Expect-fail companion: reintroduce the pre-PR-1 bug (cached length
/// stored *after* the lock is released) and assert the model checker
/// catches the interleaving where two critical sections publish their
/// lengths in the opposite order, leaving the cache under-reporting.
#[test]
fn model_checker_catches_stale_length_bug() {
    /// An [`Edge`]-shaped queue with the stale-length bug seeded back in.
    struct BuggyEdge {
        queue: Mutex<VecDeque<u64>>,
        len: AtomicUsize,
    }

    impl BuggyEdge {
        fn push(&self, v: u64) {
            let len = {
                let mut q = self.queue.lock();
                q.push_back(v);
                q.len()
            };
            // BUG (deliberate): the guard dropped above, so a concurrent
            // mutation can slip between the critical section and this
            // store, publishing lengths out of order.
            // ordering: Relaxed — irrelevant here; the bug is the store's
            // position, not its memory order.
            self.len.store(len, Ordering::Relaxed);
        }
    }

    let err = catch_unwind(AssertUnwindSafe(|| {
        pipes_sync::model(|| {
            let e = Arc::new(BuggyEdge {
                queue: Mutex::new(VecDeque::new()),
                len: AtomicUsize::new(0),
            });
            let t = {
                let e = Arc::clone(&e);
                pipes_sync::thread::spawn(move || e.push(1))
            };
            e.push(2);
            t.join().unwrap();
            // ordering: Relaxed — single-threaded readback after join.
            let cached = e.len.load(Ordering::Relaxed);
            assert_eq!(cached, 2, "cached len under-reports the queue");
        })
    }))
    .expect_err("the stale-length bug must be caught");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("failure report is a string panic");
    assert!(msg.contains("under-reports"), "unexpected report: {msg}");
    assert!(
        msg.contains("PIPES_MC_REPLAY"),
        "report lacks replay recipe"
    );
}

/// Batch transfers race a consumer: no message is lost or reordered, and
/// a run never interleaves foreign messages into a batch's seq block.
#[test]
fn push_batch_vs_pop_run_preserves_order_and_count() {
    let report = pipes_sync::model(|| {
        let e: Arc<Edge<i32>> = Arc::new(Edge::new(0));
        let producer = {
            let e = Arc::clone(&e);
            pipes_sync::thread::spawn(move || {
                let mut batch = vec![hb(1), hb(2)];
                e.push_batch(10, &mut batch);
            })
        };
        let mut got = Vec::new();
        e.pop_run(2, u64::MAX, &mut got);
        producer.join().unwrap();
        while e.pop_run(2, u64::MAX, &mut got) > 0 {}
        let seqs: Vec<u64> = got.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, [10, 11], "batch must arrive whole and in order");
        assert_eq!(e.len(), 0);
    });
    assert!(report.complete);
}

/// PR-1 invariant: every flush claims one contiguous sequence block, so
/// two racing batch flushes into the same subscriber produce disjoint
/// contiguous blocks (in either order), never interleaved stamps.
#[test]
fn racing_batch_flushes_get_disjoint_contiguous_seq_blocks() {
    let report = pipes_sync::model(|| {
        let out: Arc<Outputs<i32>> = Arc::new(Outputs::new(Arc::new(AtomicU64::new(0))));
        let e = Arc::new(Edge::new(1));
        out.subscribe(Arc::clone(&e));
        let flusher = {
            let out = Arc::clone(&out);
            pipes_sync::thread::spawn(move || {
                let mut buf = vec![el(10, 1), el(11, 2)];
                out.publish_batch(&mut buf);
            })
        };
        let mut buf = vec![el(20, 1), el(21, 2)];
        out.publish_batch(&mut buf);
        flusher.join().unwrap();

        let mut by_payload = std::collections::HashMap::new();
        while let Some((seq, Message::Element(e))) = e.pop() {
            by_payload.insert(e.payload, seq);
        }
        assert_eq!(by_payload.len(), 4, "a flush lost messages");
        for pair in [(10, 11), (20, 21)] {
            assert_eq!(
                by_payload[&pair.0] + 1,
                by_payload[&pair.1],
                "flush {pair:?} was not stamped from one contiguous block"
            );
        }
    });
    assert!(report.complete);
    assert!(report.executions > 1, "expected multiple schedules");
}

/// The heartbeat fetch_max dedup: when two publishers race the same
/// timestamp, exactly one wins and subscribers see it exactly once.
#[test]
fn racing_heartbeats_deliver_exactly_once() {
    let report = pipes_sync::model(|| {
        let out: Arc<Outputs<i32>> = Arc::new(Outputs::new(Arc::new(AtomicU64::new(0))));
        let e = Arc::new(Edge::new(1));
        out.subscribe(Arc::clone(&e));
        let racer = {
            let out = Arc::clone(&out);
            pipes_sync::thread::spawn(move || out.publish_heartbeat(Timestamp::new(5)))
        };
        out.publish_heartbeat(Timestamp::new(5));
        racer.join().unwrap();
        let mut beats = 0;
        while let Some((_, m)) = e.pop() {
            assert_eq!(m, hb(5));
            beats += 1;
        }
        assert_eq!(beats, 1, "duplicate heartbeat slipped through the dedup");
    });
    assert!(report.complete);
}

/// The close swap: racing closers publish exactly one `Close`.
#[test]
fn racing_closes_deliver_exactly_one_close() {
    let report = pipes_sync::model(|| {
        let out: Arc<Outputs<i32>> = Arc::new(Outputs::new(Arc::new(AtomicU64::new(0))));
        let e = Arc::new(Edge::new(1));
        out.subscribe(Arc::clone(&e));
        let racer = {
            let out = Arc::clone(&out);
            pipes_sync::thread::spawn(move || out.publish_close())
        };
        out.publish_close();
        racer.join().unwrap();
        assert!(out.is_closed());
        let mut closes = 0;
        while let Some((_, m)) = e.pop() {
            assert_eq!(m, Message::Close);
            closes += 1;
        }
        assert_eq!(closes, 1, "close must be published exactly once");
    });
    assert!(report.complete);
}

/// A `PublishCollector` flushing at its cap races another collector into
/// the same output port: both quanta's messages arrive, each flush in one
/// contiguous block.
#[test]
fn racing_collector_flushes_into_one_subscriber() {
    let report = pipes_sync::model(|| {
        let out: Arc<Outputs<i32>> = Arc::new(Outputs::new(Arc::new(AtomicU64::new(0))));
        let e = Arc::new(Edge::new(1));
        out.subscribe(Arc::clone(&e));
        let other = {
            let out = Arc::clone(&out);
            pipes_sync::thread::spawn(move || {
                let mut scratch = Vec::new();
                let mut c = PublishCollector::new(&out, &mut scratch).with_flush_cap(2);
                c.element(Element::at(10, Timestamp::new(1)));
                c.element(Element::at(11, Timestamp::new(2))); // cap: flushes
                c.finish()
            })
        };
        let mut scratch = Vec::new();
        let mut c = PublishCollector::new(&out, &mut scratch);
        c.element(Element::at(20, Timestamp::new(1)));
        let mine = c.finish();
        drop(c);
        assert_eq!(other.join().unwrap(), 2);
        assert_eq!(mine, 1);
        let mut payloads: Vec<i32> = Vec::new();
        let mut seqs = std::collections::HashMap::new();
        while let Some((seq, Message::Element(e))) = e.pop() {
            payloads.push(e.payload);
            seqs.insert(e.payload, seq);
        }
        payloads.sort_unstable();
        assert_eq!(payloads, [10, 11, 20], "a flush lost messages");
        assert_eq!(seqs[&10] + 1, seqs[&11], "capped flush split its block");
    });
    assert!(report.complete);
}
