//! The three structural passes each demonstrably fire on a committed
//! seeded-violation fixture (`tests/fixtures/seeded/`), and the real
//! workspace stays clean with the coverage counters proving the passes
//! saw real code rather than silently matching nothing.
//!
//! Fixtures are fed through [`pipes_lint::analyze`] under synthetic
//! `kernel/src/...` path labels: every pass family applies
//! ([`Config::all_paths`]), and the label avoids a `tests` component so
//! rule 4's test-file exemption does not kick in.

use pipes_lint::{analyze, collect_sources, Config, Outcome};
use std::path::PathBuf;

fn run(name: &str, src: &str) -> Outcome {
    let sources = vec![(PathBuf::from(name), src.to_string())];
    analyze(&sources, &Config::all_paths())
}

fn render(o: &Outcome) -> String {
    o.violations
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn lock_order_fires_on_seeded_inversion_and_self_loop() {
    let o = run(
        "kernel/src/lock_cycle.rs",
        include_str!("fixtures/seeded/lock_cycle.rs"),
    );
    assert_eq!(
        o.violations.len(),
        2,
        "exactly the seeded pair:\n{}",
        render(&o)
    );
    assert!(o.violations.iter().all(|v| v.rule == "lock-order"));
    let cycle = &o.violations[0];
    assert_eq!(cycle.line, 15, "cycle anchored at the first `a → b` hop");
    assert!(
        cycle.msg.contains("cycle over {a → b}"),
        "got: {}",
        cycle.msg
    );
    assert!(cycle.msg.contains("Pair::forward") && cycle.msg.contains("Pair::backward"));
    let reentrant = &o.violations[1];
    assert_eq!(reentrant.line, 29);
    assert!(
        reentrant.msg.contains("not reentrant"),
        "got: {}",
        reentrant.msg
    );
}

#[test]
fn atomic_pairing_fires_on_seeded_one_armed_fences() {
    let o = run(
        "kernel/src/atomic_unpaired.rs",
        include_str!("fixtures/seeded/atomic_unpaired.rs"),
    );
    assert_eq!(
        o.violations.len(),
        2,
        "both one-armed fields, nothing else:\n{}",
        render(&o)
    );
    assert!(o.violations.iter().all(|v| v.rule == "atomic-pairing"));
    let release_only = &o.violations[0];
    assert_eq!(release_only.line, 16);
    assert!(
        release_only.msg.contains("`published`"),
        "got: {}",
        release_only.msg
    );
    assert!(release_only.msg.contains("no Acquire"));
    let acquire_only = &o.violations[1];
    assert_eq!(acquire_only.line, 25);
    assert!(
        acquire_only.msg.contains("`consumed`"),
        "got: {}",
        acquire_only.msg
    );
    assert!(acquire_only.msg.contains("nothing to acquire"));
    // `ready` is paired and silent.
    assert!(!render(&o).contains("ready"));
}

#[test]
fn blocking_while_locked_fires_but_condvar_shape_is_exempt() {
    let o = run(
        "kernel/src/blocking_locked.rs",
        include_str!("fixtures/seeded/blocking_locked.rs"),
    );
    assert_eq!(
        o.violations.len(),
        2,
        "park + foreign-guard wait only (the guard-passing wait is exempt):\n{}",
        render(&o)
    );
    assert!(o
        .violations
        .iter()
        .all(|v| v.rule == "blocking-while-locked"));
    let park = &o.violations[0];
    assert_eq!(park.line, 17);
    assert!(
        park.msg.contains("`park()`") && park.msg.contains("`items`"),
        "got: {}",
        park.msg
    );
    let wait = &o.violations[1];
    assert_eq!(wait.line, 24);
    assert!(
        wait.msg.contains("`wait()`") && wait.msg.contains("`side`"),
        "got: {}",
        wait.msg
    );
    // The wait was passed `guard`, so `items` itself is not reported.
    assert!(!wait.msg.contains("`items`"), "got: {}", wait.msg);
}

#[test]
fn seeded_fixtures_are_committed_and_skipped_by_real_scans() {
    // The corpus must exist on disk (not only in include_str! history)...
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/seeded");
    for f in ["lock_cycle.rs", "atomic_unpaired.rs", "blocking_locked.rs"] {
        assert!(dir.join(f).is_file(), "missing committed fixture {f}");
    }
    // ...and the workspace scan must never pick it up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let sources = collect_sources(&root, &Config::default()).expect("scan workspace");
    assert!(
        sources
            .iter()
            .all(|(p, _)| !p.starts_with("crates/lint/tests/fixtures")),
        "fixture corpus leaked into the real scan"
    );
}

#[test]
fn workspace_is_clean_with_zero_waivers_and_real_coverage() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = Config::default();
    let sources = collect_sources(&root, &cfg).expect("scan workspace");
    let o = analyze(&sources, &cfg);
    assert!(
        o.violations.is_empty(),
        "workspace findings:\n{}",
        render(&o)
    );
    assert!(
        o.waivers.is_empty(),
        "workspace expectation is zero waivers"
    );
    // Coverage floor: the passes must keep seeing real code. If a parser
    // regression silently dropped every function, these would catch it.
    assert!(
        o.stats.functions > 500,
        "only {} fns walked",
        o.stats.functions
    );
    assert!(
        o.stats.lock_fields >= 10,
        "only {} lock fields",
        o.stats.lock_fields
    );
    // The metadata plane's seqlock block (crates/meta/src/nodemeta.rs)
    // alone contributes nine atomic cells; losing sight of them would mean
    // the atomic passes stopped walking the meta crate.
    assert!(
        o.stats.atomic_fields >= 30,
        "only {} atomic fields",
        o.stats.atomic_fields
    );
    assert!(
        o.stats.nested_acquisitions >= 5,
        "only {} nested acquisitions",
        o.stats.nested_acquisitions
    );
    // Pin one real edge the walker must keep seeing: downstream_ids
    // acquires an `incoming` mutex under the `nodes` read lock.
    assert!(
        o.lock_edges
            .iter()
            .any(|e| e.from.key == "nodes" && e.to.key == "incoming"),
        "lost the nodes → incoming edge from QueryGraph::downstream_ids"
    );
    // And one from the metadata plane: Monitor::sample_at acquires the
    // `metas` registry under the `nodes` lock (declared order
    // nodes → metas → series), so the lock-order pass must keep seeing
    // the monitor's sampling path.
    assert!(
        o.lock_edges
            .iter()
            .any(|e| e.from.key == "nodes" && e.to.key == "metas"),
        "lost the nodes → metas edge from Monitor::sample_at"
    );
}
