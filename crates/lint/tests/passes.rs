//! The three structural passes each demonstrably fire on a committed
//! seeded-violation fixture (`tests/fixtures/seeded/`), and the real
//! workspace stays clean with the coverage counters proving the passes
//! saw real code rather than silently matching nothing.
//!
//! Fixtures are fed through [`pipes_lint::analyze`] under synthetic
//! `kernel/src/...` path labels: every pass family applies
//! ([`Config::all_paths`]), and the label avoids a `tests` component so
//! rule 4's test-file exemption does not kick in.

use pipes_lint::{analyze, collect_sources, Config, Outcome};
use std::path::PathBuf;

fn run(name: &str, src: &str) -> Outcome {
    let sources = vec![(PathBuf::from(name), src.to_string())];
    analyze(&sources, &Config::all_paths())
}

fn render(o: &Outcome) -> String {
    o.violations
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn lock_order_fires_on_seeded_inversion_and_self_loop() {
    let o = run(
        "kernel/src/lock_cycle.rs",
        include_str!("fixtures/seeded/lock_cycle.rs"),
    );
    assert_eq!(
        o.violations.len(),
        2,
        "exactly the seeded pair:\n{}",
        render(&o)
    );
    assert!(o.violations.iter().all(|v| v.rule == "lock-order"));
    let cycle = &o.violations[0];
    assert_eq!(cycle.line, 15, "cycle anchored at the first `a → b` hop");
    assert!(
        cycle.msg.contains("cycle over {a → b}"),
        "got: {}",
        cycle.msg
    );
    assert!(cycle.msg.contains("Pair::forward") && cycle.msg.contains("Pair::backward"));
    let reentrant = &o.violations[1];
    assert_eq!(reentrant.line, 29);
    assert!(
        reentrant.msg.contains("not reentrant"),
        "got: {}",
        reentrant.msg
    );
}

#[test]
fn atomic_pairing_fires_on_seeded_one_armed_fences() {
    let o = run(
        "kernel/src/atomic_unpaired.rs",
        include_str!("fixtures/seeded/atomic_unpaired.rs"),
    );
    assert_eq!(
        o.violations.len(),
        2,
        "both one-armed fields, nothing else:\n{}",
        render(&o)
    );
    assert!(o.violations.iter().all(|v| v.rule == "atomic-pairing"));
    let release_only = &o.violations[0];
    assert_eq!(release_only.line, 16);
    assert!(
        release_only.msg.contains("`published`"),
        "got: {}",
        release_only.msg
    );
    assert!(release_only.msg.contains("no Acquire"));
    let acquire_only = &o.violations[1];
    assert_eq!(acquire_only.line, 25);
    assert!(
        acquire_only.msg.contains("`consumed`"),
        "got: {}",
        acquire_only.msg
    );
    assert!(acquire_only.msg.contains("nothing to acquire"));
    // `ready` is paired and silent.
    assert!(!render(&o).contains("ready"));
}

#[test]
fn blocking_while_locked_fires_but_condvar_shape_is_exempt() {
    let o = run(
        "kernel/src/blocking_locked.rs",
        include_str!("fixtures/seeded/blocking_locked.rs"),
    );
    assert_eq!(
        o.violations.len(),
        2,
        "park + foreign-guard wait only (the guard-passing wait is exempt):\n{}",
        render(&o)
    );
    assert!(o
        .violations
        .iter()
        .all(|v| v.rule == "blocking-while-locked"));
    let park = &o.violations[0];
    assert_eq!(park.line, 17);
    assert!(
        park.msg.contains("`park()`") && park.msg.contains("`items`"),
        "got: {}",
        park.msg
    );
    let wait = &o.violations[1];
    assert_eq!(wait.line, 24);
    assert!(
        wait.msg.contains("`wait()`") && wait.msg.contains("`side`"),
        "got: {}",
        wait.msg
    );
    // The wait was passed `guard`, so `items` itself is not reported.
    assert!(!wait.msg.contains("`items`"), "got: {}", wait.msg);
}

#[test]
fn seeded_fixtures_are_committed_and_skipped_by_real_scans() {
    // The corpus must exist on disk (not only in include_str! history)...
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/seeded");
    for f in ["lock_cycle.rs", "atomic_unpaired.rs", "blocking_locked.rs"] {
        assert!(dir.join(f).is_file(), "missing committed fixture {f}");
    }
    // ...and the workspace scan must never pick it up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let sources = collect_sources(&root, &Config::default()).expect("scan workspace");
    assert!(
        sources
            .iter()
            .all(|(p, _)| !p.starts_with("crates/lint/tests/fixtures")),
        "fixture corpus leaked into the real scan"
    );
}

#[test]
fn workspace_is_clean_with_zero_waivers_and_real_coverage() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = Config::default();
    let sources = collect_sources(&root, &cfg).expect("scan workspace");
    let o = analyze(&sources, &cfg);
    assert!(
        o.violations.is_empty(),
        "workspace findings:\n{}",
        render(&o)
    );
    assert!(
        o.waivers.is_empty(),
        "workspace expectation is zero waivers"
    );
    // Coverage floor: the passes must keep seeing real code. If a parser
    // regression silently dropped every function, these would catch it.
    assert!(
        o.stats.functions > 1000,
        "only {} fns walked",
        o.stats.functions
    );
    assert!(
        o.stats.lock_fields >= 20,
        "only {} lock fields",
        o.stats.lock_fields
    );
    // The metadata plane's seqlock block (crates/meta/src/nodemeta.rs)
    // alone contributes nine atomic cells, and the hot-topology work added
    // the graph's topology epoch plus the executors' interrupt flags;
    // losing sight of them would mean the atomic passes stopped walking
    // those crates.
    assert!(
        o.stats.atomic_fields >= 38,
        "only {} atomic fields",
        o.stats.atomic_fields
    );
    assert!(
        o.stats.nested_acquisitions >= 12,
        "only {} nested acquisitions",
        o.stats.nested_acquisitions
    );
    // Pin one real edge the walker must keep seeing: downstream_ids
    // acquires an `incoming` mutex under the `nodes` read lock.
    assert!(
        o.lock_edges
            .iter()
            .any(|e| e.from.key == "nodes" && e.to.key == "incoming"),
        "lost the nodes → incoming edge from QueryGraph::downstream_ids"
    );
    // And one from the metadata plane: Monitor::sample_at acquires the
    // `metas` registry under the `nodes` lock (declared order
    // nodes → metas → series), so the lock-order pass must keep seeing
    // the monitor's sampling path.
    assert!(
        o.lock_edges
            .iter()
            .any(|e| e.from.key == "nodes" && e.to.key == "metas"),
        "lost the nodes → metas edge from Monitor::sample_at"
    );
}

#[test]
fn hot_topology_modules_stay_in_coverage() {
    // The dynamic re-planning machinery carries exactly the kind of state
    // the structural passes exist to guard: the growable group table's
    // slot vector behind a `RwLock`, the graph's topology epoch, and the
    // rebalance/claim words. Pin each module's coverage individually so a
    // path-matching regression cannot silently drop one of them from the
    // scan while the workspace totals still look healthy.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = Config::default();
    let sources = collect_sources(&root, &cfg).expect("scan workspace");
    let module = |suffix: &str| -> Outcome {
        let subset: Vec<_> = sources
            .iter()
            .filter(|(p, _)| p.ends_with(suffix))
            .cloned()
            .collect();
        assert_eq!(subset.len(), 1, "expected exactly one {suffix} in scan");
        analyze(&subset, &cfg)
    };

    // crates/sched/src/steal.rs: the group-ownership table. Its slot
    // vector lives behind a RwLock (grown under the write guard while
    // claim/steal transitions run under the read guard).
    let steal = module("crates/sched/src/steal.rs");
    assert!(steal.violations.is_empty() && steal.waivers.is_empty());
    assert!(
        steal.stats.lock_fields >= 1,
        "lost sight of GroupTable's states RwLock ({} lock fields)",
        steal.stats.lock_fields
    );

    // crates/sched/src/executor.rs: the dynamic multi-thread executor's
    // stop flag and the shared (epoch, partitions) cell.
    let exec = module("crates/sched/src/executor.rs");
    assert!(exec.violations.is_empty() && exec.waivers.is_empty());
    assert!(
        exec.stats.atomic_fields >= 1,
        "lost the executor's stop/interrupt atomics ({} atomic fields)",
        exec.stats.atomic_fields
    );
    assert!(
        exec.stats.lock_fields >= 1,
        "lost the executor's shared partition cell ({} lock fields)",
        exec.stats.lock_fields
    );

    // crates/graph/src/graph.rs: the topology epoch is one of the graph's
    // atomics, and the node table keeps its nodes → incoming edge.
    let graph = module("crates/graph/src/graph.rs");
    assert!(graph.violations.is_empty() && graph.waivers.is_empty());
    assert!(
        graph.stats.atomic_fields >= 2,
        "lost the graph's topology-epoch/finished atomics ({} atomic fields)",
        graph.stats.atomic_fields
    );
    assert!(
        graph
            .lock_edges
            .iter()
            .any(|e| e.from.key == "nodes" && e.to.key == "incoming"),
        "lost the nodes → incoming edge inside graph.rs alone"
    );

    // crates/sched/src/worker.rs: the leader's replan path re-derives the
    // plan and grows the table while workers run; its coordination words
    // (rebalance epoch, claim words) are atomics the pairing pass walks.
    let worker = module("crates/sched/src/worker.rs");
    assert!(worker.violations.is_empty() && worker.waivers.is_empty());
    assert!(
        worker.stats.atomic_fields >= 1,
        "lost the worker's rebalance/claim atomics ({} atomic fields)",
        worker.stats.atomic_fields
    );
}
