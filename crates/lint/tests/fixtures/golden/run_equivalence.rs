// Golden fixture for rule 4 (run-equivalence-test): an operator
// overriding the batched run path with no equivalence test naming it.

struct Doubler;

impl Operator for Doubler {
    fn on_run(&mut self) {}
}
