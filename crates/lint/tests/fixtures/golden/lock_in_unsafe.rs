// Golden fixture for rule 3 (no-lock-in-unsafe): blocking on a lock
// while a safety proof is suspended.

use pipes_sync::Mutex;

static REGISTRY: Mutex<u32> = Mutex::new(0);

fn poke(slot: *mut u32) {
    unsafe {
        let guard = REGISTRY.lock();
        *slot = *guard;
    }
}
