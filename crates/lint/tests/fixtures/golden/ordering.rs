// Golden fixture for rule 2 (ordering-justification): unjustified
// Relaxed and SeqCst — the SeqCst through an imported bare variant
// name, the historical bypass — plus a justified Relaxed that stays
// silent.

use pipes_sync::atomic::{AtomicUsize, Ordering};
use pipes_sync::atomic::Ordering::SeqCst;

fn stamp(x: &AtomicUsize) {
    x.store(1, Ordering::Relaxed);
    x.store(2, SeqCst);
    // ordering: Relaxed — drop/reset counter, nothing synchronizes on it.
    x.store(3, Ordering::Relaxed);
    x.load(Ordering::Acquire);
}
