// Golden fixture for rule 1 (no-direct-sync): a kernel-crate file
// reaching for `std::sync` instead of the `pipes-sync` facade.

use std::sync::Mutex;

fn guarded() -> Mutex<u32> {
    Mutex::new(0)
}
