// Seeded violations for the lock-order pass: an AB/BA inversion that
// must be reported as a cycle, and a reentrant re-acquisition that
// must be reported as a self-loop.

use pipes_sync::Mutex;

struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    fn forward(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    fn backward(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }

    fn reentrant(&self) {
        let first = self.a.lock();
        let second = self.a.lock();
        drop(second);
        drop(first);
    }
}
