// Seeded violations for the atomic-pairing pass: `published` has a
// Release store nobody acquires; `consumed` has an Acquire load
// nobody releases for. `ready` is properly paired and must stay
// silent.

use pipes_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

struct Flags {
    published: AtomicBool,
    consumed: AtomicU64,
    ready: AtomicUsize,
}

impl Flags {
    fn publish(&self) {
        self.published.store(true, Ordering::Release);
    }

    fn peek(&self) -> bool {
        // ordering: Relaxed — advisory peek, never a synchronization edge.
        self.published.load(Ordering::Relaxed)
    }

    fn consume(&self) -> u64 {
        self.consumed.load(Ordering::Acquire)
    }

    fn set_ready(&self) {
        self.ready.store(1, Ordering::Release);
    }

    fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire) == 1
    }
}
