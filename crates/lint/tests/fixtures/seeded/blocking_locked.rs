// Seeded violations for the blocking-while-locked pass: a thread
// parked while holding a guard, and a condvar wait made while a
// *second* unrelated guard is held. The condvar wait that is passed
// its own guard is the sanctioned shape and must stay silent.

use pipes_sync::{Condvar, Mutex};

struct Inbox {
    items: Mutex<Vec<u32>>,
    side: Mutex<u32>,
    cv: Condvar,
}

impl Inbox {
    fn park_holding_items(&self) {
        let guard = self.items.lock();
        pipes_sync::thread::park();
        drop(guard);
    }

    fn wait_holding_side(&self) {
        let side = self.side.lock();
        let mut guard = self.items.lock();
        self.cv.wait(&mut guard);
        drop(side);
    }

    fn wait_correctly(&self) {
        let mut guard = self.items.lock();
        while guard.is_empty() {
            self.cv.wait(&mut guard);
        }
    }
}
