//! Golden fixtures for the four original line-oriented rules
//! (`tests/fixtures/golden/`): each known-bad snippet produces exactly
//! the expected `(rule, line)` findings — no more, no fewer — under a
//! configuration where every pass family applies.

use pipes_lint::{analyze, Config};
use std::path::PathBuf;

fn findings(name: &str, src: &str) -> Vec<(String, usize)> {
    let sources = vec![(PathBuf::from(name), src.to_string())];
    analyze(&sources, &Config::all_paths())
        .violations
        .iter()
        .map(|v| (v.rule.to_string(), v.line))
        .collect()
}

#[test]
fn rule_1_direct_sync_import_is_flagged_at_the_use_line() {
    assert_eq!(
        findings(
            "kernel/src/direct_sync.rs",
            include_str!("fixtures/golden/direct_sync.rs"),
        ),
        [("no-direct-sync".to_string(), 4)]
    );
}

#[test]
fn rule_2_unjustified_extremes_flagged_including_imported_variant() {
    assert_eq!(
        findings(
            "kernel/src/ordering.rs",
            include_str!("fixtures/golden/ordering.rs"),
        ),
        [
            ("ordering-justification".to_string(), 10),
            // Line 11 is the historical bypass: a bare `SeqCst` imported
            // via `use ...::Ordering::SeqCst`, invisible to the old
            // textual `Ordering::SeqCst` match.
            ("ordering-justification".to_string(), 11),
        ]
    );
}

#[test]
fn rule_3_lock_inside_unsafe_is_flagged_at_the_acquisition() {
    assert_eq!(
        findings(
            "kernel/src/lock_in_unsafe.rs",
            include_str!("fixtures/golden/lock_in_unsafe.rs"),
        ),
        [("no-lock-in-unsafe".to_string(), 10)]
    );
}

#[test]
fn rule_4_uncovered_run_override_is_flagged_at_the_fn_line() {
    assert_eq!(
        findings(
            "kernel/src/run_equivalence.rs",
            include_str!("fixtures/golden/run_equivalence.rs"),
        ),
        [("run-equivalence-test".to_string(), 7)]
    );
}

#[test]
fn rule_4_goes_silent_once_a_test_names_the_type_with_on_run() {
    let fixture = include_str!("fixtures/golden/run_equivalence.rs");
    let sources = vec![
        (
            PathBuf::from("kernel/src/run_equivalence.rs"),
            fixture.to_string(),
        ),
        (
            PathBuf::from("kernel/tests/run_props.rs"),
            "fn equivalence() { /* Doubler on_run vs per-message */ }".to_string(),
        ),
    ];
    // The comment is masked, so coverage must come from code tokens.
    let o = analyze(&sources, &Config::all_paths());
    assert_eq!(
        o.violations.len(),
        1,
        "masked comment must not count as coverage"
    );
    let sources = vec![
        (
            PathBuf::from("kernel/src/run_equivalence.rs"),
            fixture.to_string(),
        ),
        (
            PathBuf::from("kernel/tests/run_props.rs"),
            "fn equivalence_doubler() { let d = Doubler; d.on_run(); }".to_string(),
        ),
    ];
    let o = analyze(&sources, &Config::all_paths());
    assert!(o.violations.is_empty(), "named coverage silences rule 4");
}
