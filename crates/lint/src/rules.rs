//! The line-oriented rules: facade-only sync (1), no-lock-in-unsafe (3),
//! and run-equivalence-test (4). Rule 2 (ordering-justification) lives in
//! [`crate::atomics`], rebuilt on the import-aware resolver.

use crate::lines::{split_lines, waived, Line};
use crate::Violation;
use std::path::{Path, PathBuf};

/// Paths rule 1 deliberately rejects inside kernel crates: the facade
/// itself re-exports from these.
pub const FORBIDDEN_SYNC_PATHS: &[&str] = &["std::sync", "std::thread", "parking_lot", "loom::"];

/// Rule 1: kernel crates use the `pipes-sync` facade only.
pub fn check_direct_sync(path: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for (idx, line) in lines.iter().enumerate() {
        for pat in FORBIDDEN_SYNC_PATHS {
            if line.code.contains(pat) && !waived(lines, idx, "no-direct-sync") {
                out.push(Violation {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    rule: "no-direct-sync",
                    msg: format!(
                        "`{pat}` in a kernel crate: import locks/atomics/threads \
                         from `pipes_sync` so the model checker can see them"
                    ),
                });
            }
        }
    }
}

/// Rule 3: no lock acquisitions inside `unsafe` blocks.
pub fn check_lock_in_unsafe(path: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    // Flatten to (line, char) so brace tracking can span lines.
    let mut depth_inside: i32 = -1; // brace depth of the unsafe block, -1 = not inside
    let mut depth: i32 = 0;
    let mut pending_unsafe = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let mut k = 0;
        let bytes: Vec<char> = code.chars().collect();
        while k < bytes.len() {
            let rest: String = bytes[k..].iter().collect();
            if depth_inside < 0 && rest.starts_with("unsafe") {
                let before_ok = k == 0 || !(bytes[k - 1].is_alphanumeric() || bytes[k - 1] == '_');
                let after = bytes.get(k + 6).copied();
                let after_ok = !matches!(after, Some(a) if a.is_alphanumeric() || a == '_');
                if before_ok && after_ok {
                    pending_unsafe = true;
                }
                k += 6;
                continue;
            }
            match bytes[k] {
                '{' => {
                    depth += 1;
                    if pending_unsafe && depth_inside < 0 {
                        depth_inside = depth;
                        pending_unsafe = false;
                    }
                }
                '}' => {
                    if depth_inside >= 0 && depth == depth_inside {
                        depth_inside = -1;
                    }
                    depth -= 1;
                }
                '(' if depth_inside >= 0 => {
                    for m in [".lock", ".try_lock", ".read", ".write"] {
                        if k >= m.len() {
                            let prefix: String = bytes[k - m.len()..k].iter().collect();
                            if prefix == m && !waived(lines, idx, "no-lock-in-unsafe") {
                                out.push(Violation {
                                    path: path.to_path_buf(),
                                    line: idx + 1,
                                    rule: "no-lock-in-unsafe",
                                    msg: format!(
                                        "`{m}()` inside an `unsafe` block: blocking while a \
                                         safety proof is suspended invites deadlock; take the \
                                         lock outside the block"
                                    ),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
}

/// Whether `rel_path` lives under a `tests/` directory (integration test
/// trees — the place rule 4 looks for equivalence coverage).
pub fn is_test_file(path: &Path) -> bool {
    path.components().any(|c| c.as_os_str() == "tests")
}

/// Extracts the implementing type from a masked `impl ... for Type<...>`
/// line: the first identifier after ` for `.
fn impl_type_name(code: &str) -> Option<String> {
    let pos = code.find(" for ")?;
    let name: String = code[pos + 5..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Whether `haystack` contains `token` with identifier boundaries on both
/// sides (so `Map` is not satisfied by `FlatMap`).
fn contains_token(haystack: &str, token: &str) -> bool {
    let bytes: Vec<char> = haystack.chars().collect();
    let tok: Vec<char> = token.chars().collect();
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    bytes.windows(tok.len()).enumerate().any(|(i, w)| {
        w == tok.as_slice()
            && (i == 0 || !is_ident(bytes[i - 1]))
            && bytes
                .get(i + tok.len())
                .copied()
                .is_none_or(|c| !is_ident(c))
    })
}

/// Whether a masked code line declares one of the run entry points —
/// exactly `fn on_run`, `fn on_run_left`, or `fn on_run_right`, not a
/// longer identifier that merely starts with `on_run`.
fn has_run_override(code: &str) -> bool {
    code.match_indices("fn on_run").any(|(i, pat)| {
        let boundary_before = i == 0
            || !code[..i]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let tail: String = code[i + pat.len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        boundary_before && matches!(tail.as_str(), "" | "_left" | "_right")
    })
}

/// Rule 4: every `on_run`/`on_run_left`/`on_run_right` override has an
/// equivalence test naming the implementing type.
///
/// Cross-file: the override is attributed to a type via the nearest
/// preceding `impl ... for Type` line; coverage means some test file's
/// masked code contains both that type name (as a whole token) and
/// `on_run`. The trait definition file and test files themselves are
/// exempt (a fixture overriding `on_run` inside a test *is* the test).
pub fn check_run_equivalence(files: &[(PathBuf, String)], out: &mut Vec<Violation>) {
    let exempt = Path::new("crates/graph/src/operator.rs");
    let test_code: Vec<String> = files
        .iter()
        .filter(|(p, _)| is_test_file(p))
        .map(|(_, src)| {
            split_lines(src)
                .into_iter()
                .map(|l| l.code)
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect();
    let covered = |ty: &str| {
        test_code
            .iter()
            .any(|code| code.contains("on_run") && contains_token(code, ty))
    };
    for (path, src) in files {
        if is_test_file(path) || path == exempt {
            continue;
        }
        let lines = split_lines(src);
        for idx in 0..lines.len() {
            if !has_run_override(&lines[idx].code) {
                continue;
            }
            let ty = lines[..idx].iter().rev().find_map(|l| {
                (l.code.contains("impl") && l.code.contains(" for "))
                    .then(|| impl_type_name(&l.code))
                    .flatten()
            });
            let Some(ty) = ty else {
                continue; // trait default in a trait body: nothing to test
            };
            if !covered(&ty) && !waived(&lines, idx, "run-equivalence-test") {
                out.push(Violation {
                    path: path.clone(),
                    line: idx + 1,
                    rule: "run-equivalence-test",
                    msg: format!(
                        "`{ty}` overrides a run entry point but no tests/ file names \
                         `{ty}` together with `on_run`: add a batched-vs-per-message \
                         equivalence proptest (see crates/ops/tests/run_props.rs)"
                    ),
                });
            }
        }
    }
}
