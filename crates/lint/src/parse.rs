//! Brace-tree parse: per-function token ranges and field declarations.
//!
//! This is not a Rust parser — it is the minimal structural layer the
//! passes need, built on the masked token stream: which token ranges are
//! function bodies (and which `impl` type they belong to), and which
//! field/static names are declared with lock or atomic types. Everything
//! else (generics, expressions, patterns) stays a flat token sequence.

use crate::lex::{Kind, Tok};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// One parsed function: name, enclosing `impl` type, and its body's token
/// index range (exclusive of the outer braces).
pub struct Func {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, when the function sits inside one.
    pub impl_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body, braces excluded.
    pub body: Range<usize>,
}

/// Extracts every function body from the token stream.
///
/// Nested items are scanned too (an inner `fn` yields its own entry whose
/// range is a subrange of the outer body — the passes tolerate the
/// overlap, which only over-approximates guard lifetimes).
pub fn functions(toks: &[Tok]) -> Vec<Func> {
    let mut out = Vec::new();
    let mut impl_stack: Vec<(i32, String)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut depth: i32 = 0;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_p('{') {
            depth += 1;
            if let Some(ty) = pending_impl.take() {
                impl_stack.push((depth, ty));
            }
            i += 1;
            continue;
        }
        if t.is_p('}') {
            if impl_stack.last().is_some_and(|(d, _)| *d == depth) {
                impl_stack.pop();
            }
            depth -= 1;
            i += 1;
            continue;
        }
        if t.is("impl") {
            pending_impl = impl_type(toks, i + 1);
            i += 1;
            continue;
        }
        if t.is("fn") {
            let name = toks
                .get(i + 1)
                .filter(|n| n.kind == Kind::Ident)
                .map(|n| n.text.clone())
                .unwrap_or_default();
            // Scan the signature for the body `{` (or `;` for a bodyless
            // trait method). Signatures contain no braces.
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_p('{') && !toks[j].is_p(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_p('{') {
                let end = matching_brace(toks, j);
                out.push(Func {
                    name,
                    impl_ty: impl_stack.last().map(|(_, ty)| ty.clone()),
                    line: t.line,
                    body: (j + 1)..end,
                });
                // Continue scanning *inside* the body so nested items and
                // the impl stack stay consistent.
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_p('{') {
            depth += 1;
        } else if t.is_p('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len()
}

/// Resolves the type named by an `impl` header starting right after the
/// `impl` token: the first identifier after `for` when present (trait
/// impl), otherwise the first identifier after the generic parameter list.
fn impl_type(toks: &[Tok], start: usize) -> Option<String> {
    let mut i = start;
    // Skip `<...>` generics, tolerating `->` inside bounds.
    if toks.get(i).is_some_and(|t| t.is_p('<')) {
        let mut angle = 0i32;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_p('<') {
                angle += 1;
            } else if t.is_p('>') {
                // `->` is not an angle close.
                if !(i > 0 && toks[i - 1].is_p('-')) {
                    angle -= 1;
                    if angle == 0 {
                        i += 1;
                        break;
                    }
                }
            }
            i += 1;
        }
    }
    // Find `for` before the opening brace, if any.
    let mut j = i;
    let mut for_at = None;
    while j < toks.len() && !toks[j].is_p('{') && !toks[j].is_p(';') {
        if toks[j].is("for") {
            for_at = Some(j);
            break;
        }
        j += 1;
    }
    let from = for_at.map(|f| f + 1).unwrap_or(i);
    toks[from..]
        .iter()
        .find(|t| t.kind == Kind::Ident && t.text != "dyn")
        .map(|t| t.text.clone())
}

/// Which lock type a field is declared with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex<..>` (exclusive; `.lock()`/`.try_lock()`).
    Mutex,
    /// `RwLock<..>` (shared/exclusive; `.read()`/`.write()`).
    RwLock,
}

/// Field/static declarations the passes key on, collected workspace-wide.
#[derive(Default)]
pub struct Decls {
    /// Field or static names declared with a `Mutex`/`RwLock` type
    /// (directly or through a one-level type alias).
    pub lock_fields: HashMap<String, LockKind>,
    /// Field or static names declared with an `Atomic*` type.
    pub atomic_fields: HashSet<String>,
}

/// Whether a type token names an atomic type (`AtomicUsize`, ...).
fn is_atomic_type(name: &str) -> bool {
    name.starts_with("Atomic") && name.len() > 6
}

/// Collects lock/atomic field declarations from one file's tokens into
/// `decls`, resolving aliases recorded in `aliases`.
pub fn collect_decls(toks: &[Tok], aliases: &HashMap<String, LockKind>, decls: &mut Decls) {
    let mut i = 0;
    while i + 1 < toks.len() {
        // Pattern: ident `:` <type window>. Skip `::` paths.
        let name_ok = toks[i].kind == Kind::Ident;
        let colon = toks[i + 1].is_p(':')
            && !toks.get(i + 2).is_some_and(|t| t.is_p(':'))
            && !(i > 0 && toks[i - 1].is_p(':'));
        if !(name_ok && colon) {
            i += 1;
            continue;
        }
        let name = toks[i].text.clone();
        // Walk the type window: stop at `,` `;` `{` `}` `=` at zero
        // angle/paren depth (generic args may contain commas and parens).
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut paren = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_p('<') {
                angle += 1;
            } else if t.is_p('>') && !(toks[j - 1].is_p('-')) {
                angle -= 1;
            } else if t.is_p('(') || t.is_p('[') {
                paren += 1;
            } else if t.is_p(')') || t.is_p(']') {
                if paren == 0 {
                    break; // closing paren of an enclosing list: not ours
                }
                paren -= 1;
            } else if angle == 0
                && paren == 0
                && (t.is_p(',') || t.is_p(';') || t.is_p('{') || t.is_p('}') || t.is_p('='))
            {
                break;
            }
            if t.kind == Kind::Ident {
                if t.text == "Mutex" {
                    decls
                        .lock_fields
                        .entry(name.clone())
                        .or_insert(LockKind::Mutex);
                } else if t.text == "RwLock" {
                    decls.lock_fields.insert(name.clone(), LockKind::RwLock);
                } else if is_atomic_type(&t.text) {
                    decls.atomic_fields.insert(name.clone());
                } else if let Some(kind) = aliases.get(&t.text) {
                    decls.lock_fields.entry(name.clone()).or_insert(*kind);
                }
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
}

/// Collects `type X = ...Mutex/RwLock...;` aliases from one file.
pub fn collect_aliases(toks: &[Tok], aliases: &mut HashMap<String, LockKind>) {
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is("type") && toks[i + 1].kind == Kind::Ident {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_p(';') {
                if toks[j].is("Mutex") {
                    aliases.entry(name.clone()).or_insert(LockKind::Mutex);
                } else if toks[j].is("RwLock") {
                    aliases.insert(name.clone(), LockKind::RwLock);
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::lines::split_lines;

    fn toks(src: &str) -> Vec<Tok> {
        lex(&split_lines(src))
    }

    #[test]
    fn finds_functions_with_impl_attribution() {
        let t = toks(
            "impl<T: Clone> Edge<T> {\n    pub fn push(&self) -> bool { self.x() }\n}\n\
             fn free() { body(); }\n\
             impl Operator for Map<F> { fn on_run(&mut self) { go(); } }",
        );
        let fns = functions(&t);
        let names: Vec<(String, Option<String>)> = fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_ty.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("push".into(), Some("Edge".into())),
                ("free".into(), None),
                ("on_run".into(), Some("Map".into())),
            ]
        );
        assert_eq!(fns[0].line, 2);
    }

    #[test]
    fn bodyless_trait_methods_are_skipped() {
        let fns = functions(&toks("trait T { fn a(&self); fn b(&self) { x(); } }"));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "b");
    }

    #[test]
    fn generics_with_fn_bounds_do_not_break_impl_headers() {
        let fns = functions(&toks(
            "impl<F: Fn(usize) -> bool> Filter<F> { fn call(&self) { x(); } }",
        ));
        assert_eq!(fns[0].impl_ty.as_deref(), Some("Filter"));
    }

    #[test]
    fn collects_lock_and_atomic_fields() {
        let t = toks(
            "struct S { queue: Mutex<VecDeque<(u64, M)>>, subs: RwLock<Vec<E>>, seq: AtomicU64, n: usize }\n\
             static REG: Mutex<Vec<u8>> = Mutex::new(Vec::new());",
        );
        let mut d = Decls::default();
        collect_decls(&t, &HashMap::new(), &mut d);
        assert_eq!(d.lock_fields.get("queue"), Some(&LockKind::Mutex));
        assert_eq!(d.lock_fields.get("subs"), Some(&LockKind::RwLock));
        assert_eq!(d.lock_fields.get("REG"), Some(&LockKind::Mutex));
        assert!(d.atomic_fields.contains("seq"));
        assert!(!d.lock_fields.contains_key("n"));
        assert!(!d.atomic_fields.contains("n"));
    }

    #[test]
    fn alias_typed_fields_resolve_one_level() {
        let t = toks("pub type Collected<T> = Arc<Mutex<Vec<Element<T>>>>;");
        let mut aliases = HashMap::new();
        collect_aliases(&t, &mut aliases);
        assert_eq!(aliases.get("Collected"), Some(&LockKind::Mutex));
        let mut d = Decls::default();
        collect_decls(
            &toks("struct Sink<T> { buf: Collected<T> }"),
            &aliases,
            &mut d,
        );
        assert_eq!(d.lock_fields.get("buf"), Some(&LockKind::Mutex));
    }

    #[test]
    fn tuple_typed_lock_fields_do_not_leak_into_siblings() {
        let t = toks("struct S { count: Arc<Mutex<(u64, Timestamp)>>, next: usize }");
        let mut d = Decls::default();
        collect_decls(&t, &HashMap::new(), &mut d);
        assert_eq!(d.lock_fields.get("count"), Some(&LockKind::Mutex));
        assert!(!d.lock_fields.contains_key("next"));
    }
}
