//! Atomic passes: **acquire-release pairing** and the import-aware
//! **ordering-justification** rule.
//!
//! Ordering resolution is shared: a site is `Ordering::X` / `O::X` (for
//! any `use ...::Ordering as O`) / bare `X` when `use
//! ...::Ordering::{X}` (possibly aliased or globbed) is in scope in the
//! file. Mentions inside the `use` declaration itself are not sites, and
//! `std::cmp::Ordering` never resolves — its variants are not memory
//! orderings.
//!
//! **ordering-justification** (rule 2, rebuilt on the resolver): every
//! line with a `Relaxed`/`SeqCst` site needs an `// ordering:` comment on
//! the line or in the comment block directly above (one comment covers a
//! contiguous run of ordering-bearing lines). `Acquire`/`Release` need no
//! comment: they are the safe middle ground.
//!
//! **atomic-pairing**: for every declared atomic field, all load/store/RMW
//! sites across the analyzed crates are collected into one per-field view
//! (keyed by field name — same-named fields merge, see the module docs in
//! [`crate::locks`]). A field with a `Release`-side store but no
//! `Acquire`-side load anywhere (or vice versa) is a one-armed fence:
//! the release publishes nothing anyone acquires, which is either dead
//! synchronization or a missing pairing — both findings. `SeqCst` counts
//! for both sides; RMWs count for the side(s) their ordering implies.
//!
//! What this deliberately cannot prove: orderings passed through
//! variables or function parameters are invisible, fences
//! (`atomic::fence`) are not modeled as pairing partners, and per-name
//! keying cannot separate two unrelated fields that share a name (their
//! sites merge, which can mask a one-armed field behind a paired
//! namesake — the model checker remains the authority on protocols it
//! has tests for).

use crate::lex::{Imports, Kind, Tok, ORDERING_VARIANTS};
use crate::lines::{waived, Line};
use crate::locks::receiver_key;
use crate::parse::Decls;
use crate::Violation;
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};

/// One resolved memory-ordering mention.
pub struct OrdSite {
    /// Token index of the variant identifier.
    pub tok: usize,
    /// 1-based source line.
    pub line: usize,
    /// Resolved variant (`"Relaxed"`, ..., `"SeqCst"`).
    pub variant: &'static str,
}

/// Resolves every memory-ordering mention in one file.
pub fn ordering_sites(toks: &[Tok], imports: &Imports) -> Vec<OrdSite> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident || imports.in_use_decl(i) {
            continue;
        }
        let path_form = i >= 3
            && toks[i - 1].is_p(':')
            && toks[i - 2].is_p(':')
            && toks[i - 3].kind == Kind::Ident;
        if path_form {
            // `Alias::Variant` — only when Alias names the Ordering type.
            if ORDERING_VARIANTS.contains(&t.text.as_str())
                && imports.type_aliases.contains(&toks[i - 3].text)
            {
                let variant = ORDERING_VARIANTS.iter().find(|v| **v == t.text).unwrap();
                out.push(OrdSite {
                    tok: i,
                    line: t.line,
                    variant,
                });
            }
            continue;
        }
        // Bare name imported from `Ordering::{...}` (possibly aliased).
        if let Some(variant) = imports.variant_names.get(&t.text) {
            let variant = ORDERING_VARIANTS
                .iter()
                .find(|v| *v == variant)
                .expect("variant names map to real variants");
            out.push(OrdSite {
                tok: i,
                line: t.line,
                variant,
            });
        }
    }
    out
}

/// Rule 2: extreme memory orderings carry an adjacent justification.
///
/// A line with a `Relaxed`/`SeqCst` site is justified when a comment
/// containing `ordering:` sits on the same line, or in the comment block
/// directly above — where "directly above" skips over other lines of the
/// same contiguous ordering-site run, so one comment may cover a cluster
/// like a `store` + `fetch_max` pair.
pub fn check_ordering_justification(
    path: &Path,
    lines: &[Line],
    sites: &[OrdSite],
    out: &mut Vec<Violation>,
) {
    let extreme_lines: HashSet<usize> = sites
        .iter()
        .filter(|s| s.variant == "Relaxed" || s.variant == "SeqCst")
        .map(|s| s.line)
        .collect();
    // Lines that carry *any* ordering site (Acquire/Release included)
    // count as part of a cluster for the upward walk.
    let site_lines: HashSet<usize> = sites.iter().map(|s| s.line).collect();
    let mut flagged: Vec<usize> = extreme_lines.iter().copied().collect();
    flagged.sort_unstable();
    for line_no in flagged {
        let idx = line_no - 1;
        if lines[idx].comment.contains("ordering:") {
            continue;
        }
        // Walk upward: skip lines in the same ordering-site run, then
        // accept a contiguous comment block if any line says "ordering:".
        let mut j = idx;
        let mut justified = false;
        while j > 0 && site_lines.contains(&j) {
            j -= 1;
            if lines[j].comment.contains("ordering:") {
                justified = true;
                break;
            }
        }
        while !justified && j > 0 {
            let above = &lines[j - 1];
            let is_comment_only = above.code.trim().is_empty() && !above.comment.is_empty();
            if !is_comment_only {
                break;
            }
            if above.comment.contains("ordering:") {
                justified = true;
            }
            j -= 1;
        }
        if !justified && !waived(lines, idx, "ordering-justification") {
            out.push(Violation {
                path: path.to_path_buf(),
                line: line_no,
                rule: "ordering-justification",
                msg: "Relaxed/SeqCst without an adjacent `// ordering:` comment \
                      justifying the choice"
                    .to_string(),
            });
        }
    }
}

/// Which side(s) of a synchronization edge an atomic method touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpKind {
    Load,
    Store,
    Rmw,
}

/// Methods that read, write, or read-modify-write an atomic.
fn op_kind(name: &str) -> Option<OpKind> {
    match name {
        "load" => Some(OpKind::Load),
        "store" => Some(OpKind::Store),
        "swap" | "compare_exchange" | "compare_exchange_weak" | "fetch_update" => Some(OpKind::Rmw),
        _ if name.starts_with("fetch_") => Some(OpKind::Rmw),
        _ => None,
    }
}

/// One atomic access site for the pairing view.
pub struct AtomicSite {
    file: PathBuf,
    line: usize,
    kind: OpKind,
    orderings: Vec<&'static str>,
    /// Whether an `atomic-pairing` waiver covers the line.
    waived: bool,
}

/// Collects every atomic access in one file into the per-field map.
pub fn collect_atomic_sites(
    path: &Path,
    toks: &[Tok],
    lines: &[Line],
    sites: &[OrdSite],
    decls: &Decls,
    fields: &mut BTreeMap<String, Vec<AtomicSite>>,
) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident || i == 0 || !toks[i - 1].is_p('.') {
            continue;
        }
        let Some(kind) = op_kind(&t.text) else {
            continue;
        };
        if !toks.get(i + 1).is_some_and(|n| n.is_p('(')) {
            continue;
        }
        let Some(key) = receiver_key(toks, i - 2) else {
            continue;
        };
        if !decls.atomic_fields.contains(&key) {
            continue;
        }
        let close = matching_paren(toks, i + 1);
        let orderings: Vec<&'static str> = sites
            .iter()
            .filter(|s| s.tok > i + 1 && s.tok < close)
            .map(|s| s.variant)
            .collect();
        fields.entry(key).or_default().push(AtomicSite {
            file: path.to_path_buf(),
            line: t.line,
            kind,
            orderings,
            waived: waived(lines, t.line - 1, "atomic-pairing"),
        });
    }
}

fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_p('(') {
            depth += 1;
        } else if t.is_p(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len()
}

fn is_release(o: &str) -> bool {
    matches!(o, "Release" | "AcqRel" | "SeqCst")
}

fn is_acquire(o: &str) -> bool {
    matches!(o, "Acquire" | "AcqRel" | "SeqCst")
}

/// Reports one-armed fences from the per-field view.
pub fn pairing_violations(fields: &BTreeMap<String, Vec<AtomicSite>>) -> Vec<Violation> {
    let mut out = Vec::new();
    for (key, sites) in fields {
        let mut sorted: Vec<&AtomicSite> = sites.iter().collect();
        sorted.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        let release_stores: Vec<&&AtomicSite> = sorted
            .iter()
            .filter(|s| {
                matches!(s.kind, OpKind::Store | OpKind::Rmw)
                    && s.orderings.iter().any(|o| is_release(o))
            })
            .collect();
        let acquire_loads: Vec<&&AtomicSite> = sorted
            .iter()
            .filter(|s| {
                matches!(s.kind, OpKind::Load | OpKind::Rmw)
                    && s.orderings.iter().any(|o| is_acquire(o))
            })
            .collect();
        if let (Some(first), true) = (release_stores.first(), acquire_loads.is_empty()) {
            if !first.waived {
                out.push(Violation {
                    path: first.file.clone(),
                    line: first.line,
                    rule: "atomic-pairing",
                    msg: format!(
                        "atomic field `{key}`: Release-side store here but no \
                         Acquire/AcqRel/SeqCst load of `{key}` anywhere in the analyzed \
                         crates ({} sites total) — the release publishes nothing; pair \
                         it or relax it",
                        sorted.len()
                    ),
                });
            }
        }
        if let (Some(first), true) = (acquire_loads.first(), release_stores.is_empty()) {
            if !first.waived {
                out.push(Violation {
                    path: first.file.clone(),
                    line: first.line,
                    rule: "atomic-pairing",
                    msg: format!(
                        "atomic field `{key}`: Acquire-side load here but no \
                         Release/AcqRel/SeqCst store of `{key}` anywhere in the analyzed \
                         crates ({} sites total) — there is nothing to acquire; pair it \
                         or relax it",
                        sorted.len()
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}
