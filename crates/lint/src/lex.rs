//! Token stream over masked lines, plus `use`-declaration resolution.
//!
//! The lexer is deliberately small: identifiers/number runs and
//! single-char punctuation, each tagged with its 1-based source line.
//! Because it runs on [`crate::lines::split_lines`] output, strings and
//! comments are already gone and no token ever spans a line break.
//!
//! [`Imports`] resolves `use` declarations far enough to answer one
//! question precisely: *which local names denote `Ordering` variants?*
//! That closes the rule-2 bypass where
//! `use std::sync::atomic::Ordering::{Relaxed, SeqCst}` (or
//! `Ordering as O`) made the extreme orderings invisible to a textual
//! `Ordering::Relaxed` match.

use crate::lines::Line;
use std::collections::{HashMap, HashSet};

/// Token kind: enough structure for brace-tree and call-site matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `let`, `queue`, ...).
    Ident,
    /// Numeric literal run (`42`, `0x1f`).
    Num,
    /// Single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token text (one char for punctuation).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Token kind.
    pub kind: Kind,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Whether this token is the punctuation char `c`.
    pub fn is_p(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Tokenizes masked lines into a flat stream.
pub fn lex(lines: &[Line]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: idx + 1,
                    kind: Kind::Ident,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: idx + 1,
                    kind: Kind::Num,
                });
                continue;
            }
            out.push(Tok {
                text: c.to_string(),
                line: idx + 1,
                kind: Kind::Punct,
            });
            i += 1;
        }
    }
    out
}

/// The five atomic memory-ordering variants.
pub const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// What one file's `use` declarations say about `Ordering` names.
#[derive(Default)]
pub struct Imports {
    /// Local name → ordering variant it denotes
    /// (`use ...::Ordering::{Relaxed, SeqCst as S}` maps `Relaxed` and `S`).
    pub variant_names: HashMap<String, String>,
    /// Local names aliasing the `Ordering` *type* itself (always contains
    /// `Ordering`; `use ...::Ordering as O` adds `O`).
    pub type_aliases: HashSet<String>,
    /// Token index ranges covered by `use` declarations (so variant
    /// mentions inside the declaration itself are not treated as sites).
    pub use_spans: Vec<(usize, usize)>,
}

impl Imports {
    /// Whether token index `i` falls inside a `use` declaration.
    pub fn in_use_decl(&self, i: usize) -> bool {
        self.use_spans.iter().any(|&(a, b)| i >= a && i < b)
    }
}

/// Scans the token stream for `use` declarations and resolves every
/// imported leaf name against the `Ordering` variant set.
pub fn resolve_imports(toks: &[Tok]) -> Imports {
    let mut imp = Imports::default();
    imp.type_aliases.insert("Ordering".to_string());
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is("use") {
            let start = i;
            i += 1;
            let mut leaves = Vec::new();
            i = parse_use_tree(toks, i, &mut Vec::new(), &mut leaves);
            imp.use_spans.push((start, i));
            for (path, local) in leaves {
                let n = path.len();
                if n >= 2
                    && path[n - 2] == "Ordering"
                    && ORDERING_VARIANTS.contains(&path[n - 1].as_str())
                {
                    imp.variant_names.insert(local, path[n - 1].clone());
                } else if n >= 1 && path[n - 1] == "Ordering" {
                    imp.type_aliases.insert(local);
                } else if n >= 2 && path[n - 1] == "*" && path[n - 2] == "Ordering" {
                    for v in ORDERING_VARIANTS {
                        imp.variant_names.insert(v.to_string(), v.to_string());
                    }
                }
            }
            // `i` already sits one past the declaration's end.
            continue;
        }
        i += 1;
    }
    imp
}

/// Recursive-descent parse of one `use` tree starting at token `i`;
/// appends `(full_path, local_name)` pairs for every leaf and returns the
/// index one past the tree's end (the `;`, or the group's `}`).
fn parse_use_tree(
    toks: &[Tok],
    mut i: usize,
    prefix: &mut Vec<String>,
    leaves: &mut Vec<(Vec<String>, String)>,
) -> usize {
    let depth_at_entry = prefix.len();
    while let Some(t) = toks.get(i) {
        if t.kind == Kind::Ident && t.text != "as" {
            prefix.push(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_p(':') && toks.get(i + 1).is_some_and(|n| n.is_p(':')) {
            i += 2;
            continue;
        }
        if t.is_p('*') {
            prefix.push("*".to_string());
            leaves.push((prefix.clone(), "*".to_string()));
            prefix.pop();
            i += 1;
            continue;
        }
        if t.is("as") {
            if let Some(alias) = toks.get(i + 1).filter(|a| a.kind == Kind::Ident) {
                leaves.push((prefix.clone(), alias.text.clone()));
                prefix.truncate(depth_at_entry);
                i += 2;
                // The path segment consumed by this leaf is done; eat a
                // trailing comma at this level if present.
                if toks.get(i).is_some_and(|t| t.is_p(',')) {
                    i += 1;
                }
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_p('{') {
            i += 1;
            // Each group entry re-enters with the shared prefix.
            loop {
                match toks.get(i) {
                    Some(t) if t.is_p('}') => {
                        i += 1;
                        break;
                    }
                    Some(t) if t.is_p(',') => i += 1,
                    Some(_) => {
                        let mut sub = prefix.clone();
                        i = parse_use_tree(toks, i, &mut sub, leaves);
                    }
                    None => break,
                }
            }
            prefix.truncate(depth_at_entry);
            // A `{...}` group ends this branch of the tree.
            if toks.get(i).is_some_and(|t| t.is_p(';')) {
                i += 1;
            }
            return i;
        }
        if t.is_p(',') || t.is_p('}') {
            // End of this entry inside a group: emit the pending segment.
            if prefix.len() > depth_at_entry {
                leaves.push((prefix.clone(), prefix.last().unwrap().clone()));
                prefix.truncate(depth_at_entry);
            }
            return i;
        }
        if t.is_p(';') {
            if prefix.len() > depth_at_entry {
                leaves.push((prefix.clone(), prefix.last().unwrap().clone()));
                prefix.truncate(depth_at_entry);
            }
            return i + 1;
        }
        // Unexpected token (attribute chars etc.): skip.
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lines::split_lines;

    fn imports(src: &str) -> Imports {
        resolve_imports(&lex(&split_lines(src)))
    }

    #[test]
    fn lexes_idents_numbers_and_punct_with_lines() {
        let toks = lex(&split_lines("let x = 2*i + 1;\nfoo.bar()"));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "2", "*", "i", "+", "1", ";", "foo", ".", "bar", "(", ")"]
        );
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[9].line, 2);
    }

    #[test]
    fn direct_variant_imports_resolve() {
        let imp = imports("use std::sync::atomic::Ordering::{Relaxed, SeqCst};");
        assert_eq!(imp.variant_names.get("Relaxed").unwrap(), "Relaxed");
        assert_eq!(imp.variant_names.get("SeqCst").unwrap(), "SeqCst");
        assert!(!imp.variant_names.contains_key("Acquire"));
    }

    #[test]
    fn aliased_variant_and_type_imports_resolve() {
        let imp = imports(
            "use std::sync::atomic::Ordering::Relaxed as Rx;\nuse pipes_sync::atomic::Ordering as O;",
        );
        assert_eq!(imp.variant_names.get("Rx").unwrap(), "Relaxed");
        assert!(imp.type_aliases.contains("O"));
        assert!(imp.type_aliases.contains("Ordering"));
    }

    #[test]
    fn glob_import_of_ordering_maps_all_variants() {
        let imp = imports("use std::sync::atomic::Ordering::*;");
        for v in ORDERING_VARIANTS {
            assert_eq!(imp.variant_names.get(*v).unwrap(), *v);
        }
    }

    #[test]
    fn nested_group_imports_resolve() {
        let imp = imports("use std::sync::atomic::{AtomicUsize, Ordering::{self, Relaxed}};");
        assert_eq!(imp.variant_names.get("Relaxed").unwrap(), "Relaxed");
    }

    #[test]
    fn cmp_ordering_variants_are_not_ordering_names() {
        let imp = imports("use std::cmp::Ordering::{Less, Equal};");
        assert!(
            imp.variant_names.is_empty(),
            "Less/Equal are not memory orderings"
        );
    }

    #[test]
    fn use_spans_cover_the_declaration() {
        let imp = imports("use std::sync::atomic::Ordering::Relaxed;\nx.store(1, Relaxed);");
        // The `Relaxed` inside the use decl is covered; the site is not.
        let toks = lex(&split_lines(
            "use std::sync::atomic::Ordering::Relaxed;\nx.store(1, Relaxed);",
        ));
        let decl_idx = toks.iter().position(|t| t.is("Relaxed")).unwrap();
        let site_idx = toks.iter().rposition(|t| t.is("Relaxed")).unwrap();
        assert!(imp.in_use_decl(decl_idx));
        assert!(!imp.in_use_decl(site_idx));
    }
}
