//! `pipes-lint` CLI: scans the workspace, prints the per-pass report, and
//! exits with a stable code.
//!
//! ```text
//! pipes-lint [ROOT] [--json] [--edges]
//! ```
//!
//! * `ROOT` — workspace root; defaults to the nearest ancestor of the
//!   current directory whose `Cargo.toml` declares `[workspace]`.
//! * `--json` — machine-readable report on stdout
//!   (`{"files":..,"passes":{..},"violations":[..],"waivers":[..]}`).
//! * `--edges` — dump the raw lock-order graph (every nested
//!   acquisition) before the report, for debugging a cycle finding.
//!
//! Exit codes are stable for CI: **0** clean, **1** findings, **2**
//! usage/IO error. Waivers alone do not fail the run, but every waiver is
//! listed — the workspace expectation is zero.

use pipes_lint::{analyze, collect_sources, to_json, Config, PASSES};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Locates the workspace root: the nearest ancestor of the current
/// directory containing a `[workspace]` manifest.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(s) = std::fs::read_to_string(&manifest) {
                if s.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut edges = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--edges" => edges = true,
            "--help" | "-h" => {
                println!("usage: pipes-lint [ROOT] [--json] [--edges]");
                return ExitCode::SUCCESS;
            }
            a if a.starts_with("--") => {
                eprintln!(
                    "pipes-lint: unknown flag `{a}` (usage: pipes-lint [ROOT] [--json] [--edges])"
                );
                return ExitCode::from(2);
            }
            a => {
                if root.replace(PathBuf::from(a)).is_some() {
                    eprintln!("pipes-lint: more than one ROOT argument");
                    return ExitCode::from(2);
                }
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let cfg = Config::default();
    let started = Instant::now();
    let sources = match collect_sources(&root, &cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pipes-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let outcome = analyze(&sources, &cfg);
    let elapsed = started.elapsed();

    if edges {
        for e in &outcome.lock_edges {
            println!(
                "{} -> {}  in `{}` ({}:{}, held since line {}){}",
                e.from.key,
                e.to.key,
                e.to.func,
                e.to.file.display(),
                e.to.line,
                e.from.line,
                if e.waived { "  [waived]" } else { "" }
            );
        }
    }
    if json {
        println!("{}", to_json(&outcome));
    } else {
        for v in &outcome.violations {
            eprintln!("{v}");
        }
        println!(
            "pipes-lint: {} files, {} passes, {:.0?}",
            outcome.files,
            PASSES.len(),
            elapsed
        );
        let s = &outcome.stats;
        println!(
            "  coverage: {} fns walked, {} lock fields, {} atomic fields \
             ({} accessed), {} nested acquisitions",
            s.functions, s.lock_fields, s.atomic_fields, s.atomics_accessed, s.nested_acquisitions
        );
        for p in PASSES {
            println!(
                "  {p:<24} {}",
                outcome.per_pass.get(p).copied().unwrap_or(0)
            );
        }
        if outcome.waivers.is_empty() {
            println!("  waivers                  0   (workspace expectation: zero)");
        } else {
            println!(
                "  waivers                  {}   (workspace expectation: zero — each must \
                 carry a written justification)",
                outcome.waivers.len()
            );
            for w in &outcome.waivers {
                println!("    {}:{}: allow({})", w.path.display(), w.line, w.rule);
            }
        }
        if outcome.violations.is_empty() {
            println!("pipes-lint: OK — 0 findings");
        } else {
            eprintln!("pipes-lint: {} finding(s)", outcome.violations.len());
        }
    }
    if outcome.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
